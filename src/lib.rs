//! # SparkXD
//!
//! Umbrella crate for the SparkXD reproduction: **resilient and
//! energy-efficient Spiking Neural Network inference using approximate
//! DRAM** (Putra, Hanif, Shafique — DAC 2021).
//!
//! This crate re-exports every subsystem so downstream users depend on a
//! single crate:
//!
//! * [`circuit`] — transient circuit simulator; DRAM array-voltage dynamics
//!   and voltage-scaled timing parameters (SPICE substitute).
//! * [`dram`] — cycle-level DRAM model: geometry, row-buffer state machine,
//!   access classification, latency, traces (LPDDR3-1600 4Gb preset).
//! * [`energy`] — DRAMPower-style command energy model and SNN platform
//!   energy breakdowns.
//! * [`error`] — approximate-DRAM error models (EDEN models 0–3), BER(V)
//!   curve, weak cells and bit-error injection.
//! * [`data`] — synthetic MNIST-like and Fashion-MNIST-like datasets.
//! * [`snn`] — spiking neural network simulator: LIF neurons, STDP,
//!   Poisson rate coding, Diehl&Cook-style unsupervised architecture.
//! * [`core`] — the SparkXD framework itself: fault-aware training
//!   (Alg. 1), error-tolerance analysis, error-aware DRAM mapping (Alg. 2),
//!   and the end-to-end pipeline.
//! * [`serve`] — online inference service: dynamic batching, per-request
//!   voltage-tier routing, admission control and serving metrics.
//! * [`telemetry`] — observation-only counters, gauges, histograms and
//!   spans behind the `SPARKXD_TELEMETRY` knob, with JSON and Chrome
//!   trace-event export.
//!
//! ## Quickstart
//!
//! ```no_run
//! use sparkxd::core::pipeline::{PipelineConfig, SparkXdPipeline};
//!
//! let config = PipelineConfig::small_demo(42);
//! let outcome = SparkXdPipeline::new(config).run().expect("pipeline run");
//! println!(
//!     "BER_th = {:.1e}, energy saving = {:.1}%",
//!     outcome.max_tolerable_ber,
//!     outcome.energy.saving_fraction_vs_baseline() * 100.0
//! );
//! ```

pub use sparkxd_circuit as circuit;
pub use sparkxd_core as core;
pub use sparkxd_data as data;
pub use sparkxd_dram as dram;
pub use sparkxd_energy as energy;
pub use sparkxd_error as error;
pub use sparkxd_serve as serve;
pub use sparkxd_snn as snn;
pub use sparkxd_telemetry as telemetry;
