//! Observation-only telemetry for the SparkXD workspace.
//!
//! One process-global registry holds sharded atomic [`Counter`]s,
//! [`Gauge`]s, fixed-bucket log2 [`Histogram`]s and RAII [`SpanGuard`]
//! timers. Instrumented code records through the `counter_add!`,
//! `gauge_set!`, `gauge_max!`, `hist_record!` and `span!` macros; three
//! export surfaces read it back:
//!
//! * [`TelemetrySnapshot::capture`] + [`TelemetrySnapshot::to_json`] — a
//!   serde-free hand-rolled JSON document (same idiom as the bench
//!   crate's `bench_json`),
//! * [`write_chrome_trace`] / the RAII [`TraceFile`] — a Chrome
//!   trace-event file of the recorded spans, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//! * the raw snapshot fields, which `sparkxd-bench` renders as a
//!   `TextTable` in `repro_all` / `nightly_n400` / `serve_load`
//!   summaries.
//!
//! # The observation-only / bit-identity contract
//!
//! Telemetry **observes** the computation and never steers it: wall-clock
//! readings feed durations and nothing else, counters are written and
//! never read back on any decision path, and no instrumented seam
//! branches on the telemetry mode beyond "record or skip the recording".
//! Consequently the engine's reproducibility guarantees are untouched —
//! a `PipelineOutcome` and a serve run's sorted `(id → label, tier)`
//! response set are bit-identical whether `SPARKXD_TELEMETRY` is `off`,
//! `counters` or `spans` (pinned by the `thread_invariance` and
//! `scheduler_determinism` suites, which run their matrices across the
//! telemetry axis).
//!
//! # The `SPARKXD_TELEMETRY` knob
//!
//! | value | behaviour |
//! |---|---|
//! | `off` (default) | nothing is recorded; the fast path is one relaxed atomic load |
//! | `counters` | counters, gauges and histograms record; span *durations* aggregate into histograms but no trace events are kept |
//! | `spans` | everything above plus a bounded in-memory trace-event buffer for the Chrome trace export |
//!
//! An unparsable value warns on stderr once per process and behaves as
//! `off` (the `env_usize_override` parse-and-warn-once idiom from
//! `sparkxd-snn::engine`). The variable is read **once**, on first use;
//! tests that flip it mid-process must call [`force_mode_from_env`] (or
//! [`set_mode`]) to make the change visible.
//!
//! Disabled is genuinely cheap: every macro begins with a single relaxed
//! load of a cached mode byte, and with `off` no site is ever
//! registered, no `Instant::now()` is taken and nothing allocates (the
//! `disabled_path` integration test pins this with a counting
//! allocator).
//!
//! # Span naming convention
//!
//! Names are static, lowercase and dot-separated, `component.verb[_qualifier]`:
//! `pipeline.<stage>` for the seven `SparkXdPipeline` stages
//! (`pipeline.data`, `pipeline.baseline_model`,
//! `pipeline.fault_aware_training`, `pipeline.operating_point`,
//! `pipeline.mapping`, `pipeline.operating_accuracy`,
//! `pipeline.energy`), `pool.*` for the worker pool, `engine.*` for the
//! batched read path, `dram.*` for model replays, `error.*` for
//! injection, `snn.*` for plane scrubbing and `core.*`/`serve.*` for
//! tier building and routing. Counter and histogram names follow the
//! same scheme.
//!
//! # Vendored-stub surface
//!
//! The vendored `rand`/`criterion`/`proptest` stubs needed **no new
//! surface** for this crate: telemetry is std-only (atomics, `Mutex`,
//! `Instant`, `OnceLock`) and the proptest shape tests use the already
//! vendored strategy combinators.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable holding the telemetry mode.
pub const TELEMETRY_ENV: &str = "SPARKXD_TELEMETRY";

/// Cap on buffered trace events; spans beyond it are counted as dropped
/// instead of growing the buffer without bound.
pub const MAX_SPAN_EVENTS: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Mode gate
// ---------------------------------------------------------------------------

/// How much the registry records. Ordered: each level includes the ones
/// below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Mode {
    /// Record nothing (the default).
    Off = 0,
    /// Counters, gauges and histograms (span durations aggregate, no
    /// trace-event buffer).
    Counters = 1,
    /// Everything, including the Chrome-trace event buffer.
    Spans = 2,
}

impl Mode {
    /// Stable lowercase name, the same spelling the env knob accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Counters => "counters",
            Mode::Spans => "spans",
        }
    }

    fn from_u8(raw: u8) -> Mode {
        match raw {
            1 => Mode::Counters,
            2 => Mode::Spans,
            _ => Mode::Off,
        }
    }
}

/// Sentinel for "not yet read from the environment".
const MODE_UNSET: u8 = u8::MAX;

/// Cached mode byte — the one relaxed load on every macro fast path.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// The active telemetry mode. Read from `SPARKXD_TELEMETRY` on the first
/// call and cached; afterwards this is a single relaxed atomic load.
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_UNSET => init_mode(),
        raw => Mode::from_u8(raw),
    }
}

/// Whether counters (and everything cheaper) record.
#[inline]
pub fn counters_enabled() -> bool {
    mode() >= Mode::Counters
}

/// Re-reads `SPARKXD_TELEMETRY` and installs the result, returning it.
/// The knob is normally read once per process; the invariance matrices
/// flip the variable between runs and call this to make the flip
/// visible.
pub fn force_mode_from_env() -> Mode {
    let m = mode_from_env();
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// Installs `mode` directly, bypassing the environment. Test and bench
/// hook (the nightly overhead measurement flips modes in-process).
pub fn set_mode(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

#[cold]
fn init_mode() -> Mode {
    let m = mode_from_env();
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

fn mode_from_env() -> Mode {
    match std::env::var(TELEMETRY_ENV) {
        Ok(raw) => parse_mode_override(TELEMETRY_ENV, &raw).unwrap_or(Mode::Off),
        Err(_) => Mode::Off,
    }
}

/// The parse half of the env read, separated so the fallback behaviour
/// is unit-testable without process-global env mutation (mirrors
/// `sparkxd-snn::engine::parse_usize_override`).
fn parse_mode_override(var: &str, raw: &str) -> Option<Mode> {
    match raw.trim() {
        "off" => Some(Mode::Off),
        "counters" => Some(Mode::Counters),
        "spans" => Some(Mode::Spans),
        _ => {
            if warn_once(var) {
                eprintln!(
                    "sparkxd: ignoring unparsable {var}={raw:?} \
                     (expected off|counters|spans), using off"
                );
            }
            None
        }
    }
}

/// `true` the first time `var` is seen — callers gate their stderr
/// warning on it so a hot loop cannot spam (same shape as the engine's
/// `warn_once`, which is `pub(crate)` there).
fn warn_once(var: &str) -> bool {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .map(|mut seen| seen.insert(var.to_string()))
        .unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Shards per [`Counter`]. Writers pick a shard by thread, so concurrent
/// pool workers don't bounce one cache line.
const COUNTER_SHARDS: usize = 8;

/// Monotonically growing per-thread id, used to spread counter writes
/// across shards and to tag trace events.
static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn thread_id() -> usize {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != usize::MAX {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// Monotone event counter, sharded across cache lines so concurrent
/// writers (pool helpers, serve workers) don't contend.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self {
            shards: [const { Shard(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_id() % COUNTER_SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Last-write or high-water mark of a level (pool occupancy, queue
/// depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Bucket count of [`Histogram`]: bucket 0 holds the value 0, bucket
/// `k ≥ 1` holds `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram of `u64` samples (latencies in ns, sizes
/// in rows). Alongside each bucket's count it keeps the bucket's sample
/// *sum*, so percentile queries answer with the mean of the selected
/// bucket — exact whenever the bucket holds equal samples (the
/// all-equal, single-sample and empty edge cases of the old
/// sort-the-window percentile are preserved bit-for-bit).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sums: [AtomicU64; HISTOGRAM_BUCKETS],
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sums: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = Self::bucket_of(v);
        self.counts[b].fetch_add(1, Ordering::Relaxed);
        self.sums[b].fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sums.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile at quantile `q ∈ [0, 1]`, answered as the
    /// mean of the log2 bucket the rank falls in; 0 when empty. Rank
    /// arithmetic matches the old sort-based `percentile` (`ceil(q·n)`
    /// clamped to `[1, n]`), so empty / single-sample / all-equal inputs
    /// return exactly what the old implementation did.
    pub fn percentile(&self, q: f64) -> u64 {
        let (counts, sums, max) = self.load_buckets();
        percentile_of_buckets(&counts, &sums, max, q)
    }

    /// Relaxed copy of the bucket arrays and max, for merged snapshots.
    fn load_buckets(&self) -> ([u64; HISTOGRAM_BUCKETS], [u64; HISTOGRAM_BUCKETS], u64) {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        let mut sums = [0u64; HISTOGRAM_BUCKETS];
        for b in 0..HISTOGRAM_BUCKETS {
            counts[b] = self.counts[b].load(Ordering::Relaxed);
            sums[b] = self.sums[b].load(Ordering::Relaxed);
        }
        (counts, sums, self.max.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for s in &self.sums {
            s.store(0, Ordering::Relaxed);
        }
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Nearest-rank percentile over explicit bucket arrays (the merged
/// multi-site form of [`Histogram::percentile`]).
fn percentile_of_buckets(
    counts: &[u64; HISTOGRAM_BUCKETS],
    sums: &[u64; HISTOGRAM_BUCKETS],
    max: u64,
    q: f64,
) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (b, &cnt) in counts.iter().enumerate() {
        seen += cnt;
        if cnt > 0 && seen >= rank {
            return sums[b] / cnt;
        }
    }
    max
}

/// Per-name aggregate a [`SpanGuard`] records into: a duration
/// histogram (ns).
#[derive(Debug, Default)]
pub struct SpanStats {
    durations_ns: Histogram,
}

impl SpanStats {
    /// Empty stats.
    pub const fn new() -> Self {
        Self {
            durations_ns: Histogram::new(),
        }
    }

    /// The duration histogram (ns).
    pub fn durations_ns(&self) -> &Histogram {
        &self.durations_ns
    }
}

// ---------------------------------------------------------------------------
// Registry and call sites
// ---------------------------------------------------------------------------

/// One buffered trace event: a completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static, dot-separated).
    pub name: &'static str,
    /// Small per-thread integer (Chrome trace `tid`).
    pub tid: usize,
    /// Start, ns since the registry epoch.
    pub ts_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

struct Registry {
    epoch: Instant,
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
    histograms: Mutex<Vec<(&'static str, &'static Histogram)>>,
    spans: Mutex<Vec<(&'static str, &'static SpanStats)>>,
    events: Mutex<Vec<SpanEvent>>,
    dropped_events: AtomicU64,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        spans: Mutex::new(Vec::new()),
        events: Mutex::new(Vec::new()),
        dropped_events: AtomicU64::new(0),
    })
}

/// A metric type the registry can hand out per call site.
pub trait Metric: Sized + 'static {
    /// Leaks a fresh instance and registers it under `name`.
    #[doc(hidden)]
    fn register(name: &'static str) -> &'static Self;
}

fn register_in<T>(
    list: &Mutex<Vec<(&'static str, &'static T)>>,
    name: &'static str,
    value: T,
) -> &'static T {
    let leaked: &'static T = Box::leak(Box::new(value));
    if let Ok(mut entries) = list.lock() {
        entries.push((name, leaked));
    }
    leaked
}

impl Metric for Counter {
    fn register(name: &'static str) -> &'static Self {
        register_in(&registry().counters, name, Counter::new())
    }
}

impl Metric for Gauge {
    fn register(name: &'static str) -> &'static Self {
        register_in(&registry().gauges, name, Gauge::new())
    }
}

impl Metric for Histogram {
    fn register(name: &'static str) -> &'static Self {
        register_in(&registry().histograms, name, Histogram::new())
    }
}

impl Metric for SpanStats {
    fn register(name: &'static str) -> &'static Self {
        register_in(&registry().spans, name, SpanStats::new())
    }
}

/// Per-call-site cache of a registered metric: resolved once, a single
/// `OnceLock` load afterwards. The recording macros expand to one of
/// these per expansion site; names should therefore be unique per site.
#[derive(Debug, Default)]
pub struct SiteCell<T: 'static>(OnceLock<&'static T>);

impl<T: Metric> SiteCell<T> {
    /// An unresolved site.
    pub const fn new() -> Self {
        Self(OnceLock::new())
    }

    /// The site's metric, registering it on first use.
    #[inline]
    pub fn get(&self, name: &'static str) -> &'static T {
        self.0.get_or_init(|| T::register(name))
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII span timer: created by the `span!` macro, records its duration
/// into the span's histogram on drop (and, in [`Mode::Spans`], appends a
/// trace event). Inert — no clock read, no allocation — when telemetry
/// is off.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    stats: &'static SpanStats,
    start: Instant,
}

impl SpanGuard {
    /// Starts a span if telemetry is enabled (macro entry point).
    #[inline]
    pub fn enter(site: &'static SiteCell<SpanStats>, name: &'static str) -> SpanGuard {
        if mode() == Mode::Off {
            return SpanGuard { active: None };
        }
        let stats = site.get(name);
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                stats,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        span.stats.durations_ns.record(dur_ns);
        if mode() != Mode::Spans {
            return;
        }
        let reg = registry();
        let ts_ns = span.start.saturating_duration_since(reg.epoch).as_nanos() as u64;
        if let Ok(mut events) = reg.events.lock() {
            if events.len() < MAX_SPAN_EVENTS {
                events.push(SpanEvent {
                    name: span.name,
                    tid: thread_id(),
                    ts_ns,
                    dur_ns,
                });
            } else {
                reg.dropped_events.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Adds to a named counter (no-op unless counters are enabled).
#[macro_export]
macro_rules! counter_add {
    ($name:literal, $n:expr) => {
        if $crate::counters_enabled() {
            static __SITE: $crate::SiteCell<$crate::Counter> = $crate::SiteCell::new();
            __SITE.get($name).add($n as u64);
        }
    };
}

/// Stores a named gauge value (no-op unless counters are enabled).
#[macro_export]
macro_rules! gauge_set {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            static __SITE: $crate::SiteCell<$crate::Gauge> = $crate::SiteCell::new();
            __SITE.get($name).set($v as u64);
        }
    };
}

/// Raises a named high-water-mark gauge (no-op unless counters are
/// enabled).
#[macro_export]
macro_rules! gauge_max {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            static __SITE: $crate::SiteCell<$crate::Gauge> = $crate::SiteCell::new();
            __SITE.get($name).record_max($v as u64);
        }
    };
}

/// Records a sample into a named histogram (no-op unless counters are
/// enabled).
#[macro_export]
macro_rules! hist_record {
    ($name:literal, $v:expr) => {
        if $crate::counters_enabled() {
            static __SITE: $crate::SiteCell<$crate::Histogram> = $crate::SiteCell::new();
            __SITE.get($name).record($v as u64);
        }
    };
}

/// Opens an RAII span covering the rest of the enclosing scope:
/// `let _span = span!("pipeline.mapping");`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __SITE: $crate::SiteCell<$crate::SpanStats> = $crate::SiteCell::new();
        $crate::SpanGuard::enter(&__SITE, $name)
    }};
}

// ---------------------------------------------------------------------------
// Snapshot + JSON export
// ---------------------------------------------------------------------------

/// One histogram in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median (log2-bucket mean, see [`Histogram::percentile`]).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// One span aggregate in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed spans.
    pub count: u64,
    /// Total time inside the span (ns).
    pub total_ns: u64,
    /// Median duration (ns).
    pub p50_ns: u64,
    /// Largest duration (ns).
    pub max_ns: u64,
}

/// Point-in-time copy of everything the registry has recorded, sorted by
/// name so renderings are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Active mode at capture time (`off`/`counters`/`spans`).
    pub mode: String,
    /// `(name, value)` per counter; duplicate names summed.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge; duplicate names keep the max.
    pub gauges: Vec<(String, u64)>,
    /// Histogram aggregates.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates.
    pub spans: Vec<SpanSnapshot>,
    /// Trace events discarded after the buffer filled.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// Captures the current registry contents (empty when nothing was
    /// ever recorded — capture itself never creates the registry).
    pub fn capture() -> Self {
        let mode = mode().as_str().to_string();
        let Some(reg) = REGISTRY.get() else {
            return Self {
                mode,
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
                spans: Vec::new(),
                dropped_events: 0,
            };
        };
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, c) in reg.counters.lock().unwrap().iter() {
            *counters.entry(name.to_string()).or_insert(0) += c.value();
        }
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        for (name, g) in reg.gauges.lock().unwrap().iter() {
            let entry = gauges.entry(name.to_string()).or_insert(0);
            *entry = (*entry).max(g.value());
        }
        // Histograms (and span durations) registered at several call
        // sites under one name merge at the bucket level, so percentiles
        // reflect the combined distribution (e.g. the two `dram.replay`
        // entry points).
        type Buckets = ([u64; HISTOGRAM_BUCKETS], [u64; HISTOGRAM_BUCKETS], u64);
        fn merged<'a>(
            entries: impl Iterator<Item = (&'static str, &'a Histogram)>,
        ) -> BTreeMap<String, Buckets> {
            let mut by_name: BTreeMap<String, Buckets> = BTreeMap::new();
            for (name, h) in entries {
                let (counts, sums, max) = h.load_buckets();
                let entry = by_name.entry(name.to_string()).or_insert((
                    [0; HISTOGRAM_BUCKETS],
                    [0; HISTOGRAM_BUCKETS],
                    0,
                ));
                for b in 0..HISTOGRAM_BUCKETS {
                    entry.0[b] += counts[b];
                    entry.1[b] += sums[b];
                }
                entry.2 = entry.2.max(max);
            }
            by_name
        }
        let histograms: Vec<HistogramSnapshot> =
            merged(reg.histograms.lock().unwrap().iter().copied())
                .into_iter()
                .map(|(name, (counts, sums, max))| HistogramSnapshot {
                    name,
                    count: counts.iter().sum(),
                    sum: sums.iter().sum(),
                    p50: percentile_of_buckets(&counts, &sums, max, 0.50),
                    p99: percentile_of_buckets(&counts, &sums, max, 0.99),
                    max,
                })
                .collect();
        let spans: Vec<SpanSnapshot> = merged(
            reg.spans
                .lock()
                .unwrap()
                .iter()
                .map(|&(name, s)| (name, &s.durations_ns)),
        )
        .into_iter()
        .map(|(name, (counts, sums, max))| SpanSnapshot {
            name,
            count: counts.iter().sum(),
            total_ns: sums.iter().sum(),
            p50_ns: percentile_of_buckets(&counts, &sums, max, 0.50),
            max_ns: max,
        })
        .collect();
        Self {
            mode,
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms,
            spans,
            dropped_events: reg.dropped_events.load(Ordering::Relaxed),
        }
    }

    /// `true` when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Hand-rolled JSON document (no serde; `bench_json` idiom).
    pub fn to_json(&self) -> String {
        let named = |pairs: &[(String, u64)]| -> String {
            pairs
                .iter()
                .map(|(name, value)| {
                    format!("{{\"name\":\"{}\",\"value\":{value}}}", escape_json(name))
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                    escape_json(&h.name),
                    h.count,
                    h.sum,
                    h.p50,
                    h.p99,
                    h.max
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let spans = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"max_ns\":{}}}",
                    escape_json(&s.name),
                    s.count,
                    s.total_ns,
                    s.p50_ns,
                    s.max_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\n  \"schema\": \"sparkxd-telemetry-v1\",\n  \"mode\": \"{}\",\n  \
             \"counters\": [{}],\n  \"gauges\": [{}],\n  \"histograms\": [{}],\n  \
             \"spans\": [{}],\n  \"dropped_events\": {}\n}}\n",
            escape_json(&self.mode),
            named(&self.counters),
            named(&self.gauges),
            histograms,
            spans,
            self.dropped_events
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// A copy of the buffered trace events (empty unless [`Mode::Spans`] ran).
pub fn span_events() -> Vec<SpanEvent> {
    REGISTRY
        .get()
        .and_then(|reg| reg.events.lock().ok().map(|e| e.clone()))
        .unwrap_or_default()
}

fn render_chrome_trace(events: &[SpanEvent], dropped: u64) -> String {
    let body = events
        .iter()
        .map(|e| {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"sparkxd\",\"ph\":\"X\",\"pid\":1,\
                 \"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                escape_json(e.name),
                e.tid,
                e.ts_ns as f64 / 1_000.0,
                e.dur_ns as f64 / 1_000.0
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{dropped}}},\
         \"traceEvents\":[\n{body}\n]}}\n"
    )
}

/// Writes the buffered spans as a Chrome trace-event file (open in
/// `chrome://tracing` or Perfetto). Returns the number of events
/// written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let events = span_events();
    let dropped = REGISTRY
        .get()
        .map(|r| r.dropped_events.load(Ordering::Relaxed))
        .unwrap_or(0);
    std::fs::write(path, render_chrome_trace(&events, dropped))?;
    Ok(events.len())
}

/// RAII trace-file writer: create it up front, and whenever it drops —
/// end of `main`, early return, panic unwind — the spans buffered so far
/// land in `path`. Writes nothing when no spans were recorded.
#[derive(Debug)]
pub struct TraceFile {
    path: PathBuf,
}

impl TraceFile {
    /// Will write the Chrome trace to `path` on drop.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// Destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TraceFile {
    fn drop(&mut self) {
        if span_events().is_empty() {
            return;
        }
        match write_chrome_trace(&self.path) {
            Ok(n) => eprintln!(
                "sparkxd-telemetry: wrote {n} span events to {}",
                self.path.display()
            ),
            Err(err) => eprintln!(
                "sparkxd-telemetry: failed to write trace {}: {err}",
                self.path.display()
            ),
        }
    }
}

/// Zeroes every registered metric and clears the trace-event buffer.
/// Bench/test hook (the nightly overhead measurement isolates its two
/// legs with this); racy against concurrent recording, so call from a
/// quiesced process.
pub fn reset() {
    let Some(reg) = REGISTRY.get() else {
        return;
    };
    for (_, c) in reg.counters.lock().unwrap().iter() {
        c.reset();
    }
    for (_, g) in reg.gauges.lock().unwrap().iter() {
        g.reset();
    }
    for (_, h) in reg.histograms.lock().unwrap().iter() {
        h.reset();
    }
    for (_, s) in reg.spans.lock().unwrap().iter() {
        s.durations_ns.reset();
    }
    if let Ok(mut events) = reg.events.lock() {
        events.clear();
    }
    reg.dropped_events.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the process-global mode serialise on this lock
    /// (cargo runs tests in one binary concurrently).
    static MODE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn mode_parse_accepts_the_three_levels_and_trims() {
        assert_eq!(parse_mode_override("T_M1", "off"), Some(Mode::Off));
        assert_eq!(
            parse_mode_override("T_M1", " counters "),
            Some(Mode::Counters)
        );
        assert_eq!(parse_mode_override("T_M1", "spans"), Some(Mode::Spans));
    }

    #[test]
    fn mode_parse_rejects_junk_and_warns_once() {
        assert_eq!(parse_mode_override("T_M_JUNK", "verbose"), None);
        // Second unparsable read of the same var stays silent (shared
        // warn-once machinery with the engine's numeric overrides).
        assert_eq!(parse_mode_override("T_M_JUNK", "verbose"), None);
        assert!(!warn_once("T_M_JUNK"));
    }

    #[test]
    fn counter_sums_across_threads_and_shards() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn gauge_tracks_last_and_max() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.value(), 7);
        g.record_max(3);
        assert_eq!(g.value(), 7, "record_max never lowers");
        g.record_max(12);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn histogram_empty_single_and_all_equal_match_the_old_percentile() {
        // The three regression edge cases against the sort-based
        // implementation: empty → 0, single sample → that sample,
        // all-equal → that value, at every quantile.
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0, "empty at q={q}");
        }
        h.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 42, "single sample at q={q}");
        }
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(777);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 777, "all-equal at q={q}");
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 77_700);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn histogram_percentile_is_the_selected_bucket_mean() {
        let h = Histogram::new();
        for v in [10, 20, 30, 40, 100, 50, 60] {
            h.record(v);
        }
        // Nearest rank 4 of 7 falls in the [32, 64) bucket holding
        // {40, 50, 60}; the answer is that bucket's mean.
        assert_eq!(h.percentile(0.50), 50);
        // Rank 7 falls in the [64, 128) bucket holding only 100.
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn histogram_buckets_values_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn span_guard_records_duration_and_event_in_spans_mode() {
        let _lock = MODE_LOCK.lock().unwrap();
        let before = mode();
        set_mode(Mode::Spans);
        {
            let _span = crate::span!("test.span_guard_records");
            std::hint::black_box(0u64);
        }
        set_mode(before);
        let snapshot = TelemetrySnapshot::capture();
        let span = snapshot
            .spans
            .iter()
            .find(|s| s.name == "test.span_guard_records")
            .expect("span aggregate registered");
        assert!(span.count >= 1);
        assert!(
            span_events()
                .iter()
                .any(|e| e.name == "test.span_guard_records"),
            "spans mode buffers a trace event"
        );
    }

    #[test]
    fn macros_record_through_the_registry() {
        let _lock = MODE_LOCK.lock().unwrap();
        let before = mode();
        set_mode(Mode::Counters);
        crate::counter_add!("test.macro_counter", 3);
        crate::counter_add!("test.macro_counter", 2);
        crate::gauge_max!("test.macro_gauge", 9);
        crate::hist_record!("test.macro_hist", 17);
        set_mode(before);
        let snapshot = TelemetrySnapshot::capture();
        let counter = snapshot
            .counters
            .iter()
            .find(|(name, _)| name == "test.macro_counter")
            .expect("counter registered");
        assert_eq!(counter.1, 5);
        let gauge = snapshot
            .gauges
            .iter()
            .find(|(name, _)| name == "test.macro_gauge")
            .expect("gauge registered");
        assert_eq!(gauge.1, 9);
        let hist = snapshot
            .histograms
            .iter()
            .find(|h| h.name == "test.macro_hist")
            .expect("histogram registered");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 17);
    }

    fn balanced(json: &str) {
        let braces = json.matches('{').count() == json.matches('}').count();
        let brackets = json.matches('[').count() == json.matches(']').count();
        assert!(braces && brackets, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn snapshot_json_has_every_section_and_field() {
        let snapshot = TelemetrySnapshot {
            mode: "spans".to_string(),
            counters: vec![("pool.dispatches".to_string(), 12)],
            gauges: vec![("pool.busy_peak".to_string(), 4)],
            histograms: vec![HistogramSnapshot {
                name: "dram.bus_busy_ns".to_string(),
                count: 3,
                sum: 120,
                p50: 40,
                p99: 60,
                max: 60,
            }],
            spans: vec![SpanSnapshot {
                name: "pipeline.data".to_string(),
                count: 1,
                total_ns: 1_000,
                p50_ns: 1_000,
                max_ns: 1_000,
            }],
            dropped_events: 2,
        };
        let json = snapshot.to_json();
        balanced(&json);
        for needle in [
            "\"schema\": \"sparkxd-telemetry-v1\"",
            "\"mode\": \"spans\"",
            "\"counters\": [",
            "{\"name\":\"pool.dispatches\",\"value\":12}",
            "{\"name\":\"pool.busy_peak\",\"value\":4}",
            "{\"name\":\"dram.bus_busy_ns\",\"count\":3,\"sum\":120,\"p50\":40,\"p99\":60,\"max\":60}",
            "{\"name\":\"pipeline.data\",\"count\":1,\"total_ns\":1000,\"p50_ns\":1000,\"max_ns\":1000}",
            "\"dropped_events\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn chrome_trace_renders_complete_events() {
        let events = [
            SpanEvent {
                name: "pipeline.data",
                tid: 0,
                ts_ns: 1_500,
                dur_ns: 2_000,
            },
            SpanEvent {
                name: "pool.run",
                tid: 3,
                ts_ns: 4_000,
                dur_ns: 500,
            },
        ];
        let json = render_chrome_trace(&events, 1);
        balanced(&json);
        for needle in [
            "\"traceEvents\":[",
            "\"displayTimeUnit\":\"ms\"",
            "\"dropped_events\":1",
            "{\"name\":\"pipeline.data\",\"cat\":\"sparkxd\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.500,\"dur\":2.000}",
            "{\"name\":\"pool.run\",\"cat\":\"sparkxd\",\"ph\":\"X\",\"pid\":1,\"tid\":3,\"ts\":4.000,\"dur\":0.500}",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn escape_json_handles_quotes_and_controls() {
        assert_eq!(escape_json("plain.name"), "plain.name");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn unescape_json(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (&mut chars).take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).unwrap_or(0);
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                Some(other) => out.push(other),
                None => {}
            }
        }
        out
    }

    /// Parses the `"counters"`/`"gauges"` sections back into pairs.
    fn parse_named_pairs(json: &str, section: &str) -> Vec<(String, u64)> {
        let start = json
            .find(&format!("\"{section}\": ["))
            .map(|i| i + section.len() + 5)
            .expect("section present");
        let end = json[start..].find(']').expect("section closed") + start;
        json[start..end]
            .split("},")
            .filter(|chunk| chunk.contains("\"name\""))
            .map(|chunk| {
                let name_start = chunk.find("\"name\":\"").expect("name key") + 8;
                let name_end = {
                    // The name may contain escaped quotes; scan for the
                    // first unescaped one.
                    let bytes = chunk.as_bytes();
                    let mut i = name_start;
                    loop {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => break i,
                            _ => i += 1,
                        }
                    }
                };
                let name = unescape_json(&chunk[name_start..name_end]);
                let value_start = chunk.find("\"value\":").expect("value key") + 8;
                let value: u64 = chunk[value_start..]
                    .trim_matches(|c: char| !c.is_ascii_digit())
                    .parse()
                    .expect("numeric value");
                (name, value)
            })
            .collect()
    }

    /// Deterministic `(name, value)` pairs from a seed — the vendored
    /// proptest stub has no string/collection strategies, so names are
    /// derived in-body over the metric alphabet (`[a-z][a-z0-9_.]*`).
    fn synth_pairs(seed: u64, n: usize) -> Vec<(String, u64)> {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut pairs = std::collections::BTreeMap::new();
        for _ in 0..n {
            let len = 1 + (next() % 12) as usize;
            let mut name = String::new();
            name.push((b'a' + (next() % 26) as u8) as char);
            for _ in 1..len {
                name.push(ALPHABET[(next() % ALPHABET.len() as u64) as usize] as char);
            }
            pairs.insert(name, next());
        }
        pairs.into_iter().collect()
    }

    proptest! {
        #[test]
        fn snapshot_json_round_trips_counters_and_gauges(
            counter_seed in any::<u64>(),
            gauge_seed in any::<u64>(),
            n_counters in 0usize..8,
            n_gauges in 0usize..8,
            dropped in any::<u64>(),
        ) {
            let snapshot = TelemetrySnapshot {
                mode: "counters".to_string(),
                counters: synth_pairs(counter_seed, n_counters),
                gauges: synth_pairs(gauge_seed, n_gauges),
                histograms: Vec::new(),
                spans: Vec::new(),
                dropped_events: dropped,
            };
            let json = snapshot.to_json();
            prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
            prop_assert_eq!(json.matches('[').count(), json.matches(']').count());
            let counters_back = parse_named_pairs(&json, "counters");
            let gauges_back = parse_named_pairs(&json, "gauges");
            prop_assert_eq!(counters_back, snapshot.counters);
            prop_assert_eq!(gauges_back, snapshot.gauges);
            prop_assert!(json.contains(&format!("\"dropped_events\": {dropped}")));
        }
    }
}
