//! The disabled-path contract: with `SPARKXD_TELEMETRY=off`, the
//! recording macros record nothing and allocate nothing after the mode
//! byte is initialised — the fast path is one relaxed atomic load and a
//! branch, so instrumented hot loops cost the same as uninstrumented
//! ones.
//!
//! This file holds a single `#[test]` on purpose: the counting
//! allocator and the cached mode byte are process-global, and cargo runs
//! tests *within* a binary concurrently.

use sparkxd_telemetry::{self as telemetry, Mode, TelemetrySnapshot};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper that counts this thread's allocations —
/// per-thread so harness bookkeeping on other threads cannot perturb
/// the measurement. Const-initialised `Cell<u64>` TLS has no destructor
/// and allocates nothing itself, so it is safe to touch from inside the
/// allocator.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn off_mode_records_nothing_and_allocates_nothing() {
    std::env::set_var(telemetry::TELEMETRY_ENV, "off");
    // Initialise the cached mode byte (the one env read, which may
    // allocate) before measuring the steady state.
    assert_eq!(telemetry::force_mode_from_env(), Mode::Off);

    let before = thread_allocations();
    for i in 0..10_000u64 {
        telemetry::counter_add!("test.off.counter", 1);
        telemetry::gauge_set!("test.off.gauge", i);
        telemetry::gauge_max!("test.off.peak", i);
        telemetry::hist_record!("test.off.hist", i);
        let _span = telemetry::span!("test.off.span");
    }
    let after = thread_allocations();
    assert_eq!(after - before, 0, "disabled-path macros must not allocate");

    // Nothing was registered either: even after enabling, a capture sees
    // no trace of the disabled-mode calls.
    telemetry::set_mode(Mode::Counters);
    let snapshot = TelemetrySnapshot::capture();
    telemetry::set_mode(Mode::Off);
    assert!(
        !snapshot
            .counters
            .iter()
            .any(|(name, _)| name.starts_with("test.off.")),
        "off-mode counter_add! must not register a site"
    );
    assert!(
        !snapshot
            .histograms
            .iter()
            .any(|h| h.name.starts_with("test.off.")),
        "off-mode hist_record! must not register a site"
    );
    assert!(
        !snapshot
            .spans
            .iter()
            .any(|s| s.name.starts_with("test.off.")),
        "off-mode span! must not register a site"
    );
    assert!(
        telemetry::span_events().is_empty(),
        "off-mode span! must not buffer trace events"
    );
}
