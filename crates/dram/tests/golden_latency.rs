//! Golden latency regression pins: exact `total_ns` / `serial_ns` /
//! `bus_busy_ns` values at `DramConfig::tiny()` for the three canonical
//! trace shapes (sequential, bank-interleaved, row-thrash).
//!
//! These are the numbers behind the Fig. 9b-style speedup comparisons;
//! timing refactors must not drift them silently. All values are exact
//! binary quarters (nominal LPDDR3 timings), so `==` on f64 is the right
//! comparison — a 1-ulp drift is a real behaviour change. Both replay
//! paths are checked against the same pins.

use sparkxd_dram::{
    Access, AccessStats, AccessTrace, AddressOrder, CompressedTrace, DramConfig, DramGeometry,
    DramModel, LatencyReport,
};

/// 32 reads alternating between two rows of bank 0 (worst case: every
/// access after the first is a conflict).
fn row_thrash_trace(g: &DramGeometry, n: usize) -> AccessTrace {
    let a = g
        .linear_to_coord(0, AddressOrder::BaselineRowMajor)
        .unwrap();
    let b = g
        .linear_to_coord(g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
        .unwrap();
    (0..n)
        .map(|i| Access::read(if i % 2 == 0 { a } else { b }))
        .collect()
}

fn check(trace: &AccessTrace, golden_latency: LatencyReport, golden_stats: AccessStats) {
    let per_access = DramModel::new(DramConfig::tiny()).replay(trace);
    assert_eq!(
        per_access.latency, golden_latency,
        "per-access latency drifted"
    );
    assert_eq!(per_access.stats, golden_stats, "per-access stats drifted");

    let compressed = CompressedTrace::compress(trace);
    let batch = DramModel::new(DramConfig::tiny()).replay_compressed(&compressed);
    assert_eq!(batch.latency, golden_latency, "batch latency drifted");
    assert_eq!(batch.stats, golden_stats, "batch stats drifted");
}

#[test]
fn sequential_64_golden() {
    let g = DramGeometry::tiny();
    // 64 columns = 8 rows of 8 in bank 0: 1 miss, 7 conflicts, 56 hits.
    check(
        &AccessTrace::sequential_reads(&g, 64),
        LatencyReport {
            total_ns: 540.0,
            serial_ns: 1406.25,
            bus_busy_ns: 320.0,
        },
        AccessStats {
            hits: 56,
            misses: 1,
            conflicts: 7,
            reads: 64,
            writes: 0,
        },
    );
}

#[test]
fn interleaved_64_golden() {
    let g = DramGeometry::tiny();
    // Striped over 2 banks: 4 row visits per bank, ACT/PRE overlap hides
    // most of the activation cost (total well under the sequential 540).
    check(
        &AccessTrace::interleaved_reads(&g, 64),
        LatencyReport {
            total_ns: 415.0,
            serial_ns: 1392.5,
            bus_busy_ns: 320.0,
        },
        AccessStats {
            hits: 56,
            misses: 2,
            conflicts: 6,
            reads: 64,
            writes: 0,
        },
    );
}

#[test]
fn row_thrash_32_golden() {
    let g = DramGeometry::tiny();
    // Alternating rows in one bank: every access after the first pays
    // tRAS-constrained PRE + ACT; the bus sits idle most of the time.
    check(
        &row_thrash_trace(&g, 32),
        LatencyReport {
            total_ns: 1667.75,
            serial_ns: 1466.25,
            bus_busy_ns: 160.0,
        },
        AccessStats {
            hits: 0,
            misses: 1,
            conflicts: 31,
            reads: 32,
            writes: 0,
        },
    );
}
