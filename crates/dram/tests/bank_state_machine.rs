//! Exhaustive tests for the row-buffer state machine (paper Sec. II-B1):
//! every (state, input) pair of the classification automaton, plus the
//! interaction between per-bank states inside the full `DramModel`.

use sparkxd_dram::{Access, AccessKind, AccessTrace, BankState, DramConfig, DramCoord, DramModel};

fn coord(bank: usize, subarray: usize, row: usize, col: usize) -> DramCoord {
    DramCoord {
        channel: 0,
        rank: 0,
        chip: 0,
        bank,
        subarray,
        row,
        col,
    }
}

/// Every transition of the two-state automaton (closed / row R open):
///
/// | state      | input       | kind     | next state |
/// |------------|-------------|----------|------------|
/// | closed     | access(r)   | Miss     | open(r)    |
/// | open(r)    | access(r)   | Hit      | open(r)    |
/// | open(r)    | access(s≠r) | Conflict | open(s)    |
/// | any        | precharge   | —        | closed     |
#[test]
fn full_transition_table() {
    // closed --access(r)--> Miss, opens r
    let mut b = BankState::new();
    assert_eq!(b.open_row(), None);
    assert_eq!(b.access(3), AccessKind::Miss);
    assert_eq!(b.open_row(), Some(3));

    // open(r) --access(r)--> Hit, stays open(r)
    assert_eq!(b.access(3), AccessKind::Hit);
    assert_eq!(b.open_row(), Some(3));

    // open(r) --access(s)--> Conflict, switches to open(s)
    assert_eq!(b.access(5), AccessKind::Conflict);
    assert_eq!(b.open_row(), Some(5));

    // any --precharge--> closed; next access is a Miss again
    b.precharge();
    assert_eq!(b.open_row(), None);
    assert_eq!(b.access(5), AccessKind::Miss);

    // precharge on an already-closed bank is idempotent
    let mut closed = BankState::new();
    closed.precharge();
    assert_eq!(closed.open_row(), None);
    assert_eq!(closed.access(0), AccessKind::Miss);
}

#[test]
fn hit_runs_of_any_length_never_change_state() {
    let mut b = BankState::new();
    b.access(9);
    for _ in 0..1000 {
        assert_eq!(b.access(9), AccessKind::Hit);
        assert_eq!(b.open_row(), Some(9));
    }
}

#[test]
fn alternating_rows_conflict_every_time() {
    let mut b = BankState::new();
    assert_eq!(b.access(0), AccessKind::Miss);
    for i in 1..100 {
        assert_eq!(b.access(i % 2), AccessKind::Conflict);
    }
}

/// Classification counts for a known access pattern must be exact, not just
/// plausible: row-sequential streaming yields one row-opening per touched
/// row and hits for every other column.
#[test]
fn sequential_stream_counts_exactly() {
    let config = DramConfig::tiny();
    let cols_per_row = config.geometry.cols_per_row; // 8 in tiny
    let accesses = 8 * cols_per_row; // exactly 8 full rows
    let trace = AccessTrace::sequential_reads(&config.geometry, accesses);
    let outcome = DramModel::new(config).replay(&trace);
    let rows_touched = (accesses / cols_per_row) as u64;
    assert_eq!(outcome.stats.total(), accesses as u64);
    assert_eq!(
        outcome.stats.hits,
        accesses as u64 - rows_touched,
        "all non-first columns of each row must hit"
    );
    assert_eq!(
        outcome.stats.misses + outcome.stats.conflicts,
        rows_touched,
        "each row boundary costs exactly one miss or conflict"
    );
}

/// Banks keep independent row buffers: a pattern that alternates between
/// two rows conflicts on every access when forced through one bank, but
/// runs at full hit rate when the rows live in different banks.
#[test]
fn banks_are_independent_state_machines() {
    let config = DramConfig::tiny();

    let interleaved: Vec<Access> = (0..10)
        .map(|i| Access::read(coord(i % 2, 0, i % 2, 0)))
        .collect();
    let out = DramModel::new(config.clone()).replay(&AccessTrace::from_accesses(interleaved));
    assert_eq!(out.stats.misses, 2);
    assert_eq!(out.stats.hits, 8);
    assert_eq!(out.stats.conflicts, 0);

    let serial: Vec<Access> = (0..10)
        .map(|i| Access::read(coord(0, 0, i % 2, 0)))
        .collect();
    let out = DramModel::new(config).replay(&AccessTrace::from_accesses(serial));
    assert_eq!(out.stats.misses, 1);
    assert_eq!(out.stats.conflicts, 9);
    assert_eq!(out.stats.hits, 0);
}

/// Rows in *different subarrays* of the same bank still share one row
/// buffer: switching subarrays is a conflict, not a fresh miss.
#[test]
fn subarray_switch_within_bank_conflicts() {
    let config = DramConfig::tiny();
    let accesses = vec![
        Access::read(coord(0, 0, 0, 0)),
        Access::read(coord(0, 1, 0, 0)),
        Access::read(coord(0, 2, 0, 0)),
    ];
    let out = DramModel::new(config).replay(&AccessTrace::from_accesses(accesses));
    assert_eq!(out.stats.misses, 1);
    assert_eq!(out.stats.conflicts, 2);
}

/// The replayed classification must order per-access kinds exactly as the
/// constructed sequence dictates: miss, hit, conflict.
#[test]
fn constructed_sequence_classifies_miss_hit_conflict() {
    let config = DramConfig::tiny();
    let accesses = vec![
        Access::read(coord(0, 0, 0, 0)), // closed bank: miss
        Access::read(coord(0, 0, 0, 1)), // same row, next col: hit
        Access::read(coord(0, 0, 1, 0)), // different row: conflict
    ];
    let out = DramModel::new(config).replay(&AccessTrace::from_accesses(accesses));
    assert_eq!(out.stats.misses, 1);
    assert_eq!(out.stats.hits, 1);
    assert_eq!(out.stats.conflicts, 1);
    // Stats identities the energy model relies on: one ACT per opened row,
    // one PRE per conflict.
    assert_eq!(out.stats.activates(), 2);
    assert_eq!(out.stats.precharges(), 1);
}
