//! Replay-oracle property suite: the batch (compressed) replay path must
//! agree **bit for bit** with the retained per-access replay on
//! `AccessStats`, `LatencyReport`, and — when requested — per-access
//! `kinds`, for arbitrary mixed traces.
//!
//! Traces are generated from a seeded RNG as a mix of the shapes the
//! mapping layer produces (long same-row runs) and adversarial fillers
//! (random single accesses, row thrash, direction flips), so both the
//! closed-form run arithmetic and the escape-hatch path are exercised in
//! every interleaving. `DramConfig::tiny()` uses the nominal LPDDR3
//! timings, which are exact binary quarters — every f64 operation in both
//! paths is exact, so strict equality is the right assertion.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkxd_dram::{
    Access, AccessTrace, CompressedTrace, DramConfig, DramCoord, DramGeometry, DramModel,
};

/// Random mixed trace over the tiny geometry: sequential runs (possibly
/// wrapping rows), random jumps, and read/write mixes.
fn random_trace(seed: u64, segments: usize) -> AccessTrace {
    let g = DramGeometry::tiny();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = AccessTrace::new();
    for _ in 0..segments {
        let coord = DramCoord {
            channel: 0,
            rank: 0,
            chip: 0,
            bank: rng.gen_range(0..g.banks),
            subarray: rng.gen_range(0..g.subarrays_per_bank),
            row: rng.gen_range(0..g.rows_per_subarray),
            col: rng.gen_range(0..g.cols_per_row),
        };
        let write = rng.gen_range(0..4u32) == 0;
        let mk = |c| {
            if write {
                Access::write(c)
            } else {
                Access::read(c)
            }
        };
        match rng.gen_range(0..3u32) {
            // A same-row sequential burst from `coord` (run structure).
            0 => {
                let len = rng.gen_range(1..=(g.cols_per_row - coord.col));
                for i in 0..len {
                    trace.push(mk(DramCoord {
                        col: coord.col + i,
                        ..coord
                    }));
                }
            }
            // Row thrash: alternate `coord`'s row with another row of the
            // same bank (conflicts; defeats run merging).
            1 => {
                let other = DramCoord {
                    row: (coord.row + 1) % g.rows_per_subarray,
                    ..coord
                };
                for i in 0..rng.gen_range(1..6usize) {
                    trace.push(mk(if i % 2 == 0 { coord } else { other }));
                }
            }
            // A lone access.
            _ => trace.push(mk(coord)),
        }
    }
    trace
}

fn model() -> DramModel {
    DramModel::new(DramConfig::tiny())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The archetype headline: compressed replay ≡ per-access replay on
    /// stats and latency, bit for bit.
    #[test]
    fn compressed_replay_is_bit_identical_to_per_access(seed in 0u64..10_000, segments in 1usize..40) {
        let trace = random_trace(seed, segments);
        let compressed = CompressedTrace::compress(&trace);
        prop_assert_eq!(compressed.expand(), trace.clone());
        let reference = model().replay(&trace);
        let batch = model().replay_compressed(&compressed);
        prop_assert_eq!(&batch.stats, &reference.stats);
        // f64 equality is intentional: this is the bit-identity claim.
        prop_assert_eq!(batch.latency.total_ns, reference.latency.total_ns);
        prop_assert_eq!(batch.latency.serial_ns, reference.latency.serial_ns);
        prop_assert_eq!(batch.latency.bus_busy_ns, reference.latency.bus_busy_ns);
    }

    /// With kinds requested, the per-access classifications align too.
    #[test]
    fn compressed_kinds_align_with_per_access(seed in 0u64..10_000, segments in 1usize..24) {
        let trace = random_trace(seed, segments);
        let compressed = CompressedTrace::compress(&trace);
        let reference = model().replay_with_kinds(&trace);
        let batch = model().replay_compressed_with_kinds(&compressed);
        prop_assert_eq!(&batch, &reference);
        let kinds = batch.kinds.as_ref().expect("kinds requested");
        prop_assert_eq!(kinds.len(), trace.len());
    }

    /// `repeat` passes equal materialized per-pass copies.
    #[test]
    fn repeat_matches_materialized_passes(seed in 0u64..10_000, segments in 1usize..12, passes in 1usize..5) {
        let one_pass = random_trace(seed, segments);
        let mut materialized = AccessTrace::new();
        for _ in 0..passes {
            materialized.extend(one_pass.clone());
        }
        let compressed = CompressedTrace::compress(&one_pass).with_repeat(passes);
        prop_assert_eq!(compressed.len(), materialized.len());
        let reference = model().replay_with_kinds(&materialized);
        let batch = model().replay_compressed_with_kinds(&compressed);
        prop_assert_eq!(batch, reference);
    }

    /// Classification-only walks agree with replay stats on both paths
    /// (the shared-helper satellite, on compressed traces too).
    #[test]
    fn classify_agrees_with_replay_on_both_paths(seed in 0u64..10_000, segments in 1usize..30) {
        let trace = random_trace(seed, segments);
        let compressed = CompressedTrace::compress(&trace);
        let replay_stats = model().replay(&trace).stats;
        prop_assert_eq!(model().classify(&trace), replay_stats);
        prop_assert_eq!(model().classify_compressed(&compressed), replay_stats);
        prop_assert_eq!(
            model().replay_compressed(&compressed).stats,
            replay_stats
        );
    }

    /// Compression round-trips: expansion is lossless, re-compression is
    /// the identity on normalized traces.
    #[test]
    fn compress_expand_roundtrip(seed in 0u64..10_000, segments in 1usize..30) {
        let trace = random_trace(seed, segments);
        let compressed = CompressedTrace::compress(&trace);
        prop_assert_eq!(compressed.expand(), trace);
        prop_assert_eq!(&CompressedTrace::compress(&compressed.expand()), &compressed);
        prop_assert_eq!(compressed.iter().count(), compressed.len());
    }
}

/// Bank state carried *across* replay calls also matches: replaying two
/// traces back to back on one model equals the concatenated trace.
#[test]
fn bank_state_carries_across_batch_replays() {
    let a = random_trace(11, 9);
    let b = random_trace(23, 9);
    let mut concatenated = a.clone();
    concatenated.extend(b.clone());

    let mut batch_model = model();
    batch_model.replay_compressed(&CompressedTrace::compress(&a));
    let second = batch_model.replay_compressed(&CompressedTrace::compress(&b));

    let mut ref_model = model();
    ref_model.replay(&a);
    let ref_second = ref_model.replay(&b);
    assert_eq!(second.stats, ref_second.stats);

    // And the concatenation replays identically on both paths.
    let whole_batch = model().replay_compressed(&CompressedTrace::compress(&concatenated));
    let whole_ref = model().replay(&concatenated);
    assert_eq!(whole_batch, whole_ref);
}
