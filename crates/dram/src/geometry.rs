//! DRAM organisation: the channel/rank/chip/bank/subarray/row/column
//! hierarchy of paper Fig. 5(a), plus linear-address ↔ coordinate mappings.

use crate::DramError;

/// Shape of a DRAM device.
///
/// A *column* here is one burst-sized chunk (`col_bytes` bytes): the unit
/// transferred by a single RD/WR command with the configured burst length.
///
/// # Example
///
/// ```
/// use sparkxd_dram::DramGeometry;
///
/// let g = DramGeometry::lpddr3_1600_4gb();
/// // 8 banks x 64 subarrays x 512 rows x 128 cols x 16 B = 4 Gbit.
/// assert_eq!(g.capacity_bytes(), 512 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Channels per module.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Chips per rank.
    pub chips: usize,
    /// Banks per chip.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Rows per subarray.
    pub rows_per_subarray: usize,
    /// Burst-sized columns per row.
    pub cols_per_row: usize,
    /// Bytes per column (one burst: device width × burst length / 8).
    pub col_bytes: usize,
}

impl DramGeometry {
    /// The paper's LPDDR3-1600 4Gb configuration: 8 banks, 2 KiB rows
    /// (128 columns × 16 B), 64 subarrays of 512 rows per bank, x16 device
    /// with burst length 8 (16 B per burst).
    pub fn lpddr3_1600_4gb() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            chips: 1,
            banks: 8,
            subarrays_per_bank: 64,
            rows_per_subarray: 512,
            cols_per_row: 128,
            col_bytes: 16,
        }
    }

    /// A small geometry for fast tests: 2 banks × 4 subarrays × 16 rows ×
    /// 8 columns × 16 B = 16 KiB.
    pub fn tiny() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            chips: 1,
            banks: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 16,
            cols_per_row: 8,
            col_bytes: 16,
        }
    }

    /// Rows per bank (`subarrays_per_bank × rows_per_subarray`).
    pub fn rows_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> usize {
        self.cols_per_row * self.col_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks as u64
            * self.chips as u64
            * self.banks as u64
            * self.rows_per_bank() as u64
            * self.row_bytes() as u64
    }

    /// Total capacity in burst columns.
    pub fn capacity_cols(&self) -> u64 {
        self.capacity_bytes() / self.col_bytes as u64
    }

    /// Total number of subarrays across the whole device.
    pub fn total_subarrays(&self) -> usize {
        self.channels * self.ranks * self.chips * self.banks * self.subarrays_per_bank
    }

    /// Validates a coordinate against this geometry.
    ///
    /// # Errors
    ///
    /// [`DramError::CoordOutOfRange`] naming the offending field.
    pub fn validate(&self, c: &DramCoord) -> Result<(), DramError> {
        let checks = [
            (c.channel, self.channels, "channel"),
            (c.rank, self.ranks, "rank"),
            (c.chip, self.chips, "chip"),
            (c.bank, self.banks, "bank"),
            (c.subarray, self.subarrays_per_bank, "subarray"),
            (c.row, self.rows_per_subarray, "row"),
            (c.col, self.cols_per_row, "col"),
        ];
        for (v, max, name) in checks {
            if v >= max {
                return Err(DramError::CoordOutOfRange(format!(
                    "{name}={v} (max {max})"
                )));
            }
        }
        Ok(())
    }

    /// Converts a linear column address into a coordinate using `order`.
    ///
    /// # Errors
    ///
    /// [`DramError::AddressOutOfRange`] if `addr` exceeds capacity.
    pub fn linear_to_coord(&self, addr: u64, order: AddressOrder) -> Result<DramCoord, DramError> {
        if addr >= self.capacity_cols() {
            return Err(DramError::AddressOutOfRange {
                address: addr,
                capacity: self.capacity_cols(),
            });
        }
        let mut rem = addr;
        let mut take = |n: usize| -> usize {
            let v = (rem % n as u64) as usize;
            rem /= n as u64;
            v
        };
        Ok(match order {
            // Baseline mapping (paper Sec. IV-B Step-2): subsequent
            // addresses fill the columns of a row, then the next row of the
            // same bank, spilling into the next bank once the bank is full.
            AddressOrder::BaselineRowMajor => {
                let col = take(self.cols_per_row);
                let row = take(self.rows_per_subarray);
                let subarray = take(self.subarrays_per_bank);
                let bank = take(self.banks);
                let chip = take(self.chips);
                let rank = take(self.ranks);
                let channel = take(self.channels);
                DramCoord {
                    channel,
                    rank,
                    chip,
                    bank,
                    subarray,
                    row,
                    col,
                }
            }
            // Bank-interleaved: consecutive columns land in the same row of
            // *different* banks, exposing the multi-bank burst feature.
            AddressOrder::BankInterleaved => {
                let bank = take(self.banks);
                let col = take(self.cols_per_row);
                let row = take(self.rows_per_subarray);
                let subarray = take(self.subarrays_per_bank);
                let chip = take(self.chips);
                let rank = take(self.ranks);
                let channel = take(self.channels);
                DramCoord {
                    channel,
                    rank,
                    chip,
                    bank,
                    subarray,
                    row,
                    col,
                }
            }
        })
    }

    /// Inverse of [`linear_to_coord`](Self::linear_to_coord).
    ///
    /// # Errors
    ///
    /// [`DramError::CoordOutOfRange`] if the coordinate is invalid.
    pub fn coord_to_linear(&self, c: &DramCoord, order: AddressOrder) -> Result<u64, DramError> {
        self.validate(c)?;
        let fields: Vec<(usize, usize)> = match order {
            AddressOrder::BaselineRowMajor => vec![
                (c.col, self.cols_per_row),
                (c.row, self.rows_per_subarray),
                (c.subarray, self.subarrays_per_bank),
                (c.bank, self.banks),
                (c.chip, self.chips),
                (c.rank, self.ranks),
                (c.channel, self.channels),
            ],
            AddressOrder::BankInterleaved => vec![
                (c.bank, self.banks),
                (c.col, self.cols_per_row),
                (c.row, self.rows_per_subarray),
                (c.subarray, self.subarrays_per_bank),
                (c.chip, self.chips),
                (c.rank, self.ranks),
                (c.channel, self.channels),
            ],
        };
        let mut addr = 0u64;
        let mut scale = 1u64;
        for (v, n) in fields {
            addr += v as u64 * scale;
            scale *= n as u64;
        }
        Ok(addr)
    }

    /// Flat identifier of the subarray containing `c`.
    pub fn subarray_id(&self, c: &DramCoord) -> SubarrayId {
        let per_chip = self.banks * self.subarrays_per_bank;
        let per_rank = per_chip * self.chips;
        let per_channel = per_rank * self.ranks;
        SubarrayId(
            c.channel * per_channel
                + c.rank * per_rank
                + c.chip * per_chip
                + c.bank * self.subarrays_per_bank
                + c.subarray,
        )
    }

    /// Reconstructs the (channel, rank, chip, bank, subarray) position of a
    /// flat subarray id.
    pub fn subarray_position(&self, id: SubarrayId) -> DramCoord {
        let mut rem = id.0;
        let subarray = rem % self.subarrays_per_bank;
        rem /= self.subarrays_per_bank;
        let bank = rem % self.banks;
        rem /= self.banks;
        let chip = rem % self.chips;
        rem /= self.chips;
        let rank = rem % self.ranks;
        rem /= self.ranks;
        let channel = rem % self.channels;
        DramCoord {
            channel,
            rank,
            chip,
            bank,
            subarray,
            row: 0,
            col: 0,
        }
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::lpddr3_1600_4gb()
    }
}

/// Ordering used to lay consecutive linear addresses onto the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressOrder {
    /// Fill a row, then the next row in the same bank (paper's baseline).
    #[default]
    BaselineRowMajor,
    /// Stripe consecutive columns across banks (multi-bank burst friendly).
    BankInterleaved,
}

/// Full coordinate of one burst column inside the DRAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Chip index within the rank.
    pub chip: usize,
    /// Bank index within the chip.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Row index within the subarray.
    pub row: usize,
    /// Burst-column index within the row.
    pub col: usize,
}

impl DramCoord {
    /// Global row index within the bank (subarray-relative row flattened).
    pub fn bank_row(&self, geometry: &DramGeometry) -> usize {
        self.subarray * geometry.rows_per_subarray + self.row
    }
}

impl std::fmt::Display for DramCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{}.ra{}.cp{}.ba{}.su{}.ro{}.co{}",
            self.channel, self.rank, self.chip, self.bank, self.subarray, self.row, self.col
        )
    }
}

/// Flat identifier of a subarray across the whole device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SubarrayId(pub usize);

impl std::fmt::Display for SubarrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sa{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lpddr3_capacity_is_4_gbit() {
        let g = DramGeometry::lpddr3_1600_4gb();
        assert_eq!(g.capacity_bytes() * 8, 4 * 1024 * 1024 * 1024);
        assert_eq!(g.row_bytes(), 2048);
        assert_eq!(g.total_subarrays(), 8 * 64);
    }

    #[test]
    fn baseline_order_fills_rows_first() {
        let g = DramGeometry::tiny();
        let c0 = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let c1 = g
            .linear_to_coord(1, AddressOrder::BaselineRowMajor)
            .unwrap();
        assert_eq!(c0.col, 0);
        assert_eq!(c1.col, 1);
        assert_eq!(c0.row, c1.row);
        assert_eq!(c0.bank, c1.bank);
        // After one full row, the row advances within the same bank.
        let c8 = g
            .linear_to_coord(g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
            .unwrap();
        assert_eq!(c8.row, 1);
        assert_eq!(c8.bank, 0);
    }

    #[test]
    fn interleaved_order_strides_banks_first() {
        let g = DramGeometry::tiny();
        let c0 = g.linear_to_coord(0, AddressOrder::BankInterleaved).unwrap();
        let c1 = g.linear_to_coord(1, AddressOrder::BankInterleaved).unwrap();
        assert_eq!(c0.bank, 0);
        assert_eq!(c1.bank, 1);
        assert_eq!(c0.col, c1.col);
    }

    #[test]
    fn out_of_range_address_is_rejected() {
        let g = DramGeometry::tiny();
        let cap = g.capacity_cols();
        assert!(g
            .linear_to_coord(cap, AddressOrder::BaselineRowMajor)
            .is_err());
        assert!(g
            .linear_to_coord(cap - 1, AddressOrder::BaselineRowMajor)
            .is_ok());
    }

    #[test]
    fn invalid_coord_is_rejected() {
        let g = DramGeometry::tiny();
        let c = DramCoord {
            bank: g.banks, // one past the end
            ..Default::default()
        };
        assert!(matches!(g.validate(&c), Err(DramError::CoordOutOfRange(_))));
    }

    #[test]
    fn subarray_id_roundtrip() {
        let g = DramGeometry::tiny();
        for bank in 0..g.banks {
            for sa in 0..g.subarrays_per_bank {
                let c = DramCoord {
                    bank,
                    subarray: sa,
                    ..DramCoord::default()
                };
                let id = g.subarray_id(&c);
                let pos = g.subarray_position(id);
                assert_eq!(pos.bank, bank);
                assert_eq!(pos.subarray, sa);
            }
        }
    }

    #[test]
    fn bank_row_flattens_subarray() {
        let g = DramGeometry::tiny();
        let c = DramCoord {
            subarray: 2,
            row: 3,
            ..DramCoord::default()
        };
        assert_eq!(c.bank_row(&g), 2 * g.rows_per_subarray + 3);
    }

    #[test]
    fn coord_display_mentions_every_level() {
        let c = DramCoord {
            channel: 1,
            rank: 2,
            chip: 3,
            bank: 4,
            subarray: 5,
            row: 6,
            col: 7,
        };
        assert_eq!(c.to_string(), "ch1.ra2.cp3.ba4.su5.ro6.co7");
    }

    proptest! {
        #[test]
        fn linear_coord_roundtrip_baseline(addr in 0u64..(16 * 1024 / 16)) {
            let g = DramGeometry::tiny();
            prop_assume!(addr < g.capacity_cols());
            let c = g.linear_to_coord(addr, AddressOrder::BaselineRowMajor).unwrap();
            let back = g.coord_to_linear(&c, AddressOrder::BaselineRowMajor).unwrap();
            prop_assert_eq!(addr, back);
        }

        #[test]
        fn linear_coord_roundtrip_interleaved(addr in 0u64..(16 * 1024 / 16)) {
            let g = DramGeometry::tiny();
            prop_assume!(addr < g.capacity_cols());
            let c = g.linear_to_coord(addr, AddressOrder::BankInterleaved).unwrap();
            let back = g.coord_to_linear(&c, AddressOrder::BankInterleaved).unwrap();
            prop_assert_eq!(addr, back);
        }

        #[test]
        fn distinct_addresses_map_to_distinct_coords(
            a in 0u64..1024, b in 0u64..1024
        ) {
            let g = DramGeometry::tiny();
            prop_assume!(a != b && a < g.capacity_cols() && b < g.capacity_cols());
            let ca = g.linear_to_coord(a, AddressOrder::BaselineRowMajor).unwrap();
            let cb = g.linear_to_coord(b, AddressOrder::BaselineRowMajor).unwrap();
            prop_assert_ne!(ca, cb);
        }
    }
}
