//! # sparkxd-dram
//!
//! Cycle-level model of a commodity DRAM device, the substrate beneath the
//! SparkXD framework's mapping and energy analyses.
//!
//! The model covers exactly what the paper (Section II-B) relies on:
//!
//! * the **organisation hierarchy** — channel / rank / chip / bank /
//!   subarray / row / column ([`DramGeometry`], [`DramCoord`]);
//! * the **row-buffer state machine** — every access is classified as a
//!   *row-buffer hit*, *miss* or *conflict* ([`AccessKind`], [`DramModel`]);
//! * **latency accounting** with voltage-scaled `tRCD`/`tRAS`/`tRP` and the
//!   **multi-bank burst** feature (ACT/PRE on one bank overlaps data bursts
//!   on others) used by the paper's mapping to keep throughput flat;
//! * replayable **access traces** and per-condition **statistics** that the
//!   `sparkxd-energy` crate turns into DRAM access energy.
//!
//! The default configuration is the paper's LPDDR3-1600 4Gb device.
//!
//! ## Trace representation & replay paths
//!
//! Weight streaming produces long same-row bursts, so traces come in two
//! forms and the model offers three ways to consume them:
//!
//! | path | input | cost | use when |
//! |------|-------|------|----------|
//! | [`DramModel::replay_compressed`] | [`CompressedTrace`] | O(1) per [`trace::TraceOp::Run`] | the default: timing + stats for mapped weight images (energy eval, figures, nightly) |
//! | [`DramModel::classify_compressed`] / [`DramModel::classify`] | either | no timing state | only the hit/miss/conflict mix matters |
//! | [`DramModel::replay`] | [`AccessTrace`] | O(accesses) | reference/oracle path, or traces with no run structure |
//!
//! Per-access classifications (`kinds`) are opt-in via
//! [`DramModel::replay_with_kinds`] /
//! [`DramModel::replay_compressed_with_kinds`]; the plain entry points keep
//! [`ReplayOutcome::kinds`] as `None` so aggregate consumers skip the
//! allocation. A [`CompressedTrace`] also carries a `repeat` count so
//! multi-pass inference traces never materialize per-pass copies.
//!
//! Both replay paths produce the same stats and latency — bit-identical
//! whenever the timing parameters are exactly representable in binary
//! (true for all JEDEC-style profiles, whose timings are multiples of a
//! quarter nanosecond); circuit-derived core timings agree to ≤ 1 ulp per
//! run. The equivalence is enforced by the replay-oracle property suite in
//! `tests/replay_oracle.rs` and pinned by `tests/golden_latency.rs`.
//!
//! ## Example
//!
//! ```
//! use sparkxd_dram::{AccessTrace, CompressedTrace, DramConfig, DramModel};
//!
//! let config = DramConfig::lpddr3_1600_4gb();
//! // Stream 64 column bursts laid out sequentially (baseline mapping).
//! let trace = AccessTrace::sequential_reads(&config.geometry, 64);
//! let mut model = DramModel::new(config.clone());
//! let outcome = model.replay(&trace);
//! assert_eq!(outcome.stats.total(), 64);
//! assert!(outcome.stats.hits > outcome.stats.conflicts);
//!
//! // Same measurement through the batch path: one op per row.
//! let compressed = CompressedTrace::compress(&trace);
//! let batch = DramModel::new(config).replay_compressed(&compressed);
//! assert_eq!(batch, outcome);
//! ```

pub mod bank;
pub mod controller;
pub mod geometry;
pub mod stats;
pub mod timing;
pub mod trace;

pub use bank::{AccessKind, BankState};
pub use controller::{DramModel, LatencyReport, ReplayOutcome};
pub use geometry::{AddressOrder, DramCoord, DramGeometry, SubarrayId};
pub use stats::AccessStats;
pub use timing::{DramConfig, DramTiming};
pub use trace::{Access, AccessTrace, CompressedTrace, Direction, TraceOp};

/// Errors reported by the DRAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A coordinate lies outside the configured geometry.
    CoordOutOfRange(String),
    /// A linear address exceeds device capacity.
    AddressOutOfRange {
        /// The offending linear word index.
        address: u64,
        /// Device capacity in words.
        capacity: u64,
    },
}

impl std::fmt::Display for DramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramError::CoordOutOfRange(what) => write!(f, "coordinate out of range: {what}"),
            DramError::AddressOutOfRange { address, capacity } => {
                write!(f, "address {address} exceeds capacity {capacity} words")
            }
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DramError::AddressOutOfRange {
            address: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("exceeds capacity"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DramError>();
    }
}
