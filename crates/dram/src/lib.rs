//! # sparkxd-dram
//!
//! Cycle-level model of a commodity DRAM device, the substrate beneath the
//! SparkXD framework's mapping and energy analyses.
//!
//! The model covers exactly what the paper (Section II-B) relies on:
//!
//! * the **organisation hierarchy** — channel / rank / chip / bank /
//!   subarray / row / column ([`DramGeometry`], [`DramCoord`]);
//! * the **row-buffer state machine** — every access is classified as a
//!   *row-buffer hit*, *miss* or *conflict* ([`AccessKind`], [`DramModel`]);
//! * **latency accounting** with voltage-scaled `tRCD`/`tRAS`/`tRP` and the
//!   **multi-bank burst** feature (ACT/PRE on one bank overlaps data bursts
//!   on others) used by the paper's mapping to keep throughput flat;
//! * replayable **access traces** and per-condition **statistics** that the
//!   `sparkxd-energy` crate turns into DRAM access energy.
//!
//! The default configuration is the paper's LPDDR3-1600 4Gb device.
//!
//! ## Example
//!
//! ```
//! use sparkxd_dram::{AccessTrace, DramConfig, DramModel};
//!
//! let config = DramConfig::lpddr3_1600_4gb();
//! // Stream 64 column bursts laid out sequentially (baseline mapping).
//! let trace = AccessTrace::sequential_reads(&config.geometry, 64);
//! let mut model = DramModel::new(config);
//! let outcome = model.replay(&trace);
//! assert_eq!(outcome.stats.total(), 64);
//! assert!(outcome.stats.hits > outcome.stats.conflicts);
//! ```

pub mod bank;
pub mod controller;
pub mod geometry;
pub mod stats;
pub mod timing;
pub mod trace;

pub use bank::{AccessKind, BankState};
pub use controller::{DramModel, LatencyReport, ReplayOutcome};
pub use geometry::{AddressOrder, DramCoord, DramGeometry, SubarrayId};
pub use stats::AccessStats;
pub use timing::{DramConfig, DramTiming};
pub use trace::{Access, AccessTrace, Direction};

/// Errors reported by the DRAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A coordinate lies outside the configured geometry.
    CoordOutOfRange(String),
    /// A linear address exceeds device capacity.
    AddressOutOfRange {
        /// The offending linear word index.
        address: u64,
        /// Device capacity in words.
        capacity: u64,
    },
}

impl std::fmt::Display for DramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DramError::CoordOutOfRange(what) => write!(f, "coordinate out of range: {what}"),
            DramError::AddressOutOfRange { address, capacity } => {
                write!(f, "address {address} exceeds capacity {capacity} words")
            }
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DramError::AddressOutOfRange {
            address: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("exceeds capacity"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DramError>();
    }
}
