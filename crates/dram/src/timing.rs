//! DRAM timing parameters and the full device configuration.

use crate::geometry::DramGeometry;
use sparkxd_circuit::{BitlineModel, DerivedTiming, Nanos, TimingTable, Volt};

/// Timing parameters of the device at one operating voltage, in
/// nanoseconds.
///
/// `t_rcd`, `t_ras` and `t_rp` scale with supply voltage (derived from the
/// circuit model); `t_cl` and `t_burst` are interface timings fixed by the
/// data rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Row-address to column-address delay (ns).
    pub t_rcd: f64,
    /// Row active time (ns).
    pub t_ras: f64,
    /// Row precharge time (ns).
    pub t_rp: f64,
    /// CAS (read) latency (ns).
    pub t_cl: f64,
    /// Data burst duration for one column access (ns).
    pub t_burst: f64,
    /// Clock period (ns).
    pub t_ck: f64,
}

impl DramTiming {
    /// LPDDR3-1600 nominal (1.35 V) timings: 800 MHz clock, CL11-class
    /// read latency, burst length 8 (4 clock edstates = 5 ns of data bus).
    pub fn lpddr3_1600_nominal() -> Self {
        Self {
            t_rcd: 13.75,
            t_ras: 39.0,
            t_rp: 13.75,
            t_cl: 13.75,
            t_burst: 5.0,
            t_ck: 1.25,
        }
    }

    /// Builds a timing set from circuit-derived core timings, keeping the
    /// interface timings (CL, burst, clock) from the nominal profile.
    pub fn from_derived(d: &DerivedTiming) -> Self {
        let nominal = Self::lpddr3_1600_nominal();
        Self {
            t_rcd: d.t_rcd.0,
            t_ras: d.t_ras.0,
            t_rp: d.t_rp.0,
            ..nominal
        }
    }

    /// Row cycle time `tRC = tRAS + tRP` (ns).
    pub fn t_rc(&self) -> f64 {
        self.t_ras + self.t_rp
    }

    /// Latency of one access by row-buffer outcome, ignoring overlap:
    /// hit = CL+burst, miss = RCD+CL+burst, conflict = RP+RCD+CL+burst.
    pub fn unpipelined_latency(&self, kind: crate::bank::AccessKind) -> f64 {
        use crate::bank::AccessKind::*;
        match kind {
            Hit => self.t_cl + self.t_burst,
            Miss => self.t_rcd + self.t_cl + self.t_burst,
            Conflict => self.t_rp + self.t_rcd + self.t_cl + self.t_burst,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::lpddr3_1600_nominal()
    }
}

/// Complete DRAM device configuration: geometry, timing and the operating
/// voltage the timing corresponds to.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Organisation of the device.
    pub geometry: DramGeometry,
    /// Timing parameters at `v_supply`.
    pub timing: DramTiming,
    /// Supply voltage.
    pub v_supply: Volt,
}

impl DramConfig {
    /// The paper's accurate-DRAM configuration: LPDDR3-1600 4Gb at 1.35 V.
    pub fn lpddr3_1600_4gb() -> Self {
        Self {
            geometry: DramGeometry::lpddr3_1600_4gb(),
            timing: DramTiming::lpddr3_1600_nominal(),
            v_supply: Volt(1.35),
        }
    }

    /// A reduced-voltage (approximate) configuration with core timings
    /// derived from the circuit model at voltage `v`.
    ///
    /// # Errors
    ///
    /// Propagates circuit-model errors for non-physical voltages.
    pub fn approximate(v: Volt) -> Result<Self, sparkxd_circuit::CircuitError> {
        let model = BitlineModel::lpddr3();
        let derived = model.derive_timing(v)?;
        Ok(Self {
            geometry: DramGeometry::lpddr3_1600_4gb(),
            timing: DramTiming::from_derived(&derived),
            v_supply: v,
        })
    }

    /// Builds one configuration per entry of a pre-computed timing table
    /// (avoids re-running the circuit model per voltage).
    pub fn from_timing_table(table: &TimingTable) -> Vec<Self> {
        table
            .entries()
            .iter()
            .map(|d| Self {
                geometry: DramGeometry::lpddr3_1600_4gb(),
                timing: DramTiming::from_derived(d),
                v_supply: d.v_supply,
            })
            .collect()
    }

    /// Small geometry + nominal timing, for fast tests.
    pub fn tiny() -> Self {
        Self {
            geometry: DramGeometry::tiny(),
            timing: DramTiming::lpddr3_1600_nominal(),
            v_supply: Volt(1.35),
        }
    }

    /// Replaces the geometry (builder style).
    pub fn with_geometry(mut self, geometry: DramGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Core-timing slowdown relative to nominal, used by the energy model's
    /// background-energy term: `tRC(v) / tRC(nominal)`.
    pub fn core_slowdown(&self) -> f64 {
        self.timing.t_rc() / DramTiming::lpddr3_1600_nominal().t_rc()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr3_1600_4gb()
    }
}

/// Convenience re-export: a `Nanos` constructor for external callers.
pub fn nanos(value: f64) -> Nanos {
    Nanos(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::AccessKind;

    #[test]
    fn nominal_latency_ordering() {
        let t = DramTiming::lpddr3_1600_nominal();
        let hit = t.unpipelined_latency(AccessKind::Hit);
        let miss = t.unpipelined_latency(AccessKind::Miss);
        let conflict = t.unpipelined_latency(AccessKind::Conflict);
        assert!(hit < miss && miss < conflict);
    }

    #[test]
    fn approximate_config_slows_core_timing() {
        let approx = DramConfig::approximate(Volt(1.025)).unwrap();
        let nominal = DramConfig::lpddr3_1600_4gb();
        assert!(approx.timing.t_rcd > nominal.timing.t_rcd * 0.9);
        assert!(approx.core_slowdown() > 1.0);
        // Interface timings unchanged.
        assert_eq!(approx.timing.t_cl, nominal.timing.t_cl);
        assert_eq!(approx.timing.t_burst, nominal.timing.t_burst);
    }

    #[test]
    fn from_timing_table_builds_all_voltages() {
        let table =
            TimingTable::build(&BitlineModel::lpddr3(), &[Volt(1.35), Volt(1.025)]).unwrap();
        let configs = DramConfig::from_timing_table(&table);
        assert_eq!(configs.len(), 2);
        assert!(configs[1].timing.t_rcd > configs[0].timing.t_rcd);
    }

    #[test]
    fn t_rc_is_ras_plus_rp() {
        let t = DramTiming::lpddr3_1600_nominal();
        assert_eq!(t.t_rc(), t.t_ras + t.t_rp);
    }
}
