//! Access statistics gathered while replaying a trace.

use crate::bank::AccessKind;

/// Counters of row-buffer outcomes and directions for one replay.
///
/// These are the "DRAM access traces & statistics" fed to the energy model
/// in the paper's tool flow (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Row-buffer misses.
    pub misses: u64,
    /// Row-buffer conflicts.
    pub conflicts: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
}

impl AccessStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified access.
    pub fn record(&mut self, kind: AccessKind, is_write: bool) {
        match kind {
            AccessKind::Hit => self.hits += 1,
            AccessKind::Miss => self.misses += 1,
            AccessKind::Conflict => self.conflicts += 1,
        }
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
    }

    /// Records `n` accesses of the same kind and direction at once (the
    /// batch-replay counterpart of [`record`](Self::record)).
    pub fn record_many(&mut self, kind: AccessKind, n: u64, is_write: bool) {
        match kind {
            AccessKind::Hit => self.hits += n,
            AccessKind::Miss => self.misses += n,
            AccessKind::Conflict => self.conflicts += n,
        }
        if is_write {
            self.writes += n;
        } else {
            self.reads += n;
        }
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Count of activate commands implied (misses + conflicts).
    pub fn activates(&self) -> u64 {
        self.misses + self.conflicts
    }

    /// Count of precharge commands implied (conflicts).
    pub fn precharges(&self) -> u64 {
        self.conflicts
    }

    /// Row-buffer hit rate in `[0, 1]`; `0` for an empty replay.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Count for one access kind.
    pub fn count(&self, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Hit => self.hits,
            AccessKind::Miss => self.misses,
            AccessKind::Conflict => self.conflicts,
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.conflicts += other.conflicts;
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

impl std::fmt::Display for AccessStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} conflicts={} (hit rate {:.1}%)",
            self.hits,
            self.misses,
            self.conflicts,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = AccessStats::new();
        s.record(AccessKind::Miss, false);
        s.record(AccessKind::Hit, false);
        s.record(AccessKind::Hit, true);
        s.record(AccessKind::Conflict, false);
        assert_eq!(s.total(), 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.activates(), 2);
        assert_eq!(s.precharges(), 1);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(AccessStats::new().hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = AccessStats::new();
        a.record(AccessKind::Hit, false);
        let mut b = AccessStats::new();
        b.record(AccessKind::Conflict, true);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.writes, 1);
    }

    #[test]
    fn record_many_equals_repeated_record() {
        let mut bulk = AccessStats::new();
        bulk.record_many(AccessKind::Hit, 5, false);
        bulk.record_many(AccessKind::Conflict, 2, true);
        let mut one_by_one = AccessStats::new();
        for _ in 0..5 {
            one_by_one.record(AccessKind::Hit, false);
        }
        for _ in 0..2 {
            one_by_one.record(AccessKind::Conflict, true);
        }
        assert_eq!(bulk, one_by_one);
    }

    #[test]
    fn count_by_kind() {
        let mut s = AccessStats::new();
        s.record(AccessKind::Miss, false);
        assert_eq!(s.count(AccessKind::Miss), 1);
        assert_eq!(s.count(AccessKind::Hit), 0);
    }

    #[test]
    fn display_contains_hit_rate() {
        let mut s = AccessStats::new();
        s.record(AccessKind::Hit, false);
        assert!(s.to_string().contains("hit rate"));
    }
}
