//! Per-bank row-buffer state and access classification.

/// Outcome of one access against a bank's row buffer (paper Sec. II-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Requested row already in the row buffer — data served directly.
    Hit,
    /// No row open — the requested row must be activated first.
    Miss,
    /// A different row is open — precharge, then activate the new row.
    Conflict,
}

impl AccessKind {
    /// All variants, in ascending-cost order.
    pub const ALL: [AccessKind; 3] = [AccessKind::Hit, AccessKind::Miss, AccessKind::Conflict];
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AccessKind::Hit => "hit",
            AccessKind::Miss => "miss",
            AccessKind::Conflict => "conflict",
        };
        f.write_str(s)
    }
}

/// Row-buffer state of a single bank.
///
/// # Example
///
/// ```
/// use sparkxd_dram::{AccessKind, BankState};
///
/// let mut bank = BankState::new();
/// assert_eq!(bank.access(7), AccessKind::Miss);      // first touch opens row 7
/// assert_eq!(bank.access(7), AccessKind::Hit);       // same row: hit
/// assert_eq!(bank.access(9), AccessKind::Conflict);  // different row: conflict
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankState {
    open_row: Option<usize>,
}

impl BankState {
    /// A bank with all rows closed (precharged).
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<usize> {
        self.open_row
    }

    /// Classifies an access to `row` and updates the row buffer.
    pub fn access(&mut self, row: usize) -> AccessKind {
        let kind = match self.open_row {
            Some(open) if open == row => AccessKind::Hit,
            Some(_) => AccessKind::Conflict,
            None => AccessKind::Miss,
        };
        self.open_row = Some(row);
        kind
    }

    /// Closes the open row (precharge-all, refresh, power-down).
    pub fn precharge(&mut self) {
        self.open_row = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_sequence() {
        let mut b = BankState::new();
        assert_eq!(b.access(0), AccessKind::Miss);
        assert_eq!(b.access(0), AccessKind::Hit);
        assert_eq!(b.access(1), AccessKind::Conflict);
        assert_eq!(b.access(1), AccessKind::Hit);
        b.precharge();
        assert_eq!(b.access(1), AccessKind::Miss);
    }

    #[test]
    fn open_row_tracks_last_access() {
        let mut b = BankState::new();
        assert_eq!(b.open_row(), None);
        b.access(42);
        assert_eq!(b.open_row(), Some(42));
    }

    #[test]
    fn display_labels() {
        assert_eq!(AccessKind::Hit.to_string(), "hit");
        assert_eq!(AccessKind::Miss.to_string(), "miss");
        assert_eq!(AccessKind::Conflict.to_string(), "conflict");
    }

    #[test]
    fn all_lists_three_kinds() {
        assert_eq!(AccessKind::ALL.len(), 3);
    }
}
