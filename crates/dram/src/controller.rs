//! Trace replay: row-buffer classification plus latency accounting with
//! bank-level parallelism (the multi-bank burst feature of paper Fig. 9b).

use crate::bank::{AccessKind, BankState};
use crate::stats::AccessStats;
use crate::timing::DramConfig;
use crate::trace::{AccessTrace, Direction};

/// Timing outcome of one replay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyReport {
    /// End-to-end time of the trace in nanoseconds (last data beat).
    pub total_ns: f64,
    /// Sum of unpipelined per-access latencies (no overlap) — the
    /// single-bank upper bound, kept for speedup analysis.
    pub serial_ns: f64,
    /// Time the data bus was actually transferring data.
    pub bus_busy_ns: f64,
}

impl LatencyReport {
    /// Fraction of total time the data bus was busy (bandwidth
    /// utilisation); `0` for an empty replay.
    pub fn bus_utilisation(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.bus_busy_ns / self.total_ns
        }
    }

    /// How much bank-level overlap compressed the trace relative to fully
    /// serial execution (≥ 1).
    pub fn overlap_factor(&self) -> f64 {
        if self.total_ns == 0.0 {
            1.0
        } else {
            self.serial_ns / self.total_ns
        }
    }
}

/// Combined result of replaying a trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayOutcome {
    /// Row-buffer and direction counters.
    pub stats: AccessStats,
    /// Latency accounting.
    pub latency: LatencyReport,
    /// Per-access classification, aligned with the input trace.
    pub kinds: Vec<AccessKind>,
}

/// A DRAM device replaying access traces.
///
/// Banks across the whole hierarchy are tracked independently; ACT/PRE on
/// one bank overlaps data bursts on other banks, while the shared data bus
/// serialises the bursts themselves. The tRAS constraint (a row must stay
/// open at least `t_ras` before precharge) is enforced per bank.
///
/// # Example
///
/// ```
/// use sparkxd_dram::{AccessTrace, DramConfig, DramModel};
///
/// let config = DramConfig::tiny();
/// let seq = AccessTrace::sequential_reads(&config.geometry, 32);
/// let inter = AccessTrace::interleaved_reads(&config.geometry, 32);
/// let seq_out = DramModel::new(config.clone()).replay(&seq);
/// let inter_out = DramModel::new(config).replay(&inter);
/// // Interleaving exposes bank-level overlap.
/// assert!(inter_out.latency.overlap_factor() >= seq_out.latency.overlap_factor());
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<BankState>,
    /// Earliest time each bank can issue its next column command (ns).
    bank_ready: Vec<f64>,
    /// Time of the last activate per bank, for the tRAS constraint (ns).
    bank_last_act: Vec<f64>,
    /// Time the shared data bus frees up (ns).
    bus_free: f64,
}

impl DramModel {
    /// Creates a model with all banks precharged at time 0.
    pub fn new(config: DramConfig) -> Self {
        let g = &config.geometry;
        let n_banks = g.channels * g.ranks * g.chips * g.banks;
        Self {
            config,
            banks: vec![BankState::new(); n_banks],
            bank_ready: vec![0.0; n_banks],
            bank_last_act: vec![f64::NEG_INFINITY; n_banks],
            bus_free: 0.0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn bank_index(&self, c: &crate::geometry::DramCoord) -> usize {
        let g = &self.config.geometry;
        ((c.channel * g.ranks + c.rank) * g.chips + c.chip) * g.banks + c.bank
    }

    /// Replays `trace`, consuming current bank state (call on a fresh model
    /// for independent measurements).
    pub fn replay(&mut self, trace: &AccessTrace) -> ReplayOutcome {
        let t = self.config.timing;
        let mut stats = AccessStats::new();
        let mut kinds = Vec::with_capacity(trace.len());
        let mut serial_ns = 0.0;
        let mut bus_busy_ns = 0.0;
        let mut last_data_end: f64 = 0.0;

        for access in trace {
            let bi = self.bank_index(&access.coord);
            let row = access.coord.bank_row(&self.config.geometry);
            let kind = self.banks[bi].access(row);
            stats.record(kind, access.direction == Direction::Write);
            kinds.push(kind);
            serial_ns += t.unpipelined_latency(kind);

            // Command timeline within the bank.
            let mut ready = self.bank_ready[bi];
            match kind {
                AccessKind::Hit => {}
                AccessKind::Miss => {
                    // ACT, then wait tRCD.
                    self.bank_last_act[bi] = ready;
                    ready += t.t_rcd;
                }
                AccessKind::Conflict => {
                    // PRE cannot start before the open row satisfied tRAS.
                    let pre_start = ready.max(self.bank_last_act[bi] + t.t_ras);
                    let act_at = pre_start + t.t_rp;
                    self.bank_last_act[bi] = act_at;
                    ready = act_at + t.t_rcd;
                }
            }
            // Column command issues at `ready`; data appears CL later but
            // must also wait for the shared bus.
            let data_start = (ready + t.t_cl).max(self.bus_free);
            let data_end = data_start + t.t_burst;
            self.bus_free = data_end;
            // The bank can take its next column command after the burst.
            self.bank_ready[bi] = data_start - t.t_cl + t.t_burst.min(t.t_cl);
            bus_busy_ns += t.t_burst;
            last_data_end = last_data_end.max(data_end);
        }

        ReplayOutcome {
            stats,
            latency: LatencyReport {
                total_ns: last_data_end,
                serial_ns,
                bus_busy_ns,
            },
            kinds,
        }
    }

    /// Classifies a trace without timing (faster; used when only the
    /// hit/miss/conflict mix matters, e.g. for energy).
    pub fn classify(&mut self, trace: &AccessTrace) -> AccessStats {
        let mut stats = AccessStats::new();
        for access in trace {
            let bi = self.bank_index(&access.coord);
            let row = access.coord.bank_row(&self.config.geometry);
            let kind = self.banks[bi].access(row);
            stats.record(kind, access.direction == Direction::Write);
        }
        stats
    }

    /// Resets all banks to the precharged state and time 0.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.precharge();
        }
        self.bank_ready.fill(0.0);
        self.bank_last_act.fill(f64::NEG_INFINITY);
        self.bus_free = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{AddressOrder, DramGeometry};
    use crate::trace::Access;

    fn model() -> DramModel {
        DramModel::new(DramConfig::tiny())
    }

    #[test]
    fn sequential_trace_is_mostly_hits() {
        let g = DramGeometry::tiny();
        let mut m = model();
        let out = m.replay(&AccessTrace::sequential_reads(&g, 32));
        // 32 columns = 4 rows of 8: 4 openings, 28 hits.
        assert_eq!(out.stats.hits, 28);
        assert_eq!(out.stats.misses + out.stats.conflicts, 4);
    }

    #[test]
    fn alternating_rows_in_one_bank_conflict() {
        let g = DramGeometry::tiny();
        let a = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let b = g
            .linear_to_coord(g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
            .unwrap();
        assert_eq!(a.bank, b.bank);
        let trace: AccessTrace = [a, b, a, b].into_iter().map(Access::read).collect();
        let mut m = model();
        let out = m.replay(&trace);
        assert_eq!(out.stats.misses, 1);
        assert_eq!(out.stats.conflicts, 3);
    }

    #[test]
    fn interleaved_is_faster_than_row_thrash_in_one_bank() {
        let g = DramGeometry::tiny();
        // Row-thrashing in a single bank.
        let a = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let b = g
            .linear_to_coord(g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
            .unwrap();
        let thrash: AccessTrace = (0..16)
            .map(|i| Access::read(if i % 2 == 0 { a } else { b }))
            .collect();
        let inter = AccessTrace::interleaved_reads(&g, 16);
        let t1 = model().replay(&thrash).latency.total_ns;
        let t2 = model().replay(&inter).latency.total_ns;
        assert!(t2 < t1, "interleaved {t2} ns should beat thrashing {t1} ns");
    }

    #[test]
    fn multi_bank_overlap_hides_activation() {
        let g = DramGeometry::tiny();
        let inter = AccessTrace::interleaved_reads(&g, 16);
        let out = DramModel::new(DramConfig::tiny()).replay(&inter);
        assert!(
            out.latency.overlap_factor() > 1.1,
            "interleaving should overlap ACTs, factor {}",
            out.latency.overlap_factor()
        );
    }

    #[test]
    fn classify_matches_replay_stats() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 40);
        let s1 = DramModel::new(DramConfig::tiny()).replay(&trace).stats;
        let s2 = DramModel::new(DramConfig::tiny()).classify(&trace);
        assert_eq!(s1, s2);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 8);
        let mut m = model();
        let first = m.replay(&trace);
        m.reset();
        let second = m.replay(&trace);
        assert_eq!(first, second);
    }

    #[test]
    fn kinds_align_with_trace() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 5);
        let out = model().replay(&trace);
        assert_eq!(out.kinds.len(), 5);
        assert_eq!(out.kinds[0], AccessKind::Miss);
        assert!(out.kinds[1..].iter().all(|k| *k == AccessKind::Hit));
    }

    #[test]
    fn bus_utilisation_bounded() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 64);
        let out = model().replay(&trace);
        let u = out.latency.bus_utilisation();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let out = model().replay(&AccessTrace::new());
        assert_eq!(out.stats.total(), 0);
        assert_eq!(out.latency.total_ns, 0.0);
        assert_eq!(out.latency.overlap_factor(), 1.0);
    }
}
