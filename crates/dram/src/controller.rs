//! Trace replay: row-buffer classification plus latency accounting with
//! bank-level parallelism (the multi-bank burst feature of paper Fig. 9b).
//!
//! Two replay paths produce identical results:
//!
//! * **per-access** ([`DramModel::replay`]) — walks an [`AccessTrace`] one
//!   column at a time; the reference implementation and equivalence oracle;
//! * **batch** ([`DramModel::replay_compressed`]) — walks a
//!   [`CompressedTrace`]; the first access of a [`TraceOp::Run`] goes
//!   through the normal state machine, the remaining `len - 1` accesses
//!   are row-buffer hits by construction and are accounted in closed form
//!   (see `replay_compressed_inner` for the derivation).
//!
//! [`TraceOp::Run`]: crate::trace::TraceOp::Run

use crate::bank::{AccessKind, BankState};
use crate::geometry::DramCoord;
use crate::stats::AccessStats;
use crate::timing::DramConfig;
use crate::trace::{AccessTrace, CompressedTrace, Direction, TraceOp};

/// Timing outcome of one replay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyReport {
    /// End-to-end time of the trace in nanoseconds (last data beat).
    pub total_ns: f64,
    /// Sum of unpipelined per-access latencies (no overlap) — the
    /// single-bank upper bound, kept for speedup analysis.
    pub serial_ns: f64,
    /// Time the data bus was actually transferring data.
    pub bus_busy_ns: f64,
}

impl LatencyReport {
    /// Fraction of total time the data bus was busy (bandwidth
    /// utilisation); `0` for an empty replay.
    pub fn bus_utilisation(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.bus_busy_ns / self.total_ns
        }
    }

    /// How much bank-level overlap compressed the trace relative to fully
    /// serial execution (≥ 1).
    pub fn overlap_factor(&self) -> f64 {
        if self.total_ns == 0.0 {
            1.0
        } else {
            self.serial_ns / self.total_ns
        }
    }
}

/// Combined result of replaying a trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayOutcome {
    /// Row-buffer and direction counters.
    pub stats: AccessStats,
    /// Latency accounting.
    pub latency: LatencyReport,
    /// Per-access classification, aligned with the expanded trace. `None`
    /// unless the `*_with_kinds` replay entry point was used — aggregate
    /// consumers (energy, figures) don't pay for the allocation.
    pub kinds: Option<Vec<AccessKind>>,
}

/// A DRAM device replaying access traces.
///
/// Banks across the whole hierarchy are tracked independently; ACT/PRE on
/// one bank overlaps data bursts on other banks, while the shared data bus
/// serialises the bursts themselves. The tRAS constraint (a row must stay
/// open at least `t_ras` before precharge) is enforced per bank.
///
/// # Example
///
/// ```
/// use sparkxd_dram::{AccessTrace, DramConfig, DramModel};
///
/// let config = DramConfig::tiny();
/// let seq = AccessTrace::sequential_reads(&config.geometry, 32);
/// let inter = AccessTrace::interleaved_reads(&config.geometry, 32);
/// let seq_out = DramModel::new(config.clone()).replay(&seq);
/// let inter_out = DramModel::new(config).replay(&inter);
/// // Interleaving exposes bank-level overlap.
/// assert!(inter_out.latency.overlap_factor() >= seq_out.latency.overlap_factor());
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<BankState>,
    /// Earliest time each bank can issue its next column command (ns).
    bank_ready: Vec<f64>,
    /// Time of the last activate per bank, for the tRAS constraint (ns).
    bank_last_act: Vec<f64>,
    /// Time the shared data bus frees up (ns).
    bus_free: f64,
}

impl DramModel {
    /// Creates a model with all banks precharged at time 0.
    pub fn new(config: DramConfig) -> Self {
        let g = &config.geometry;
        let n_banks = g.channels * g.ranks * g.chips * g.banks;
        Self {
            config,
            banks: vec![BankState::new(); n_banks],
            bank_ready: vec![0.0; n_banks],
            bank_last_act: vec![f64::NEG_INFINITY; n_banks],
            bus_free: 0.0,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn bank_index(&self, c: &crate::geometry::DramCoord) -> usize {
        let g = &self.config.geometry;
        ((c.channel * g.ranks + c.rank) * g.chips + c.chip) * g.banks + c.bank
    }

    /// The single classification primitive: routes the access through the
    /// bank's row-buffer state machine. Both the replay paths and
    /// [`classify`](Self::classify) go through here, so the classification
    /// logic exists exactly once.
    #[inline]
    fn classify_step(&mut self, coord: &DramCoord) -> (usize, AccessKind) {
        let bi = self.bank_index(coord);
        let row = coord.bank_row(&self.config.geometry);
        (bi, self.banks[bi].access(row))
    }

    /// One access through the full timing machinery. Returns the bank
    /// index, the classification, and the time the data burst starts on
    /// the shared bus (the burst ends `t_burst` later).
    #[inline]
    fn step_timed(&mut self, coord: &DramCoord) -> (usize, AccessKind, f64) {
        let t = self.config.timing;
        let (bi, kind) = self.classify_step(coord);

        // Command timeline within the bank.
        let mut ready = self.bank_ready[bi];
        match kind {
            AccessKind::Hit => {}
            AccessKind::Miss => {
                // ACT, then wait tRCD.
                self.bank_last_act[bi] = ready;
                ready += t.t_rcd;
            }
            AccessKind::Conflict => {
                // PRE cannot start before the open row satisfied tRAS.
                let pre_start = ready.max(self.bank_last_act[bi] + t.t_ras);
                let act_at = pre_start + t.t_rp;
                self.bank_last_act[bi] = act_at;
                ready = act_at + t.t_rcd;
            }
        }
        // Column command issues at `ready`; data appears CL later but
        // must also wait for the shared bus.
        let data_start = (ready + t.t_cl).max(self.bus_free);
        self.bus_free = data_start + t.t_burst;
        // The bank can take its next column command after the burst.
        self.bank_ready[bi] = data_start - t.t_cl + t.t_burst.min(t.t_cl);
        (bi, kind, data_start)
    }

    /// Assembles the outcome; `serial_ns` and `bus_busy_ns` are pure
    /// functions of the aggregate counters, computed identically by both
    /// replay paths.
    fn finish(
        &self,
        stats: AccessStats,
        last_data_end: f64,
        kinds: Option<Vec<AccessKind>>,
    ) -> ReplayOutcome {
        let t = self.config.timing;
        let outcome = ReplayOutcome {
            stats,
            latency: LatencyReport {
                total_ns: last_data_end,
                serial_ns: stats.hits as f64 * t.unpipelined_latency(AccessKind::Hit)
                    + stats.misses as f64 * t.unpipelined_latency(AccessKind::Miss)
                    + stats.conflicts as f64 * t.unpipelined_latency(AccessKind::Conflict),
                bus_busy_ns: stats.total() as f64 * t.t_burst,
            },
            kinds,
        };
        // Both replay paths (per-access and compressed) funnel through
        // here, so this is the single observation point for row-buffer
        // behaviour. Misses and conflicts each cost one activation.
        sparkxd_telemetry::counter_add!("dram.replays", 1);
        sparkxd_telemetry::counter_add!("dram.row_hits", stats.hits);
        sparkxd_telemetry::counter_add!("dram.row_misses", stats.misses);
        sparkxd_telemetry::counter_add!("dram.row_conflicts", stats.conflicts);
        sparkxd_telemetry::counter_add!("dram.row_acts", stats.misses + stats.conflicts);
        sparkxd_telemetry::hist_record!("dram.bus_busy_ns", outcome.latency.bus_busy_ns);
        outcome
    }

    /// Replays `trace` access by access, consuming current bank state
    /// (call on a fresh model for independent measurements). Aggregate
    /// stats only; use [`replay_with_kinds`](Self::replay_with_kinds) when
    /// per-access alignment matters.
    pub fn replay(&mut self, trace: &AccessTrace) -> ReplayOutcome {
        self.replay_inner(trace, false)
    }

    /// Per-access replay that also captures the classification of every
    /// access, aligned with the trace.
    pub fn replay_with_kinds(&mut self, trace: &AccessTrace) -> ReplayOutcome {
        self.replay_inner(trace, true)
    }

    fn replay_inner(&mut self, trace: &AccessTrace, want_kinds: bool) -> ReplayOutcome {
        let _span = sparkxd_telemetry::span!("dram.replay");
        let t_burst = self.config.timing.t_burst;
        let mut stats = AccessStats::new();
        let mut kinds = want_kinds.then(|| Vec::with_capacity(trace.len()));
        let mut last_data_end: f64 = 0.0;
        for access in trace {
            let (_, kind, data_start) = self.step_timed(&access.coord);
            stats.record(kind, access.direction == Direction::Write);
            if let Some(v) = kinds.as_mut() {
                v.push(kind);
            }
            last_data_end = last_data_end.max(data_start + t_burst);
        }
        self.finish(stats, last_data_end, kinds)
    }

    /// Batch replay of a [`CompressedTrace`]: each [`TraceOp::Run`] costs
    /// O(1) regardless of its length. Produces the same stats and latency
    /// as [`replay`](Self::replay) on the expanded trace (bit-identical
    /// whenever the timing parameters are exactly representable, which
    /// holds for every JEDEC-derived profile; circuit-derived core timings
    /// agree to ≤ 1 ulp per run).
    pub fn replay_compressed(&mut self, trace: &CompressedTrace) -> ReplayOutcome {
        self.replay_compressed_inner(trace, false)
    }

    /// Batch replay that also captures per-access kinds, aligned with the
    /// expanded trace.
    pub fn replay_compressed_with_kinds(&mut self, trace: &CompressedTrace) -> ReplayOutcome {
        self.replay_compressed_inner(trace, true)
    }

    fn replay_compressed_inner(
        &mut self,
        trace: &CompressedTrace,
        want_kinds: bool,
    ) -> ReplayOutcome {
        let _span = sparkxd_telemetry::span!("dram.replay");
        let t = self.config.timing;
        let mut stats = AccessStats::new();
        let mut kinds = want_kinds.then(|| Vec::with_capacity(trace.len()));
        let mut last_data_end: f64 = 0.0;
        for _ in 0..trace.repeat() {
            for op in trace.ops() {
                match *op {
                    TraceOp::Access(a) => {
                        let (_, kind, data_start) = self.step_timed(&a.coord);
                        stats.record(kind, a.direction == Direction::Write);
                        if let Some(v) = kinds.as_mut() {
                            v.push(kind);
                        }
                        last_data_end = last_data_end.max(data_start + t.t_burst);
                    }
                    TraceOp::Run {
                        start,
                        len,
                        direction,
                    } => {
                        let is_write = direction == Direction::Write;
                        // First access: normal classification and timing.
                        let (bi, kind, first_start) = self.step_timed(&start);
                        stats.record(kind, is_write);
                        if let Some(v) = kinds.as_mut() {
                            v.push(kind);
                        }
                        // Remaining accesses are hits to the row the first
                        // access just opened (or found open). Per access,
                        // the scalar step would compute
                        //   data_start' = max(bank_ready + t_cl, bus_free)
                        //              = max(data_start + min(t_burst, t_cl),
                        //                    data_start + t_burst)
                        //              = data_start + t_burst,
                        // so the whole tail collapses to one multiply.
                        let tail = len - 1;
                        let mut last_start = first_start;
                        if tail > 0 {
                            last_start = first_start + tail as f64 * t.t_burst;
                            self.bus_free = last_start + t.t_burst;
                            self.bank_ready[bi] = last_start - t.t_cl + t.t_burst.min(t.t_cl);
                            stats.record_many(AccessKind::Hit, tail as u64, is_write);
                            if let Some(v) = kinds.as_mut() {
                                v.extend(std::iter::repeat_n(AccessKind::Hit, tail));
                            }
                        }
                        last_data_end = last_data_end.max(last_start + t.t_burst);
                    }
                }
            }
        }
        self.finish(stats, last_data_end, kinds)
    }

    /// Classifies a trace without timing (faster; used when only the
    /// hit/miss/conflict mix matters, e.g. for energy).
    pub fn classify(&mut self, trace: &AccessTrace) -> AccessStats {
        let mut stats = AccessStats::new();
        for access in trace {
            let (_, kind) = self.classify_step(&access.coord);
            stats.record(kind, access.direction == Direction::Write);
        }
        stats
    }

    /// Classification-only walk of a compressed trace: O(1) per run, same
    /// counters as [`classify`](Self::classify) on the expanded trace.
    pub fn classify_compressed(&mut self, trace: &CompressedTrace) -> AccessStats {
        let mut stats = AccessStats::new();
        for _ in 0..trace.repeat() {
            for op in trace.ops() {
                match *op {
                    TraceOp::Access(a) => {
                        let (_, kind) = self.classify_step(&a.coord);
                        stats.record(kind, a.direction == Direction::Write);
                    }
                    TraceOp::Run {
                        start,
                        len,
                        direction,
                    } => {
                        let is_write = direction == Direction::Write;
                        let (_, kind) = self.classify_step(&start);
                        stats.record(kind, is_write);
                        stats.record_many(AccessKind::Hit, (len - 1) as u64, is_write);
                    }
                }
            }
        }
        stats
    }

    /// Resets all banks to the precharged state and time 0.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            b.precharge();
        }
        self.bank_ready.fill(0.0);
        self.bank_last_act.fill(f64::NEG_INFINITY);
        self.bus_free = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{AddressOrder, DramGeometry};
    use crate::trace::Access;

    fn model() -> DramModel {
        DramModel::new(DramConfig::tiny())
    }

    #[test]
    fn sequential_trace_is_mostly_hits() {
        let g = DramGeometry::tiny();
        let mut m = model();
        let out = m.replay(&AccessTrace::sequential_reads(&g, 32));
        // 32 columns = 4 rows of 8: 4 openings, 28 hits.
        assert_eq!(out.stats.hits, 28);
        assert_eq!(out.stats.misses + out.stats.conflicts, 4);
    }

    #[test]
    fn alternating_rows_in_one_bank_conflict() {
        let g = DramGeometry::tiny();
        let a = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let b = g
            .linear_to_coord(g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
            .unwrap();
        assert_eq!(a.bank, b.bank);
        let trace: AccessTrace = [a, b, a, b].into_iter().map(Access::read).collect();
        let mut m = model();
        let out = m.replay(&trace);
        assert_eq!(out.stats.misses, 1);
        assert_eq!(out.stats.conflicts, 3);
    }

    #[test]
    fn interleaved_is_faster_than_row_thrash_in_one_bank() {
        let g = DramGeometry::tiny();
        // Row-thrashing in a single bank.
        let a = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let b = g
            .linear_to_coord(g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
            .unwrap();
        let thrash: AccessTrace = (0..16)
            .map(|i| Access::read(if i % 2 == 0 { a } else { b }))
            .collect();
        let inter = AccessTrace::interleaved_reads(&g, 16);
        let t1 = model().replay(&thrash).latency.total_ns;
        let t2 = model().replay(&inter).latency.total_ns;
        assert!(t2 < t1, "interleaved {t2} ns should beat thrashing {t1} ns");
    }

    #[test]
    fn multi_bank_overlap_hides_activation() {
        let g = DramGeometry::tiny();
        let inter = AccessTrace::interleaved_reads(&g, 16);
        let out = DramModel::new(DramConfig::tiny()).replay(&inter);
        assert!(
            out.latency.overlap_factor() > 1.1,
            "interleaving should overlap ACTs, factor {}",
            out.latency.overlap_factor()
        );
    }

    #[test]
    fn classify_matches_replay_stats() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 40);
        let s1 = DramModel::new(DramConfig::tiny()).replay(&trace).stats;
        let s2 = DramModel::new(DramConfig::tiny()).classify(&trace);
        assert_eq!(s1, s2);
    }

    #[test]
    fn classify_compressed_matches_compressed_replay_stats() {
        let g = DramGeometry::tiny();
        // Mixed trace: two sequential rows, a thrash, another run.
        let mut trace = AccessTrace::sequential_reads(&g, 2 * g.cols_per_row);
        let far = g
            .linear_to_coord(5 * g.cols_per_row as u64, AddressOrder::BaselineRowMajor)
            .unwrap();
        trace.push(Access::write(far));
        trace.extend(AccessTrace::sequential_reads(&g, g.cols_per_row));
        let compressed = crate::trace::CompressedTrace::compress(&trace);
        let replayed = DramModel::new(DramConfig::tiny())
            .replay_compressed(&compressed)
            .stats;
        let classified = DramModel::new(DramConfig::tiny()).classify_compressed(&compressed);
        assert_eq!(replayed, classified);
        // And both agree with the per-access paths.
        assert_eq!(
            classified,
            DramModel::new(DramConfig::tiny()).classify(&trace)
        );
    }

    #[test]
    fn compressed_replay_matches_per_access_on_sequential_trace() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 48);
        let compressed = crate::trace::CompressedTrace::compress(&trace);
        let per_access = DramModel::new(DramConfig::tiny()).replay(&trace);
        let batch = DramModel::new(DramConfig::tiny()).replay_compressed(&compressed);
        assert_eq!(per_access, batch);
    }

    #[test]
    fn compressed_replay_honours_repeat() {
        let g = DramGeometry::tiny();
        let one_pass = AccessTrace::sequential_reads(&g, 24);
        let mut three_passes = AccessTrace::new();
        for _ in 0..3 {
            three_passes.extend(one_pass.clone());
        }
        let compressed = crate::trace::CompressedTrace::compress(&one_pass).with_repeat(3);
        let per_access = DramModel::new(DramConfig::tiny()).replay(&three_passes);
        let batch = DramModel::new(DramConfig::tiny()).replay_compressed(&compressed);
        assert_eq!(per_access, batch);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 8);
        let mut m = model();
        let first = m.replay(&trace);
        m.reset();
        let second = m.replay(&trace);
        assert_eq!(first, second);
    }

    #[test]
    fn kinds_align_with_trace() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 5);
        let out = model().replay_with_kinds(&trace);
        let kinds = out.kinds.expect("kinds were requested");
        assert_eq!(kinds.len(), 5);
        assert_eq!(kinds[0], AccessKind::Miss);
        assert!(kinds[1..].iter().all(|k| *k == AccessKind::Hit));
    }

    #[test]
    fn kinds_are_opt_in() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 5);
        assert!(model().replay(&trace).kinds.is_none());
        let compressed = crate::trace::CompressedTrace::compress(&trace);
        assert!(model().replay_compressed(&compressed).kinds.is_none());
        let kinds = model()
            .replay_compressed_with_kinds(&compressed)
            .kinds
            .expect("kinds were requested");
        assert_eq!(kinds.len(), 5);
    }

    #[test]
    fn bus_utilisation_bounded() {
        let g = DramGeometry::tiny();
        let trace = AccessTrace::sequential_reads(&g, 64);
        let out = model().replay(&trace);
        let u = out.latency.bus_utilisation();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let out = model().replay(&AccessTrace::new());
        assert_eq!(out.stats.total(), 0);
        assert_eq!(out.latency.total_ns, 0.0);
        assert_eq!(out.latency.overlap_factor(), 1.0);
    }
}
