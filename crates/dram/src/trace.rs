//! DRAM access traces: the replayable record of column accesses produced by
//! trace generation in `sparkxd-core` and consumed by [`DramModel`].
//!
//! Two representations coexist:
//!
//! * [`AccessTrace`] — one [`Access`] per burst column, the reference
//!   representation replayed access by access;
//! * [`CompressedTrace`] — a run-length encoding ([`TraceOp`]) where a
//!   same-row burst of consecutive columns is a single [`TraceOp::Run`],
//!   plus a `repeat` count for multi-pass workloads. [`DramModel`] replays
//!   a run in O(1) instead of O(len).
//!
//! [`DramModel`]: crate::DramModel

use crate::geometry::{AddressOrder, DramCoord, DramGeometry};

/// Direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Read (weight fetch during inference — the dominant case).
    #[default]
    Read,
    /// Write (weight update during training).
    Write,
}

/// One column access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access {
    /// Target coordinate.
    pub coord: DramCoord,
    /// Read or write.
    pub direction: Direction,
}

impl Access {
    /// A read access to `coord`.
    pub fn read(coord: DramCoord) -> Self {
        Self {
            coord,
            direction: Direction::Read,
        }
    }

    /// A write access to `coord`.
    pub fn write(coord: DramCoord) -> Self {
        Self {
            coord,
            direction: Direction::Write,
        }
    }
}

/// An ordered sequence of accesses.
///
/// # Example
///
/// ```
/// use sparkxd_dram::{AccessTrace, DramGeometry};
///
/// let g = DramGeometry::tiny();
/// let trace = AccessTrace::sequential_reads(&g, 10);
/// assert_eq!(trace.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccessTrace {
    accesses: Vec<Access>,
}

impl AccessTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from explicit accesses.
    pub fn from_accesses(accesses: Vec<Access>) -> Self {
        Self { accesses }
    }

    /// `n` reads over consecutive linear addresses in baseline row-major
    /// order — the paper's baseline weight layout.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds device capacity.
    pub fn sequential_reads(geometry: &DramGeometry, n: usize) -> Self {
        let accesses = (0..n as u64)
            .map(|addr| {
                let coord = geometry
                    .linear_to_coord(addr, AddressOrder::BaselineRowMajor)
                    .expect("trace exceeds device capacity");
                Access::read(coord)
            })
            .collect();
        Self { accesses }
    }

    /// `n` reads striped across banks (multi-bank burst pattern).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds device capacity.
    pub fn interleaved_reads(geometry: &DramGeometry, n: usize) -> Self {
        let accesses = (0..n as u64)
            .map(|addr| {
                let coord = geometry
                    .linear_to_coord(addr, AddressOrder::BankInterleaved)
                    .expect("trace exceeds device capacity");
                Access::read(coord)
            })
            .collect();
        Self { accesses }
    }

    /// Appends an access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` when the trace holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over the accesses in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// The underlying accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }
}

impl FromIterator<Access> for AccessTrace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        Self {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for AccessTrace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a AccessTrace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for AccessTrace {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

/// One operation of a [`CompressedTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Escape hatch: a single explicit access.
    Access(Access),
    /// `len` same-direction accesses to consecutive columns of one row:
    /// `start.col`, `start.col + 1`, …, `start.col + len - 1`, all other
    /// coordinate fields fixed. Every access after the first is a
    /// guaranteed row-buffer hit, which is what lets the model replay the
    /// tail in closed form.
    Run {
        /// Coordinate of the first column of the run.
        start: DramCoord,
        /// Number of accesses (≥ 1).
        len: usize,
        /// Shared direction of every access in the run.
        direction: Direction,
    },
}

impl TraceOp {
    /// Number of accesses this op expands to.
    pub fn len(&self) -> usize {
        match self {
            TraceOp::Access(_) => 1,
            TraceOp::Run { len, .. } => *len,
        }
    }

    /// `true` only for a zero-length run (never produced by constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Direction shared by the op's accesses.
    pub fn direction(&self) -> Direction {
        match self {
            TraceOp::Access(a) => a.direction,
            TraceOp::Run { direction, .. } => *direction,
        }
    }

    /// The `i`-th access of the op (`i < len`).
    fn access_at(&self, i: usize) -> Access {
        match *self {
            TraceOp::Access(a) => a,
            TraceOp::Run {
                start,
                direction,
                len,
            } => {
                debug_assert!(i < len);
                Access {
                    coord: DramCoord {
                        col: start.col + i,
                        ..start
                    },
                    direction,
                }
            }
        }
    }
}

/// `true` when `next` is the column immediately after `prev` in the same
/// row (every other coordinate field equal).
fn follows(prev: &DramCoord, next: &DramCoord) -> bool {
    next.col == prev.col + 1
        && DramCoord {
            col: prev.col,
            ..*next
        } == *prev
}

/// Run-length compressed access trace: a sequence of [`TraceOp`]s replayed
/// `repeat` times.
///
/// [`push`](Self::push) keeps the representation *normalized* — maximal
/// runs, single accesses stored as [`TraceOp::Access`] — so
/// [`compress`](Self::compress) ∘ [`expand`](Self::expand) is the identity
/// on normalized traces with `repeat == 1`.
///
/// # Example
///
/// ```
/// use sparkxd_dram::{AccessTrace, CompressedTrace, DramGeometry};
///
/// let g = DramGeometry::tiny();
/// let flat = AccessTrace::sequential_reads(&g, 32);
/// let c = CompressedTrace::compress(&flat);
/// assert_eq!(c.len(), 32);
/// assert_eq!(c.num_ops(), 4); // 4 rows of 8 columns -> 4 runs
/// assert_eq!(c.expand(), flat);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedTrace {
    ops: Vec<TraceOp>,
    repeat: usize,
}

impl Default for CompressedTrace {
    fn default() -> Self {
        Self {
            ops: Vec::new(),
            repeat: 1,
        }
    }
}

impl CompressedTrace {
    /// An empty trace (`repeat == 1`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from explicit ops (not re-normalized).
    ///
    /// Like [`AccessTrace::from_accesses`], coordinates are trusted: a
    /// [`TraceOp::Run`] must stay within one row
    /// (`start.col + len <= cols_per_row` for the target geometry) or the
    /// hit accounting will not correspond to any physically addressed
    /// stream. [`push`](Self::push)/[`compress`](Self::compress) uphold
    /// this for valid input coordinates; use
    /// [`validate`](Self::validate) to check foreign op lists.
    ///
    /// # Panics
    ///
    /// Panics if any run has `len == 0`.
    pub fn from_ops(ops: Vec<TraceOp>) -> Self {
        assert!(
            ops.iter().all(|op| !op.is_empty()),
            "zero-length run in compressed trace"
        );
        Self { ops, repeat: 1 }
    }

    /// Checks every expanded coordinate against `geometry` — in
    /// particular that no run walks past the end of its row.
    ///
    /// # Errors
    ///
    /// The first [`DramError`](crate::DramError) found, naming the
    /// offending field.
    pub fn validate(&self, geometry: &DramGeometry) -> Result<(), crate::DramError> {
        for op in &self.ops {
            match *op {
                TraceOp::Access(a) => geometry.validate(&a.coord)?,
                TraceOp::Run { start, len, .. } => {
                    geometry.validate(&start)?;
                    // Only the last column can newly go out of range.
                    geometry.validate(&DramCoord {
                        col: start.col + (len - 1),
                        ..start
                    })?;
                }
            }
        }
        Ok(())
    }

    /// Run-length encodes an [`AccessTrace`].
    pub fn compress(trace: &AccessTrace) -> Self {
        let mut c = Self::new();
        for a in trace {
            c.push(*a);
        }
        c
    }

    /// `n` reads over consecutive linear addresses in baseline row-major
    /// order (compressed counterpart of [`AccessTrace::sequential_reads`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds device capacity.
    pub fn sequential_reads(geometry: &DramGeometry, n: usize) -> Self {
        Self::compress(&AccessTrace::sequential_reads(geometry, n))
    }

    /// `n` reads striped across banks (compressed counterpart of
    /// [`AccessTrace::interleaved_reads`]; bank striping defeats run
    /// merging, so this is mostly singleton ops).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds device capacity.
    pub fn interleaved_reads(geometry: &DramGeometry, n: usize) -> Self {
        Self::compress(&AccessTrace::interleaved_reads(geometry, n))
    }

    /// Appends an access, merging it into the trailing run when it
    /// continues the same row in the same direction.
    pub fn push(&mut self, access: Access) {
        if let Some(op) = self.ops.last_mut() {
            match *op {
                TraceOp::Run {
                    start,
                    len,
                    direction,
                } if direction == access.direction
                    && follows(
                        &DramCoord {
                            col: start.col + (len - 1),
                            ..start
                        },
                        &access.coord,
                    ) =>
                {
                    *op = TraceOp::Run {
                        start,
                        len: len + 1,
                        direction,
                    };
                    return;
                }
                TraceOp::Access(prev)
                    if prev.direction == access.direction
                        && follows(&prev.coord, &access.coord) =>
                {
                    *op = TraceOp::Run {
                        start: prev.coord,
                        len: 2,
                        direction: access.direction,
                    };
                    return;
                }
                _ => {}
            }
        }
        self.ops.push(TraceOp::Access(access));
    }

    /// Sets how many times the op sequence is replayed (builder style).
    /// `0` makes the trace empty.
    pub fn with_repeat(mut self, repeat: usize) -> Self {
        self.repeat = repeat;
        self
    }

    /// Number of times the op sequence is replayed.
    pub fn repeat(&self) -> usize {
        self.repeat
    }

    /// The ops of one pass.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of ops in one pass.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total number of accesses over all passes.
    pub fn len(&self) -> usize {
        self.repeat * self.ops.iter().map(TraceOp::len).sum::<usize>()
    }

    /// `true` when the trace expands to no accesses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the expanded accesses in replay order (all passes).
    pub fn iter(&self) -> impl Iterator<Item = Access> + '_ {
        (0..self.repeat)
            .flat_map(move |_| self.ops.iter())
            .flat_map(|op| (0..op.len()).map(move |i| op.access_at(i)))
    }

    /// Materializes the equivalent per-access trace (all passes).
    pub fn expand(&self) -> AccessTrace {
        self.iter().collect()
    }
}

impl FromIterator<Access> for CompressedTrace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        let mut c = Self::new();
        for a in iter {
            c.push(a);
        }
        c
    }
}

impl Extend<Access> for CompressedTrace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        for a in iter {
            self.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_stay_in_one_row_first() {
        let g = DramGeometry::tiny();
        let t = AccessTrace::sequential_reads(&g, g.cols_per_row);
        let rows: std::collections::HashSet<_> =
            t.iter().map(|a| (a.coord.bank, a.coord.row)).collect();
        assert_eq!(rows.len(), 1, "first row's worth of accesses share a row");
    }

    #[test]
    fn interleaved_reads_touch_multiple_banks_immediately() {
        let g = DramGeometry::tiny();
        let t = AccessTrace::interleaved_reads(&g, g.banks);
        let banks: std::collections::HashSet<_> = t.iter().map(|a| a.coord.bank).collect();
        assert_eq!(banks.len(), g.banks);
    }

    #[test]
    fn collect_and_extend() {
        let g = DramGeometry::tiny();
        let c = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let mut t: AccessTrace = vec![Access::read(c)].into_iter().collect();
        t.extend(vec![Access::write(c)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.accesses()[1].direction, Direction::Write);
    }

    #[test]
    fn empty_trace() {
        let t = AccessTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn compress_merges_sequential_columns_into_runs() {
        let g = DramGeometry::tiny();
        let flat = AccessTrace::sequential_reads(&g, 3 * g.cols_per_row);
        let c = CompressedTrace::compress(&flat);
        assert_eq!(c.num_ops(), 3, "one run per row");
        assert_eq!(c.len(), flat.len());
        for op in c.ops() {
            assert!(matches!(op, TraceOp::Run { len, .. } if *len == g.cols_per_row));
        }
    }

    #[test]
    fn compress_expand_is_lossless() {
        let g = DramGeometry::tiny();
        for flat in [
            AccessTrace::sequential_reads(&g, 19),
            AccessTrace::interleaved_reads(&g, 19),
            AccessTrace::new(),
        ] {
            assert_eq!(CompressedTrace::compress(&flat).expand(), flat);
        }
    }

    #[test]
    fn compress_of_expand_is_identity_on_normalized_traces() {
        let g = DramGeometry::tiny();
        let c = CompressedTrace::sequential_reads(&g, 21);
        assert_eq!(CompressedTrace::compress(&c.expand()), c);
        let i = CompressedTrace::interleaved_reads(&g, 13);
        assert_eq!(CompressedTrace::compress(&i.expand()), i);
    }

    #[test]
    fn direction_change_breaks_a_run() {
        let g = DramGeometry::tiny();
        let c0 = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let c1 = g
            .linear_to_coord(1, AddressOrder::BaselineRowMajor)
            .unwrap();
        let c2 = g
            .linear_to_coord(2, AddressOrder::BaselineRowMajor)
            .unwrap();
        let c: CompressedTrace = [Access::read(c0), Access::read(c1), Access::write(c2)]
            .into_iter()
            .collect();
        assert_eq!(c.num_ops(), 2);
        assert_eq!(c.ops()[0].len(), 2);
        assert_eq!(c.ops()[1].direction(), Direction::Write);
    }

    #[test]
    fn repeat_multiplies_len_and_iteration() {
        let g = DramGeometry::tiny();
        let c = CompressedTrace::sequential_reads(&g, 10).with_repeat(3);
        assert_eq!(c.len(), 30);
        let acc: Vec<Access> = c.iter().collect();
        assert_eq!(acc.len(), 30);
        assert_eq!(acc[0], acc[10], "passes repeat the same accesses");
        assert_eq!(c.expand().len(), 30);
        assert!(!c.is_empty());
        assert!(c.clone().with_repeat(0).is_empty());
    }

    #[test]
    fn iteration_order_matches_expansion() {
        let g = DramGeometry::tiny();
        let flat = AccessTrace::sequential_reads(&g, 17);
        let c = CompressedTrace::compress(&flat);
        for (a, b) in c.iter().zip(flat.iter()) {
            assert_eq!(a, *b);
        }
    }

    #[test]
    fn empty_compressed_trace() {
        let c = CompressedTrace::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.repeat(), 1);
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-length run")]
    fn zero_length_run_is_rejected() {
        let _ = CompressedTrace::from_ops(vec![TraceOp::Run {
            start: DramCoord::default(),
            len: 0,
            direction: Direction::Read,
        }]);
    }

    #[test]
    fn validate_catches_row_crossing_runs() {
        let g = DramGeometry::tiny();
        let ok = CompressedTrace::sequential_reads(&g, 3 * g.cols_per_row);
        assert!(ok.validate(&g).is_ok());
        let crossing = CompressedTrace::from_ops(vec![TraceOp::Run {
            start: DramCoord::default(),
            len: g.cols_per_row + 1,
            direction: Direction::Read,
        }]);
        assert!(crossing.validate(&g).is_err());
    }
}
