//! DRAM access traces: the replayable record of column accesses produced by
//! trace generation in `sparkxd-core` and consumed by [`DramModel`].
//!
//! [`DramModel`]: crate::DramModel

use crate::geometry::{AddressOrder, DramCoord, DramGeometry};

/// Direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Read (weight fetch during inference — the dominant case).
    #[default]
    Read,
    /// Write (weight update during training).
    Write,
}

/// One column access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access {
    /// Target coordinate.
    pub coord: DramCoord,
    /// Read or write.
    pub direction: Direction,
}

impl Access {
    /// A read access to `coord`.
    pub fn read(coord: DramCoord) -> Self {
        Self {
            coord,
            direction: Direction::Read,
        }
    }

    /// A write access to `coord`.
    pub fn write(coord: DramCoord) -> Self {
        Self {
            coord,
            direction: Direction::Write,
        }
    }
}

/// An ordered sequence of accesses.
///
/// # Example
///
/// ```
/// use sparkxd_dram::{AccessTrace, DramGeometry};
///
/// let g = DramGeometry::tiny();
/// let trace = AccessTrace::sequential_reads(&g, 10);
/// assert_eq!(trace.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccessTrace {
    accesses: Vec<Access>,
}

impl AccessTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from explicit accesses.
    pub fn from_accesses(accesses: Vec<Access>) -> Self {
        Self { accesses }
    }

    /// `n` reads over consecutive linear addresses in baseline row-major
    /// order — the paper's baseline weight layout.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds device capacity.
    pub fn sequential_reads(geometry: &DramGeometry, n: usize) -> Self {
        let accesses = (0..n as u64)
            .map(|addr| {
                let coord = geometry
                    .linear_to_coord(addr, AddressOrder::BaselineRowMajor)
                    .expect("trace exceeds device capacity");
                Access::read(coord)
            })
            .collect();
        Self { accesses }
    }

    /// `n` reads striped across banks (multi-bank burst pattern).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds device capacity.
    pub fn interleaved_reads(geometry: &DramGeometry, n: usize) -> Self {
        let accesses = (0..n as u64)
            .map(|addr| {
                let coord = geometry
                    .linear_to_coord(addr, AddressOrder::BankInterleaved)
                    .expect("trace exceeds device capacity");
                Access::read(coord)
            })
            .collect();
        Self { accesses }
    }

    /// Appends an access.
    pub fn push(&mut self, access: Access) {
        self.accesses.push(access);
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` when the trace holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Iterates over the accesses in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Access> {
        self.accesses.iter()
    }

    /// The underlying accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }
}

impl FromIterator<Access> for AccessTrace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        Self {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for AccessTrace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a AccessTrace {
    type Item = &'a Access;
    type IntoIter = std::slice::Iter<'a, Access>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for AccessTrace {
    type Item = Access;
    type IntoIter = std::vec::IntoIter<Access>;
    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_stay_in_one_row_first() {
        let g = DramGeometry::tiny();
        let t = AccessTrace::sequential_reads(&g, g.cols_per_row);
        let rows: std::collections::HashSet<_> =
            t.iter().map(|a| (a.coord.bank, a.coord.row)).collect();
        assert_eq!(rows.len(), 1, "first row's worth of accesses share a row");
    }

    #[test]
    fn interleaved_reads_touch_multiple_banks_immediately() {
        let g = DramGeometry::tiny();
        let t = AccessTrace::interleaved_reads(&g, g.banks);
        let banks: std::collections::HashSet<_> = t.iter().map(|a| a.coord.bank).collect();
        assert_eq!(banks.len(), g.banks);
    }

    #[test]
    fn collect_and_extend() {
        let g = DramGeometry::tiny();
        let c = g
            .linear_to_coord(0, AddressOrder::BaselineRowMajor)
            .unwrap();
        let mut t: AccessTrace = vec![Access::read(c)].into_iter().collect();
        t.extend(vec![Access::write(c)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.accesses()[1].direction, Direction::Write);
    }

    #[test]
    fn empty_trace() {
        let t = AccessTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }
}
