//! Voltage-scaled DRAM timing parameters derived from circuit waveforms.

use crate::bitline::BitlineModel;
use crate::{CircuitError, Nanos, Volt};

/// Timing parameters derived from the array-voltage waveform at one supply
/// voltage, using the paper's Section II-B2 definitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedTiming {
    /// Supply voltage these timings correspond to.
    pub v_supply: Volt,
    /// Row-address-to-column-address delay (ready-to-access, 75%·V).
    pub t_rcd: Nanos,
    /// Row active time (ready-to-precharge, 98%·V).
    pub t_ras: Nanos,
    /// Row precharge time (ready-to-activate, within 2% of V/2).
    pub t_rp: Nanos,
}

impl DerivedTiming {
    /// Row cycle time `tRC = tRAS + tRP`.
    pub fn t_rc(&self) -> Nanos {
        Nanos(self.t_ras.0 + self.t_rp.0)
    }
}

impl std::fmt::Display for DerivedTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: tRCD={} tRAS={} tRP={}",
            self.v_supply, self.t_rcd, self.t_ras, self.t_rp
        )
    }
}

/// A table of derived timings across supply voltages.
///
/// This is the hand-off artefact from the circuit simulator to the DRAM
/// model: the paper's Fig. 6 in tabular form.
///
/// # Example
///
/// ```
/// use sparkxd_circuit::{BitlineModel, TimingTable, Volt};
///
/// let table = TimingTable::build(
///     &BitlineModel::lpddr3(),
///     &[Volt(1.35), Volt(1.025)],
/// ).expect("timing table");
/// let nominal = table.at(Volt(1.35)).expect("nominal entry");
/// let reduced = table.at(Volt(1.025)).expect("reduced entry");
/// assert!(reduced.t_rcd.0 > nominal.t_rcd.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingTable {
    entries: Vec<DerivedTiming>,
}

impl TimingTable {
    /// Simulates the bitline model at each voltage and collects timings.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from any individual derivation.
    pub fn build(model: &BitlineModel, voltages: &[Volt]) -> Result<Self, CircuitError> {
        let mut entries = Vec::with_capacity(voltages.len());
        for &v in voltages {
            entries.push(model.derive_timing(v)?);
        }
        Ok(Self { entries })
    }

    /// The paper's operating points: 1.35 (accurate) and the five
    /// approximate voltages 1.325, 1.25, 1.175, 1.10, 1.025 V.
    pub fn paper_operating_points(model: &BitlineModel) -> Result<Self, CircuitError> {
        Self::build(
            model,
            &[
                Volt(1.350),
                Volt(1.325),
                Volt(1.250),
                Volt(1.175),
                Volt(1.100),
                Volt(1.025),
            ],
        )
    }

    /// Entries in build order.
    pub fn entries(&self) -> &[DerivedTiming] {
        &self.entries
    }

    /// Looks up the entry for voltage `v` (exact-ish match, 1 mV tolerance).
    pub fn at(&self, v: Volt) -> Option<&DerivedTiming> {
        self.entries
            .iter()
            .find(|e| (e.v_supply.0 - v.0).abs() < 1e-3)
    }

    /// Linear interpolation of timings at an arbitrary voltage inside the
    /// table's range. Returns `None` if the table has fewer than two entries
    /// or `v` lies outside the covered range.
    pub fn interpolated(&self, v: Volt) -> Option<DerivedTiming> {
        if self.entries.len() < 2 {
            return None;
        }
        let mut sorted: Vec<&DerivedTiming> = self.entries.iter().collect();
        sorted.sort_by(|a, b| a.v_supply.0.partial_cmp(&b.v_supply.0).expect("non-NaN"));
        if v.0 < sorted.first().unwrap().v_supply.0 || v.0 > sorted.last().unwrap().v_supply.0 {
            return None;
        }
        for w in sorted.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if v.0 >= lo.v_supply.0 && v.0 <= hi.v_supply.0 {
                let span = hi.v_supply.0 - lo.v_supply.0;
                let f = if span == 0.0 {
                    0.0
                } else {
                    (v.0 - lo.v_supply.0) / span
                };
                let lerp = |a: f64, b: f64| a + (b - a) * f;
                return Some(DerivedTiming {
                    v_supply: v,
                    t_rcd: Nanos(lerp(lo.t_rcd.0, hi.t_rcd.0)),
                    t_ras: Nanos(lerp(lo.t_ras.0, hi.t_ras.0)),
                    t_rp: Nanos(lerp(lo.t_rp.0, hi.t_rp.0)),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TimingTable {
        TimingTable::build(
            &BitlineModel::lpddr3(),
            &[Volt(1.35), Volt(1.175), Volt(1.025)],
        )
        .unwrap()
    }

    #[test]
    fn table_lookup_finds_entries() {
        let t = table();
        assert!(t.at(Volt(1.35)).is_some());
        assert!(t.at(Volt(1.175)).is_some());
        assert!(t.at(Volt(0.9)).is_none());
    }

    #[test]
    fn timings_monotonically_increase_as_voltage_drops() {
        let t = table();
        let hi = t.at(Volt(1.35)).unwrap();
        let mid = t.at(Volt(1.175)).unwrap();
        let lo = t.at(Volt(1.025)).unwrap();
        assert!(hi.t_rcd.0 < mid.t_rcd.0 && mid.t_rcd.0 < lo.t_rcd.0);
        assert!(hi.t_ras.0 < mid.t_ras.0 && mid.t_ras.0 < lo.t_ras.0);
        assert!(hi.t_rp.0 < mid.t_rp.0 && mid.t_rp.0 < lo.t_rp.0);
    }

    #[test]
    fn interpolation_brackets_neighbours() {
        let t = table();
        let mid = t.interpolated(Volt(1.25)).unwrap();
        let hi = t.at(Volt(1.35)).unwrap();
        let lo = t.at(Volt(1.175)).unwrap();
        assert!(mid.t_rcd.0 > hi.t_rcd.0 && mid.t_rcd.0 < lo.t_rcd.0);
        assert!(t.interpolated(Volt(0.5)).is_none());
    }

    #[test]
    fn t_rc_is_sum() {
        let t = table();
        let e = t.at(Volt(1.35)).unwrap();
        assert!((e.t_rc().0 - (e.t_ras.0 + e.t_rp.0)).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let t = table();
        let s = t.at(Volt(1.35)).unwrap().to_string();
        assert!(s.contains("tRCD") && s.contains("tRAS") && s.contains("tRP"));
    }
}
