//! Circuit elements for the transient solver.
//!
//! Every node in a [`Circuit`](crate::Circuit) carries a capacitance to
//! ground, so node voltages are the state variables and every other element
//! contributes a current into one or two nodes. This matches the DRAM
//! bitline structure (cell capacitor, bitline capacitance) and keeps the
//! integrator explicit and fast.

/// Identifier of a circuit node (index into the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A two-terminal or controlled element placed between nodes or between a
/// node and a fixed rail.
///
/// Elements referencing an `enable` index are switched on/off by the phase
/// schedule driving the simulation (e.g. wordline, sense-amp enable,
/// precharge equaliser).
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
        /// Index into the enable vector; `None` means always on.
        enable: Option<usize>,
    },
    /// Resistor from a node to a fixed voltage rail (e.g. VDD, VDD/2, GND).
    RailResistor {
        /// Connected node.
        node: NodeId,
        /// Rail voltage in volts.
        rail_volts: f64,
        /// Resistance in ohms.
        ohms: f64,
        /// Index into the enable vector; `None` means always on.
        enable: Option<usize>,
    },
    /// Regenerative latch (cross-coupled inverter pair of a DRAM sense
    /// amplifier), modelled as a voltage-controlled current source:
    ///
    /// `I = gm * (V - center) * headroom(V)`
    ///
    /// where `headroom` tapers the drive to zero as the node voltage
    /// approaches the rails, producing the characteristic S-shaped
    /// regeneration curve of a sense amplifier.
    Latch {
        /// Node the latch drives (the bitline).
        node: NodeId,
        /// Metastable centre point (VDD/2 for a DRAM sense amp).
        center_volts: f64,
        /// Small-signal transconductance in siemens.
        gm: f64,
        /// Upper rail the latch can drive towards.
        vdd: f64,
        /// Index into the enable vector; `None` means always on.
        enable: Option<usize>,
    },
}

impl Element {
    /// Largest node index referenced by this element, used for validation.
    pub fn max_node(&self) -> usize {
        match self {
            Element::Resistor { a, b, .. } => a.0.max(b.0),
            Element::RailResistor { node, .. } => node.0,
            Element::Latch { node, .. } => node.0,
        }
    }

    /// The enable-line index this element listens to, if any.
    pub fn enable_index(&self) -> Option<usize> {
        match self {
            Element::Resistor { enable, .. }
            | Element::RailResistor { enable, .. }
            | Element::Latch { enable, .. } => *enable,
        }
    }

    /// Accumulate this element's current contribution into `currents`
    /// (amperes, positive = into the node) given node voltages `v`.
    pub(crate) fn stamp(&self, v: &[f64], enables: &[bool], currents: &mut [f64]) {
        let on = |e: &Option<usize>| e.is_none_or(|i| enables[i]);
        match self {
            Element::Resistor { a, b, ohms, enable } => {
                if on(enable) {
                    let i = (v[b.0] - v[a.0]) / ohms;
                    currents[a.0] += i;
                    currents[b.0] -= i;
                }
            }
            Element::RailResistor {
                node,
                rail_volts,
                ohms,
                enable,
            } => {
                if on(enable) {
                    currents[node.0] += (rail_volts - v[node.0]) / ohms;
                }
            }
            Element::Latch {
                node,
                center_volts,
                gm,
                vdd,
                enable,
            } => {
                if on(enable) {
                    let x = v[node.0] - center_volts;
                    // Headroom factor: full drive at the centre, zero at the
                    // rails; keeps the node inside [0, vdd].
                    let headroom = if x >= 0.0 {
                        ((vdd - v[node.0]) / (vdd - center_volts)).clamp(0.0, 1.0)
                    } else {
                        (v[node.0] / center_volts).clamp(0.0, 1.0)
                    };
                    currents[node.0] += gm * x * headroom;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_current_flows_towards_lower_voltage() {
        let r = Element::Resistor {
            a: NodeId(0),
            b: NodeId(1),
            ohms: 1000.0,
            enable: None,
        };
        let v = [0.0, 1.0];
        let mut i = [0.0, 0.0];
        r.stamp(&v, &[], &mut i);
        // 1 mA flows from node 1 into node 0.
        assert!((i[0] - 1e-3).abs() < 1e-12);
        assert!((i[1] + 1e-3).abs() < 1e-12);
    }

    #[test]
    fn disabled_element_contributes_nothing() {
        let r = Element::RailResistor {
            node: NodeId(0),
            rail_volts: 1.0,
            ohms: 10.0,
            enable: Some(0),
        };
        let mut i = [0.0];
        r.stamp(&[0.0], &[false], &mut i);
        assert_eq!(i[0], 0.0);
        r.stamp(&[0.0], &[true], &mut i);
        assert!(i[0] > 0.0);
    }

    #[test]
    fn latch_pushes_away_from_center() {
        let l = Element::Latch {
            node: NodeId(0),
            center_volts: 0.675,
            gm: 1e-3,
            vdd: 1.35,
            enable: None,
        };
        let mut i = [0.0];
        // Above centre: positive current (drives towards VDD).
        l.stamp(&[0.8], &[], &mut i);
        assert!(i[0] > 0.0);
        // Below centre: negative current (drives towards GND).
        i[0] = 0.0;
        l.stamp(&[0.5], &[], &mut i);
        assert!(i[0] < 0.0);
        // At the rail: no drive left.
        i[0] = 0.0;
        l.stamp(&[1.35], &[], &mut i);
        assert_eq!(i[0], 0.0);
    }

    #[test]
    fn max_node_reports_largest_index() {
        let r = Element::Resistor {
            a: NodeId(2),
            b: NodeId(7),
            ohms: 1.0,
            enable: None,
        };
        assert_eq!(r.max_node(), 7);
    }
}
