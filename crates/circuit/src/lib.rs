//! # sparkxd-circuit
//!
//! A small transient circuit simulator and a DRAM cell/bitline/sense-amplifier
//! model, substituting for the SPICE + DRAM circuit model of Chang et al.
//! (POMACS 2017) used by the SparkXD paper.
//!
//! The paper consumes exactly two artefacts from its SPICE runs:
//!
//! 1. the DRAM array-voltage waveform `V_array(t)` during an
//!    activate→precharge cycle at different supply voltages (paper Fig. 2d
//!    and Fig. 6), and
//! 2. the voltage-scaled DRAM timing parameters derived from that waveform:
//!    * `tRCD` — *ready-to-access*: `V_array` reaches 75% of `V_supply`,
//!    * `tRAS` — *ready-to-precharge*: `V_array` reaches 98% of `V_supply`,
//!    * `tRP`  — *ready-to-activate*: `V_array` is within 2% of `V_supply/2`.
//!
//! Both are produced here by integrating a nonlinear RC network that models
//! the cell capacitor, the access transistor, the bitline capacitance, the
//! regenerative sense amplifier and the precharge equaliser.
//!
//! ## Example
//!
//! ```
//! use sparkxd_circuit::{BitlineModel, Volt};
//!
//! let model = BitlineModel::lpddr3();
//! let wave = model.activate_precharge_waveform(Volt(1.35));
//! let timing = model.derive_timing(Volt(1.35)).expect("timing derivation");
//! assert!(timing.t_rcd.0 > 0.0 && timing.t_rcd.0 < timing.t_ras.0);
//! assert!(wave.samples().len() > 100);
//! ```

pub mod bitline;
pub mod elements;
pub mod solver;
pub mod timing;
pub mod waveform;

pub use bitline::{BitlineModel, BitlinePhase};
pub use elements::{Element, NodeId};
pub use solver::{Circuit, TransientResult, TransientSpec};
pub use timing::{DerivedTiming, TimingTable};
pub use waveform::Waveform;

/// A voltage in volts.
///
/// Newtype wrapper so supply voltages cannot be confused with times or
/// energies in the public API.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volt(pub f64);

impl std::fmt::Display for Volt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}V", self.0)
    }
}

/// A time duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanos(pub f64);

impl std::fmt::Display for Nanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}ns", self.0)
    }
}

/// Errors produced by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A node id referenced by an element does not exist in the circuit.
    UnknownNode(usize),
    /// The requested simulation has a non-positive timestep or duration.
    InvalidSpec(String),
    /// A waveform threshold was never crossed during the simulated window.
    ThresholdNotReached {
        /// The threshold voltage that was never reached.
        threshold: f64,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::UnknownNode(id) => write!(f, "unknown circuit node id {id}"),
            CircuitError::InvalidSpec(msg) => write!(f, "invalid transient spec: {msg}"),
            CircuitError::ThresholdNotReached { threshold } => {
                write!(f, "waveform never crossed threshold {threshold}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_display() {
        assert_eq!(Volt(1.35).to_string(), "1.350V");
    }

    #[test]
    fn nanos_display() {
        assert_eq!(Nanos(13.75).to_string(), "13.75ns");
    }

    #[test]
    fn error_display_is_lowercase_and_nonempty() {
        let e = CircuitError::UnknownNode(3);
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
