//! Fixed-step transient solver.
//!
//! Every node carries a capacitance to ground, so the circuit is the ODE
//! system `C_k dV_k/dt = Σ I_k(V)`. The solver integrates it with classic
//! RK4 at a fixed timestep while a [`PhaseSchedule`] toggles element enable
//! lines (wordline, sense-amp enable, equaliser) at programmed times.

use crate::elements::{Element, NodeId};
use crate::waveform::Waveform;
use crate::CircuitError;

/// A circuit: capacitive nodes plus current-contributing elements.
///
/// # Example
///
/// ```
/// use sparkxd_circuit::{Circuit, Element, TransientSpec};
///
/// // RC low-pass: 1 kΩ from a 1 V rail into a 1 pF node.
/// let mut c = Circuit::new();
/// let n = c.add_node(1e-12);
/// c.add_element(Element::RailResistor { node: n, rail_volts: 1.0, ohms: 1e3, enable: None });
/// let spec = TransientSpec::new(5e-9, 1e-12);
/// let result = c.simulate(&spec, &[]).expect("simulation");
/// let wave = result.node_waveform(n);
/// // After 5 RC time constants the node is essentially at the rail.
/// assert!(wave.last_value() > 0.99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_caps: Vec<f64>,
    initial_volts: Vec<f64>,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with capacitance `farads` to ground, initially at 0 V.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not strictly positive: a node without
    /// capacitance has no state in this formulation.
    pub fn add_node(&mut self, farads: f64) -> NodeId {
        assert!(farads > 0.0, "node capacitance must be positive");
        self.node_caps.push(farads);
        self.initial_volts.push(0.0);
        NodeId(self.node_caps.len() - 1)
    }

    /// Sets the initial voltage of `node`.
    pub fn set_initial_voltage(&mut self, node: NodeId, volts: f64) {
        self.initial_volts[node.0] = volts;
    }

    /// Adds an element to the circuit.
    pub fn add_element(&mut self, element: Element) {
        self.elements.push(element);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_caps.len()
    }

    /// Number of distinct enable lines referenced by elements.
    pub fn enable_line_count(&self) -> usize {
        self.elements
            .iter()
            .filter_map(Element::enable_index)
            .map(|i| i + 1)
            .max()
            .unwrap_or(0)
    }

    fn validate(&self, spec: &TransientSpec) -> Result<(), CircuitError> {
        for e in &self.elements {
            if e.max_node() >= self.node_caps.len() {
                return Err(CircuitError::UnknownNode(e.max_node()));
            }
        }
        if spec.dt_seconds <= 0.0 {
            return Err(CircuitError::InvalidSpec("dt must be positive".into()));
        }
        if spec.duration_seconds <= 0.0 {
            return Err(CircuitError::InvalidSpec(
                "duration must be positive".into(),
            ));
        }
        if spec.duration_seconds / spec.dt_seconds > 50_000_000.0 {
            return Err(CircuitError::InvalidSpec(
                "more than 5e7 steps requested".into(),
            ));
        }
        Ok(())
    }

    fn derivatives(&self, v: &[f64], enables: &[bool], dv: &mut [f64], scratch: &mut [f64]) {
        scratch.fill(0.0);
        for e in &self.elements {
            e.stamp(v, enables, scratch);
        }
        for k in 0..v.len() {
            dv[k] = scratch[k] / self.node_caps[k];
        }
    }

    /// Runs a transient simulation.
    ///
    /// `phases` are `(time_seconds, enable_states)` pairs: at each listed
    /// time the enable vector is replaced. Times must be non-decreasing.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if an element references a
    /// missing node and [`CircuitError::InvalidSpec`] for a bad timestep or
    /// duration.
    pub fn simulate(
        &self,
        spec: &TransientSpec,
        phases: &[(f64, Vec<bool>)],
    ) -> Result<TransientResult, CircuitError> {
        self.validate(spec)?;
        let n = self.node_count();
        let n_enables = self.enable_line_count();
        let mut v = self.initial_volts.clone();
        let mut enables = vec![false; n_enables];
        let mut phase_iter = phases.iter().peekable();

        let steps = (spec.duration_seconds / spec.dt_seconds).round() as usize;
        let record_every = spec.record_every.max(1);
        let mut times = Vec::with_capacity(steps / record_every + 2);
        let mut volts: Vec<Vec<f64>> = vec![Vec::with_capacity(steps / record_every + 2); n];

        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        let mut scratch = vec![0.0; n];

        let dt = spec.dt_seconds;
        for step in 0..=steps {
            let t = step as f64 * dt;
            // Apply any phase changes scheduled at or before `t`.
            while let Some((pt, states)) = phase_iter.peek() {
                if *pt <= t + dt * 0.5 {
                    for (i, s) in states.iter().enumerate().take(n_enables) {
                        enables[i] = *s;
                    }
                    phase_iter.next();
                } else {
                    break;
                }
            }
            if step % record_every == 0 {
                times.push(t);
                for (k, w) in volts.iter_mut().enumerate() {
                    w.push(v[k]);
                }
            }
            if step == steps {
                break;
            }
            // RK4 step.
            self.derivatives(&v, &enables, &mut k1, &mut scratch);
            for i in 0..n {
                tmp[i] = v[i] + 0.5 * dt * k1[i];
            }
            self.derivatives(&tmp, &enables, &mut k2, &mut scratch);
            for i in 0..n {
                tmp[i] = v[i] + 0.5 * dt * k2[i];
            }
            self.derivatives(&tmp, &enables, &mut k3, &mut scratch);
            for i in 0..n {
                tmp[i] = v[i] + dt * k3[i];
            }
            self.derivatives(&tmp, &enables, &mut k4, &mut scratch);
            for i in 0..n {
                v[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
        }

        Ok(TransientResult { times, volts })
    }
}

/// Parameters of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSpec {
    /// Total simulated time in seconds.
    pub duration_seconds: f64,
    /// Integration timestep in seconds.
    pub dt_seconds: f64,
    /// Record one sample every `record_every` steps (decimation).
    pub record_every: usize,
}

impl TransientSpec {
    /// Creates a spec recording every step.
    pub fn new(duration_seconds: f64, dt_seconds: f64) -> Self {
        Self {
            duration_seconds,
            dt_seconds,
            record_every: 1,
        }
    }

    /// Sets the recording decimation factor.
    pub fn with_record_every(mut self, every: usize) -> Self {
        self.record_every = every;
        self
    }
}

/// Result of a transient simulation: sampled node voltages over time.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    volts: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Sampled time points in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Extracts the waveform of a single node.
    pub fn node_waveform(&self, node: NodeId) -> Waveform {
        Waveform::from_series(self.times.clone(), self.volts[node.0].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_circuit(r: f64, c: f64, rail: f64) -> (Circuit, NodeId) {
        let mut cir = Circuit::new();
        let n = cir.add_node(c);
        cir.add_element(Element::RailResistor {
            node: n,
            rail_volts: rail,
            ohms: r,
            enable: None,
        });
        (cir, n)
    }

    #[test]
    fn rc_charging_matches_analytic_solution() {
        let (cir, n) = rc_circuit(1e3, 1e-12, 1.0); // tau = 1 ns
        let spec = TransientSpec::new(3e-9, 1e-12);
        let res = cir.simulate(&spec, &[]).unwrap();
        let wave = res.node_waveform(n);
        // V(t) = 1 - exp(-t/tau); check at t = 1 ns.
        let v_at_tau = wave.value_at(1e-9);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (v_at_tau - expected).abs() < 1e-4,
            "got {v_at_tau}, expected {expected}"
        );
    }

    #[test]
    fn phase_schedule_toggles_elements() {
        let mut cir = Circuit::new();
        let n = cir.add_node(1e-12);
        cir.add_element(Element::RailResistor {
            node: n,
            rail_volts: 1.0,
            ohms: 1e3,
            enable: Some(0),
        });
        // Enable charging only after 2 ns.
        let phases = vec![(0.0, vec![false]), (2e-9, vec![true])];
        let spec = TransientSpec::new(4e-9, 1e-12);
        let res = cir.simulate(&spec, &phases).unwrap();
        let wave = res.node_waveform(n);
        assert!(
            wave.value_at(1.9e-9).abs() < 1e-9,
            "held at 0 before enable"
        );
        assert!(wave.value_at(4e-9) > 0.5, "charged after enable");
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let (cir, _) = rc_circuit(1.0, 1e-12, 1.0);
        let err = cir.simulate(&TransientSpec::new(-1.0, 1e-12), &[]);
        assert!(matches!(err, Err(CircuitError::InvalidSpec(_))));
        let err = cir.simulate(&TransientSpec::new(1e-9, 0.0), &[]);
        assert!(matches!(err, Err(CircuitError::InvalidSpec(_))));
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut cir = Circuit::new();
        let _ = cir.add_node(1e-12);
        cir.add_element(Element::Resistor {
            a: NodeId(0),
            b: NodeId(5),
            ohms: 1.0,
            enable: None,
        });
        let err = cir.simulate(&TransientSpec::new(1e-9, 1e-12), &[]);
        assert_eq!(err, Err(CircuitError::UnknownNode(5)));
    }

    #[test]
    fn initial_voltage_is_respected() {
        let (mut cir, n) = rc_circuit(1e3, 1e-12, 0.0);
        cir.set_initial_voltage(n, 2.0);
        let spec = TransientSpec::new(5e-9, 1e-12);
        let res = cir.simulate(&spec, &[]).unwrap();
        let wave = res.node_waveform(n);
        assert!((wave.value_at(0.0) - 2.0).abs() < 1e-12);
        assert!(wave.last_value() < 0.05, "discharged towards ground rail");
    }

    #[test]
    fn record_decimation_reduces_samples() {
        let (cir, n) = rc_circuit(1e3, 1e-12, 1.0);
        let spec = TransientSpec::new(1e-9, 1e-12).with_record_every(10);
        let res = cir.simulate(&spec, &[]).unwrap();
        assert!(res.node_waveform(n).samples().len() <= 102);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_panics() {
        let mut cir = Circuit::new();
        cir.add_node(0.0);
    }
}
