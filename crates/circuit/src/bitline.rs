//! DRAM cell / bitline / sense-amplifier model.
//!
//! The netlist follows the reduced-voltage DRAM study of Chang et al.
//! (POMACS 2017): a cell capacitor behind an access transistor, a bitline
//! capacitance precharged to `VDD/2`, a regenerative sense amplifier and a
//! precharge equaliser. An activate→precharge cycle has four electrical
//! phases:
//!
//! 1. **Precharged**: bitline held at `VDD/2` by the equaliser.
//! 2. **Charge sharing** (wordline up): cell and bitline capacitors share
//!    charge, perturbing the bitline by `ΔV = Cc/(Cc+Cb) · VDD/2`.
//! 3. **Sensing/restore** (sense amp enabled): the latch regeneratively
//!    drives the bitline (and through the access transistor, the cell) to
//!    full `VDD` — this is the rising edge seen in paper Fig. 2(d)/Fig. 6.
//! 4. **Precharge** (PRE command): sense amp off, equaliser on, bitline
//!    returns to `VDD/2`.
//!
//! Reduced supply voltage weakens the sense amplifier and equaliser drive
//! (transconductance ∝ `V − V_th`), which slows every phase — exactly the
//! effect the paper exploits to derive voltage-scaled tRCD/tRAS/tRP.

use crate::elements::{Element, NodeId};
use crate::solver::{Circuit, TransientSpec};
use crate::timing::DerivedTiming;
use crate::waveform::Waveform;
use crate::{CircuitError, Nanos, Volt};

/// Phase of the activate→precharge cycle (for labelling waveforms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitlinePhase {
    /// Bitline held at VDD/2.
    Precharged,
    /// Wordline raised; charge sharing in progress.
    ChargeSharing,
    /// Sense amplifier restoring the cell.
    Sensing,
    /// Equaliser returning the bitline to VDD/2.
    Precharging,
}

/// Electrical parameters of the bitline model.
///
/// Values are *effective* lumped parameters calibrated so that the nominal
/// (1.35 V) derived timings match LPDDR3/DDR3L-class datasheet values
/// (tRCD ≈ 14 ns, tRAS ≈ 39 ns, tRP ≈ 14 ns). Ratios across voltages are
/// what the downstream energy model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct BitlineModel {
    /// Cell storage capacitance (farads).
    pub cell_cap: f64,
    /// Bitline capacitance (farads).
    pub bitline_cap: f64,
    /// Access-transistor on-resistance (ohms).
    pub access_ohms: f64,
    /// Sense-amplifier transconductance at nominal voltage (siemens).
    pub sense_gm_nominal: f64,
    /// Equaliser resistance at nominal voltage (ohms).
    pub equalize_ohms_nominal: f64,
    /// Nominal supply voltage.
    pub v_nominal: Volt,
    /// Effective transistor threshold voltage governing drive-strength
    /// degradation at reduced supply (volts).
    pub v_threshold: f64,
    /// Delay from wordline rise to sense-amp enable (seconds).
    pub sense_delay: f64,
    /// Integration timestep (seconds).
    pub dt: f64,
}

impl BitlineModel {
    /// LPDDR3-1600-class calibration (the paper's DRAM configuration).
    pub fn lpddr3() -> Self {
        Self {
            cell_cap: 24e-15,
            bitline_cap: 144e-15,
            access_ohms: 5e3,
            // tau = (Cc+Cb)/gm = 7.8 ns at nominal; tRCD = tau*ln(6) ~ 14 ns.
            sense_gm_nominal: 21.5e-6,
            // tau_pre = Req*(Cc+Cb) = 3.6 ns; tRP = tau*ln(48) ~ 14 ns.
            equalize_ohms_nominal: 21.4e3,
            v_nominal: Volt(1.35),
            v_threshold: 0.5,
            sense_delay: 1e-9,
            dt: 10e-12,
        }
    }

    /// Drive-strength derating factor at supply voltage `v`:
    /// `(v − V_th) / (V_nom − V_th)`, clamped to a small positive floor.
    pub fn drive_factor(&self, v: Volt) -> f64 {
        let f = (v.0 - self.v_threshold) / (self.v_nominal.0 - self.v_threshold);
        f.max(0.05)
    }

    /// Builds the netlist for supply voltage `v` with a stored `1` (cell at
    /// full VDD) unless `stored_zero`.
    ///
    /// Returns the circuit plus the bitline and cell node ids. Enable lines:
    /// 0 = wordline, 1 = sense amp, 2 = equaliser.
    pub fn build_circuit(&self, v: Volt, stored_zero: bool) -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let n_cell = c.add_node(self.cell_cap);
        let n_bl = c.add_node(self.bitline_cap);
        let half = v.0 / 2.0;
        c.set_initial_voltage(n_cell, if stored_zero { 0.0 } else { v.0 });
        c.set_initial_voltage(n_bl, half);
        let drive = self.drive_factor(v);
        // Access transistor: wordline-gated resistor between cell and bitline.
        c.add_element(Element::Resistor {
            a: n_cell,
            b: n_bl,
            ohms: self.access_ohms / drive,
            enable: Some(0),
        });
        // Sense amplifier: regenerative latch on the bitline.
        c.add_element(Element::Latch {
            node: n_bl,
            center_volts: half,
            gm: self.sense_gm_nominal * drive,
            vdd: v.0,
            enable: Some(1),
        });
        // Precharge equaliser: pulls the bitline back to VDD/2.
        c.add_element(Element::RailResistor {
            node: n_bl,
            rail_volts: half,
            ohms: self.equalize_ohms_nominal / drive,
            enable: Some(2),
        });
        (c, n_bl, n_cell)
    }

    /// Simulates one activate→precharge cycle and returns the array
    /// (bitline) voltage waveform.
    ///
    /// The PRE command is issued at `precharge_at` and the run lasts
    /// `duration`. This reproduces paper Fig. 2(d) (1.35 V vs 1.025 V) and
    /// the per-voltage traces of Fig. 6.
    pub fn activate_precharge_waveform_with(
        &self,
        v: Volt,
        precharge_at: Nanos,
        duration: Nanos,
    ) -> Waveform {
        let (circuit, n_bl, _) = self.build_circuit(v, false);
        //                         wordline, sense, equalise
        let phases = vec![
            (0.0, vec![true, false, false]),
            (self.sense_delay, vec![true, true, false]),
            (precharge_at.0 * 1e-9, vec![false, false, true]),
        ];
        let spec = TransientSpec::new(duration.0 * 1e-9, self.dt).with_record_every(10);
        let result = circuit
            .simulate(&spec, &phases)
            .expect("bitline netlist is self-consistent");
        result.node_waveform(n_bl)
    }

    /// 80 ns activate→precharge waveform with PRE at 45 ns — the window the
    /// paper plots in Fig. 2(d) and Fig. 6.
    pub fn activate_precharge_waveform(&self, v: Volt) -> Waveform {
        self.activate_precharge_waveform_with(v, Nanos(45.0), Nanos(80.0))
    }

    /// Derives the voltage-scaled timing parameters at supply `v` using the
    /// paper's three thresholds:
    /// tRCD @ 75%·V, tRAS @ 98%·V, tRP @ settled within 2% of V/2.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ThresholdNotReached`] if the supply is so low the
    /// array never restores within the simulated window (the model floors
    /// drive strength, so this only happens for non-physical inputs).
    pub fn derive_timing(&self, v: Volt) -> Result<DerivedTiming, CircuitError> {
        // Long window so even heavily derated voltages settle: activate for
        // 120 ns, precharge at 120 ns, observe 80 ns more.
        let pre_at = Nanos(120.0);
        let wave = self.activate_precharge_waveform_with(v, pre_at, Nanos(200.0));
        let t_rcd_s = wave.try_first_crossing_rising(0.75 * v.0)?;
        let t_ras_s = wave.try_first_crossing_rising(0.98 * v.0)?;
        let half = v.0 / 2.0;
        let t_settle_s = wave
            .settling_time_into_band(half, 0.02 * half, pre_at.0 * 1e-9)
            .ok_or(CircuitError::ThresholdNotReached { threshold: half })?;
        Ok(DerivedTiming {
            v_supply: v,
            t_rcd: Nanos(t_rcd_s * 1e9),
            t_ras: Nanos(t_ras_s * 1e9),
            t_rp: Nanos((t_settle_s - pre_at.0 * 1e-9) * 1e9),
        })
    }
}

impl Default for BitlineModel {
    fn default() -> Self {
        Self::lpddr3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_starts_at_half_vdd_and_restores_to_vdd() {
        let m = BitlineModel::lpddr3();
        let v = Volt(1.35);
        let w = m.activate_precharge_waveform(v);
        assert!((w.value_at(0.0) - v.0 / 2.0).abs() < 0.05);
        // Just before precharge the array is essentially restored.
        assert!(w.value_at(44e-9) > 0.97 * v.0);
        // Well after precharge it is back at VDD/2.
        assert!((w.last_value() - v.0 / 2.0).abs() < 0.02 * v.0);
    }

    #[test]
    fn stored_zero_discharges_bitline() {
        let m = BitlineModel::lpddr3();
        let v = Volt(1.35);
        let (c, n_bl, _) = m.build_circuit(v, true);
        let phases = vec![
            (0.0, vec![true, false, false]),
            (1e-9, vec![true, true, false]),
        ];
        let res = c
            .simulate(
                &TransientSpec::new(40e-9, m.dt).with_record_every(10),
                &phases,
            )
            .unwrap();
        let w = res.node_waveform(n_bl);
        assert!(
            w.last_value() < 0.05 * v.0,
            "bitline driven to ground for a 0"
        );
    }

    #[test]
    fn nominal_timing_matches_ddr3l_class_values() {
        let m = BitlineModel::lpddr3();
        let t = m.derive_timing(Volt(1.35)).unwrap();
        assert!(
            (10.0..20.0).contains(&t.t_rcd.0),
            "tRCD {} out of DDR3L band",
            t.t_rcd
        );
        assert!(
            (30.0..48.0).contains(&t.t_ras.0),
            "tRAS {} out of DDR3L band",
            t.t_ras
        );
        assert!(
            (8.0..20.0).contains(&t.t_rp.0),
            "tRP {} out of DDR3L band",
            t.t_rp
        );
    }

    #[test]
    fn reduced_voltage_slows_all_timings() {
        let m = BitlineModel::lpddr3();
        let nominal = m.derive_timing(Volt(1.35)).unwrap();
        let reduced = m.derive_timing(Volt(1.025)).unwrap();
        assert!(reduced.t_rcd.0 > nominal.t_rcd.0);
        assert!(reduced.t_ras.0 > nominal.t_ras.0);
        assert!(reduced.t_rp.0 > nominal.t_rp.0);
        // Derating is meaningful but bounded (Voltron reports ~1.3-1.8x).
        let ratio = reduced.t_rcd.0 / nominal.t_rcd.0;
        assert!((1.2..2.5).contains(&ratio), "tRCD ratio {ratio}");
    }

    #[test]
    fn lower_voltage_has_lower_array_voltage_everywhere_on_the_rise() {
        let m = BitlineModel::lpddr3();
        let hi = m.activate_precharge_waveform(Volt(1.35));
        let lo = m.activate_precharge_waveform(Volt(1.025));
        for t_ns in [5.0, 10.0, 20.0, 40.0] {
            let t = t_ns * 1e-9;
            assert!(
                lo.value_at(t) < hi.value_at(t),
                "V_array(lo) must stay below V_array(hi) at {t_ns} ns"
            );
        }
    }

    #[test]
    fn drive_factor_is_monotonic_and_floored() {
        let m = BitlineModel::lpddr3();
        assert!((m.drive_factor(Volt(1.35)) - 1.0).abs() < 1e-12);
        assert!(m.drive_factor(Volt(1.025)) < 1.0);
        assert!(m.drive_factor(Volt(0.2)) >= 0.05);
    }
}
