//! Sampled waveforms and threshold-crossing queries.

use crate::CircuitError;

/// A sampled time-series of voltages, the unit of data exchanged between the
/// transient solver and the timing-extraction logic.
///
/// # Example
///
/// ```
/// use sparkxd_circuit::Waveform;
///
/// let w = Waveform::from_series(vec![0.0, 1.0, 2.0], vec![0.0, 0.5, 1.0]);
/// assert_eq!(w.value_at(1.5), 0.75); // linear interpolation
/// assert_eq!(w.first_crossing_rising(0.5), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or times are not
    /// non-decreasing.
    pub fn from_series(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "times must be non-decreasing"
        );
        Self { times, values }
    }

    /// `(time, value)` sample pairs.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .copied()
            .zip(self.values.iter().copied())
            .collect()
    }

    /// Time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sampled values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Final sampled value.
    ///
    /// # Panics
    ///
    /// Panics if the waveform is empty.
    pub fn last_value(&self) -> f64 {
        *self.values.last().expect("waveform is empty")
    }

    /// Linearly interpolated value at time `t` (clamped to the ends).
    pub fn value_at(&self, t: f64) -> f64 {
        if self.times.is_empty() {
            return 0.0;
        }
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().unwrap() {
            return *self.values.last().unwrap();
        }
        let idx = match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("non-NaN times"))
        {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }

    /// First time the waveform rises through `threshold`, with linear
    /// interpolation between samples. `None` if never crossed upward.
    pub fn first_crossing_rising(&self, threshold: f64) -> Option<f64> {
        self.first_crossing_rising_after(threshold, f64::NEG_INFINITY)
    }

    /// First rising crossing of `threshold` at or after time `t_from`.
    pub fn first_crossing_rising_after(&self, threshold: f64, t_from: f64) -> Option<f64> {
        for i in 1..self.times.len() {
            if self.times[i] < t_from {
                continue;
            }
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            if v0 < threshold && v1 >= threshold {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let frac = (threshold - v0) / (v1 - v0);
                let t = t0 + frac * (t1 - t0);
                if t >= t_from {
                    return Some(t);
                }
            }
        }
        None
    }

    /// First time at or after `t_from` that the waveform enters and stays in
    /// the band `center ± tolerance` until the end of the record.
    ///
    /// Used for the *ready-to-activate* condition: V_array settled within 2%
    /// of `V_supply/2`.
    pub fn settling_time_into_band(&self, center: f64, tolerance: f64, t_from: f64) -> Option<f64> {
        let inside = |v: f64| (v - center).abs() <= tolerance;
        let mut settle: Option<f64> = None;
        for i in 0..self.times.len() {
            if self.times[i] < t_from {
                continue;
            }
            if inside(self.values[i]) {
                if settle.is_none() {
                    settle = Some(self.times[i]);
                }
            } else {
                settle = None;
            }
        }
        settle
    }

    /// Like [`first_crossing_rising`](Self::first_crossing_rising) but
    /// returning an error suited to timing extraction.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ThresholdNotReached`] if the waveform never rises
    /// through `threshold`.
    pub fn try_first_crossing_rising(&self, threshold: f64) -> Result<f64, CircuitError> {
        self.first_crossing_rising(threshold)
            .ok_or(CircuitError::ThresholdNotReached { threshold })
    }

    /// Downsamples to approximately `n` evenly spaced points (for printing).
    pub fn resampled(&self, n: usize) -> Waveform {
        if self.times.len() <= n || n < 2 {
            return self.clone();
        }
        let t0 = self.times[0];
        let t1 = *self.times.last().unwrap();
        let mut times = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for k in 0..n {
            let t = t0 + (t1 - t0) * k as f64 / (n - 1) as f64;
            times.push(t);
            values.push(self.value_at(t));
        }
        Waveform::from_series(times, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_series(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 2.0, 3.0])
    }

    #[test]
    fn interpolation_inside_and_outside() {
        let w = ramp();
        assert_eq!(w.value_at(0.5), 0.5);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(10.0), 3.0);
    }

    #[test]
    fn rising_crossing_is_interpolated() {
        let w = Waveform::from_series(vec![0.0, 1.0], vec![0.0, 2.0]);
        assert_eq!(w.first_crossing_rising(1.0), Some(0.5));
    }

    #[test]
    fn crossing_after_skips_earlier_edges() {
        let w = Waveform::from_series(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 2.0, 0.0, 2.0, 2.0]);
        assert_eq!(w.first_crossing_rising_after(1.0, 1.5), Some(2.5));
    }

    #[test]
    fn no_crossing_returns_none_and_error() {
        let w = ramp();
        assert_eq!(w.first_crossing_rising(10.0), None);
        assert!(matches!(
            w.try_first_crossing_rising(10.0),
            Err(CircuitError::ThresholdNotReached { .. })
        ));
    }

    #[test]
    fn settling_requires_staying_in_band() {
        // Enters the band at t=2 but leaves at t=3, re-enters at t=4.
        let w = Waveform::from_series(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
            vec![1.0, 0.8, 0.51, 0.8, 0.50, 0.50],
        );
        assert_eq!(w.settling_time_into_band(0.5, 0.02, 0.0), Some(4.0));
    }

    #[test]
    fn resample_reduces_points() {
        let w = Waveform::from_series(
            (0..1000).map(|i| i as f64).collect(),
            (0..1000).map(|i| i as f64).collect(),
        );
        let r = w.resampled(11);
        assert_eq!(r.len(), 11);
        assert_eq!(r.value_at(500.0), 500.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panics() {
        let _ = Waveform::from_series(vec![0.0], vec![]);
    }
}
