//! Ordering properties of the energy model across the paper's voltage
//! ladder: baseline (1.35 V accurate) vs reduced-voltage approximate
//! configurations, per access kind and end-to-end over replayed traces.

use sparkxd_circuit::Volt;
use sparkxd_dram::{AccessTrace, DramConfig, DramModel};
use sparkxd_energy::EnergyModel;

/// The paper's operating points, highest voltage first (Table I columns).
const LADDER: [f64; 6] = [1.35, 1.325, 1.25, 1.175, 1.1, 1.025];

fn model_at(v: f64) -> EnergyModel {
    let config = if v == 1.35 {
        DramConfig::lpddr3_1600_4gb()
    } else {
        DramConfig::approximate(Volt(v)).expect("approximate config within supported range")
    };
    EnergyModel::for_config(&config)
}

/// Baseline must cost strictly more than every reduced-voltage point, for
/// every row-buffer condition — and each step down the ladder must help.
#[test]
fn every_access_kind_strictly_decreases_down_the_ladder() {
    let mut previous: Option<sparkxd_energy::AccessEnergy> = None;
    for v in LADDER {
        let e = model_at(v).access_energy();
        if let Some(p) = previous {
            assert!(e.hit_nj < p.hit_nj, "hit energy must fall below {v} V");
            assert!(e.miss_nj < p.miss_nj, "miss energy must fall below {v} V");
            assert!(
                e.conflict_nj < p.conflict_nj,
                "conflict energy must fall below {v} V"
            );
        }
        previous = Some(e);
    }
}

/// Within any single voltage, hit < miss < conflict (Fig. 2b): the ordering
/// must survive voltage scaling, not just hold at nominal.
#[test]
fn access_kind_ordering_holds_at_every_voltage() {
    for v in LADDER {
        let e = model_at(v).access_energy();
        assert!(
            e.hit_nj < e.miss_nj && e.miss_nj < e.conflict_nj,
            "ordering violated at {v} V: {e:?}"
        );
    }
}

/// Command energy scales as (V/Vn)^2 with the default current exponent of
/// 1.0 — the law behind the paper's Table I numbers.
#[test]
fn command_energy_follows_v_squared() {
    let nominal = model_at(1.35);
    for v in &LADDER[1..] {
        let reduced = model_at(*v);
        let measured = reduced.act_energy_nj() / nominal.act_energy_nj();
        let expected = (v / 1.35) * (v / 1.35);
        assert!(
            (measured - expected).abs() < 1e-9,
            "V² law broken at {v} V: measured {measured}, expected {expected}"
        );
    }
}

/// End-to-end trace energy (commands + background over the stretched
/// runtime) must still order baseline above reduced voltage, even though
/// the slowed core timing inflates the background term.
#[test]
fn trace_energy_ordering_baseline_vs_reduced() {
    let trace = AccessTrace::sequential_reads(&DramConfig::lpddr3_1600_4gb().geometry, 2048);
    let mut previous = f64::INFINITY;
    for v in LADDER {
        let config = if v == 1.35 {
            DramConfig::lpddr3_1600_4gb()
        } else {
            DramConfig::approximate(Volt(v)).unwrap()
        };
        let out = DramModel::new(config.clone()).replay(&trace);
        let e = EnergyModel::for_config(&config).trace_energy(&out.stats, &out.latency);
        assert!(
            e.total_nj() < previous,
            "trace energy must fall at {v} V: {} !< {previous}",
            e.total_nj()
        );
        previous = e.total_nj();
    }
}

/// End-to-end saving must be smaller than the per-access (command-only)
/// saving at the same voltage: background energy accrues over the runtime
/// that reduced-voltage timing stretches (Table I vs Fig. 12a).
#[test]
fn end_to_end_saving_below_per_access_saving() {
    let hi_cfg = DramConfig::lpddr3_1600_4gb();
    let lo_cfg = DramConfig::approximate(Volt(1.025)).unwrap();
    let trace = AccessTrace::sequential_reads(&hi_cfg.geometry, 4096);

    let per_access = 1.0
        - EnergyModel::for_config(&lo_cfg).access_energy().conflict_nj
            / EnergyModel::for_config(&hi_cfg).access_energy().conflict_nj;

    let hi_out = DramModel::new(hi_cfg.clone()).replay(&trace);
    let lo_out = DramModel::new(lo_cfg.clone()).replay(&trace);
    let end_to_end = 1.0
        - EnergyModel::for_config(&lo_cfg)
            .trace_energy(&lo_out.stats, &lo_out.latency)
            .total_nj()
            / EnergyModel::for_config(&hi_cfg)
                .trace_energy(&hi_out.stats, &hi_out.latency)
                .total_nj();

    assert!(
        end_to_end < per_access,
        "end-to-end {end_to_end} should trail per-access {per_access}"
    );
    assert!(end_to_end > 0.25, "end-to-end saving implausibly small");
}
