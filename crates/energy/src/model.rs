//! Current-based DRAM command energy model (DRAMPower-style).

use sparkxd_circuit::Volt;
use sparkxd_dram::{AccessStats, DramConfig, DramTiming, LatencyReport};

use crate::access::AccessEnergy;

/// IDD current classes of the device at nominal voltage, in amperes.
///
/// Values are *effective module-level* currents calibrated so the nominal
/// per-access energies reproduce the paper's Fig. 2(b) (row-buffer hit
/// ≈ 2 nJ, miss ≈ 5.5 nJ, conflict ≈ 7 nJ at 1.35 V). The calibration is
/// documented in `DESIGN.md`; only ratios across voltages and access
/// conditions matter downstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentProfile {
    /// Activate-precharge current (one ACT+PRE cycle average).
    pub idd0: f64,
    /// Precharge-standby background current.
    pub idd2n: f64,
    /// Active-standby background current.
    pub idd3n: f64,
    /// Read burst current.
    pub idd4r: f64,
    /// Write burst current.
    pub idd4w: f64,
    /// Nominal supply voltage the currents were measured at.
    pub v_nominal: Volt,
    /// I/O + termination energy per transferred bit, in picojoules.
    pub io_pj_per_bit: f64,
    /// Exponent of current-vs-voltage scaling (`I ∝ (V/Vn)^k`); 1.0 gives
    /// the `V²` command-energy scaling observed by Voltron/EDEN.
    pub current_exponent: f64,
}

impl CurrentProfile {
    /// Calibrated LPDDR3-1600 4Gb profile (see struct docs).
    pub fn lpddr3_1600_4gb() -> Self {
        Self {
            idd0: 0.105,
            idd2n: 0.032,
            idd3n: 0.039,
            idd4r: 0.141,
            idd4w: 0.130,
            v_nominal: Volt(1.35),
            io_pj_per_bit: 10.0,
            current_exponent: 1.0,
        }
    }

    /// Current scaling factor at supply `v`.
    pub fn current_scale(&self, v: Volt) -> f64 {
        (v.0 / self.v_nominal.0).powf(self.current_exponent)
    }
}

impl Default for CurrentProfile {
    fn default() -> Self {
        Self::lpddr3_1600_4gb()
    }
}

/// Energy totals for one replayed trace, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activation energy.
    pub act_nj: f64,
    /// Precharge energy.
    pub pre_nj: f64,
    /// Read burst energy (incl. I/O).
    pub read_nj: f64,
    /// Write burst energy (incl. I/O).
    pub write_nj: f64,
    /// Background (standby) energy over the trace runtime.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_nj + self.pre_nj + self.read_nj + self.write_nj + self.background_nj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "act={:.1}nJ pre={:.1}nJ rd={:.1}nJ wr={:.1}nJ bg={:.1}nJ total={:.1}nJ",
            self.act_nj,
            self.pre_nj,
            self.read_nj,
            self.write_nj,
            self.background_nj,
            self.total_nj()
        )
    }
}

/// DRAM energy model bound to one device configuration (geometry, timing,
/// supply voltage).
///
/// Command energies are charge-based: the IDD charge moved at *nominal*
/// command duration, scaled to the operating voltage. The slowed core
/// timing at reduced voltage therefore does not inflate command energy (the
/// restore moves the same charge, just more slowly), but it does extend the
/// runtime over which background power accrues — matching the relationship
/// between the paper's Table I (per-access savings) and Fig. 12(a)
/// (slightly smaller end-to-end savings).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    currents: CurrentProfile,
    config: DramConfig,
}

impl EnergyModel {
    /// Builds a model for `config` with the default calibrated currents.
    pub fn for_config(config: &DramConfig) -> Self {
        Self {
            currents: CurrentProfile::lpddr3_1600_4gb(),
            config: config.clone(),
        }
    }

    /// Builds a model with explicit currents.
    pub fn with_currents(config: &DramConfig, currents: CurrentProfile) -> Self {
        Self {
            currents,
            config: config.clone(),
        }
    }

    /// Supply voltage of the bound configuration.
    pub fn v_supply(&self) -> Volt {
        self.config.v_supply
    }

    /// The bound configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn v(&self) -> f64 {
        self.config.v_supply.0
    }

    /// Scale applied to every command energy relative to nominal:
    /// `(I(V)·V) / (I(Vn)·Vn) = (V/Vn)^(1+k)`.
    pub fn command_energy_scale(&self) -> f64 {
        self.currents.current_scale(self.config.v_supply) * self.v() / self.currents.v_nominal.0
    }

    /// Energy of one activate command (nJ).
    pub fn act_energy_nj(&self) -> f64 {
        let t = DramTiming::lpddr3_1600_nominal();
        let c = &self.currents;
        (c.idd0 - c.idd3n) * c.v_nominal.0 * t.t_ras * self.command_energy_scale()
    }

    /// Energy of one precharge command (nJ).
    pub fn pre_energy_nj(&self) -> f64 {
        let t = DramTiming::lpddr3_1600_nominal();
        let c = &self.currents;
        (c.idd0 - c.idd2n) * c.v_nominal.0 * t.t_rp * self.command_energy_scale()
    }

    /// Energy of one read burst including I/O (nJ).
    pub fn read_energy_nj(&self) -> f64 {
        let t = DramTiming::lpddr3_1600_nominal();
        let c = &self.currents;
        let core = (c.idd4r - c.idd3n) * c.v_nominal.0 * t.t_burst;
        let bits = (self.config.geometry.col_bytes * 8) as f64;
        let io = c.io_pj_per_bit * 1e-3 * bits;
        (core + io) * self.command_energy_scale()
    }

    /// Energy of one write burst including I/O (nJ).
    pub fn write_energy_nj(&self) -> f64 {
        let t = DramTiming::lpddr3_1600_nominal();
        let c = &self.currents;
        let core = (c.idd4w - c.idd3n) * c.v_nominal.0 * t.t_burst;
        let bits = (self.config.geometry.col_bytes * 8) as f64;
        let io = c.io_pj_per_bit * 1e-3 * bits;
        (core + io) * self.command_energy_scale()
    }

    /// Background power (W) while active, at the operating voltage.
    pub fn background_power_w(&self) -> f64 {
        let c = &self.currents;
        c.idd3n * self.currents.current_scale(self.config.v_supply) * self.v()
    }

    /// Per-access energies by row-buffer condition (paper Fig. 2b).
    pub fn access_energy(&self) -> AccessEnergy {
        AccessEnergy {
            v_supply: self.config.v_supply,
            hit_nj: self.read_energy_nj(),
            miss_nj: self.act_energy_nj() + self.read_energy_nj(),
            conflict_nj: self.pre_energy_nj() + self.act_energy_nj() + self.read_energy_nj(),
        }
    }

    /// Energy of a replayed trace from its statistics and latency report.
    pub fn trace_energy(&self, stats: &AccessStats, latency: &LatencyReport) -> EnergyBreakdown {
        // Core timing slowdown stretches the runtime at reduced voltage.
        let runtime_ns = latency.total_ns * self.config.core_slowdown().max(1.0);
        EnergyBreakdown {
            act_nj: stats.activates() as f64 * self.act_energy_nj(),
            pre_nj: stats.precharges() as f64 * self.pre_energy_nj(),
            read_nj: stats.reads as f64 * self.read_energy_nj(),
            write_nj: stats.writes as f64 * self.write_energy_nj(),
            background_nj: self.background_power_w() * runtime_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_dram::{AccessTrace, DramModel};

    fn nominal() -> EnergyModel {
        EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb())
    }

    fn reduced() -> EnergyModel {
        EnergyModel::for_config(&DramConfig::approximate(Volt(1.025)).unwrap())
    }

    #[test]
    fn nominal_access_energies_match_fig2b_calibration() {
        let e = nominal().access_energy();
        assert!((1.5..2.5).contains(&e.hit_nj), "hit {}", e.hit_nj);
        assert!((4.5..6.5).contains(&e.miss_nj), "miss {}", e.miss_nj);
        assert!(
            (6.0..8.5).contains(&e.conflict_nj),
            "conflict {}",
            e.conflict_nj
        );
    }

    #[test]
    fn per_access_saving_matches_table1_anchor() {
        // Table I: 42.40% saving at 1.025 V. V² scaling gives 42.35%.
        let hi = nominal().access_energy();
        let lo = reduced().access_energy();
        for (a, b) in [
            (hi.hit_nj, lo.hit_nj),
            (hi.miss_nj, lo.miss_nj),
            (hi.conflict_nj, lo.conflict_nj),
        ] {
            let saving = 1.0 - b / a;
            assert!(
                (0.40..0.45).contains(&saving),
                "saving {saving} outside Table I band"
            );
        }
    }

    #[test]
    fn command_energies_ordered_like_fig2b() {
        let e = nominal().access_energy();
        assert!(e.hit_nj < e.miss_nj && e.miss_nj < e.conflict_nj);
    }

    #[test]
    fn trace_energy_accounts_all_commands() {
        let config = DramConfig::tiny();
        let trace = AccessTrace::sequential_reads(&config.geometry, 32);
        let out = DramModel::new(config.clone()).replay(&trace);
        let m = EnergyModel::for_config(&config);
        let e = m.trace_energy(&out.stats, &out.latency);
        assert!(e.read_nj > 0.0);
        assert!(e.act_nj > 0.0);
        assert!(e.background_nj > 0.0);
        assert_eq!(e.write_nj, 0.0);
        assert!(e.total_nj() > e.read_nj);
    }

    #[test]
    fn reduced_voltage_reduces_trace_energy() {
        let hi_cfg = DramConfig::lpddr3_1600_4gb();
        let lo_cfg = DramConfig::approximate(Volt(1.025)).unwrap();
        let trace = AccessTrace::sequential_reads(&hi_cfg.geometry, 4096);
        let hi_out = DramModel::new(hi_cfg.clone()).replay(&trace);
        let lo_out = DramModel::new(lo_cfg.clone()).replay(&trace);
        let hi_e = EnergyModel::for_config(&hi_cfg).trace_energy(&hi_out.stats, &hi_out.latency);
        let lo_e = EnergyModel::for_config(&lo_cfg).trace_energy(&lo_out.stats, &lo_out.latency);
        let saving = 1.0 - lo_e.total_nj() / hi_e.total_nj();
        // End-to-end saving a touch below the per-access 42.4% because the
        // background term stretches with the slowed core timing (paper
        // reports 39.46% at 1.025 V).
        assert!(
            (0.34..0.43).contains(&saving),
            "end-to-end saving {saving} out of band"
        );
    }

    #[test]
    fn energy_monotonic_in_voltage() {
        let voltages = [1.35, 1.325, 1.25, 1.175, 1.1, 1.025];
        let mut previous = f64::INFINITY;
        for v in voltages {
            let cfg = if v == 1.35 {
                DramConfig::lpddr3_1600_4gb()
            } else {
                DramConfig::approximate(Volt(v)).unwrap()
            };
            let e = EnergyModel::for_config(&cfg).access_energy().conflict_nj;
            assert!(e < previous, "energy must fall as voltage falls");
            previous = e;
        }
    }

    #[test]
    fn write_energy_close_to_read() {
        let m = nominal();
        let r = m.read_energy_nj();
        let w = m.write_energy_nj();
        assert!((w / r - 1.0).abs() < 0.2);
    }

    #[test]
    fn breakdown_display_lists_total() {
        let e = EnergyBreakdown {
            act_nj: 1.0,
            pre_nj: 1.0,
            read_nj: 1.0,
            write_nj: 0.0,
            background_nj: 1.0,
        };
        assert!(e.to_string().contains("total=4.0nJ"));
    }
}
