//! # sparkxd-energy
//!
//! DRAM energy estimation in the style of DRAMPower (Chandrasekar et al.),
//! the tool the SparkXD paper uses, plus the SNN platform energy-breakdown
//! models behind the paper's motivation figure.
//!
//! The model is current-based: each DRAM command (ACT, PRE, RD, WR) costs
//! the charge its IDD current class moves at the nominal command duration,
//! times the supply voltage; background power accrues over the runtime.
//! Currents scale linearly with supply voltage, so command energy scales as
//! `V²` — which reproduces the paper's Table I energy-per-access savings
//! (42.4% at 1.025 V vs 1.35 V) and, combined with the slowed core timing
//! from the circuit model, the slightly smaller end-to-end savings of
//! Fig. 12(a).
//!
//! ## Example
//!
//! ```
//! use sparkxd_dram::DramConfig;
//! use sparkxd_energy::EnergyModel;
//! use sparkxd_circuit::Volt;
//!
//! let nominal = EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb());
//! let reduced = EnergyModel::for_config(&DramConfig::approximate(Volt(1.025))?);
//! let saving = 1.0 - reduced.access_energy().conflict_nj / nominal.access_energy().conflict_nj;
//! assert!(saving > 0.35 && saving < 0.50);
//! # Ok::<(), sparkxd_circuit::CircuitError>(())
//! ```

pub mod access;
pub mod model;
pub mod platform;

pub use access::AccessEnergy;
pub use model::{CurrentProfile, EnergyBreakdown, EnergyModel};
pub use platform::{PlatformEnergyBreakdown, PlatformProfile, SnnWorkload};

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_circuit::Volt;
    use sparkxd_dram::DramConfig;

    #[test]
    fn crate_level_flow_compiles() {
        let m = EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb());
        assert!(m.access_energy().hit_nj > 0.0);
        assert_eq!(m.v_supply(), Volt(1.35));
    }
}
