//! Per-access energies by row-buffer condition (paper Fig. 2b, Table I).

use sparkxd_circuit::Volt;
use sparkxd_dram::AccessKind;

/// DRAM energy of a single access under each row-buffer condition, at one
/// supply voltage.
///
/// # Example
///
/// ```
/// use sparkxd_dram::DramConfig;
/// use sparkxd_energy::EnergyModel;
///
/// let e = EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb()).access_energy();
/// assert!(e.hit_nj < e.miss_nj && e.miss_nj < e.conflict_nj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessEnergy {
    /// Supply voltage.
    pub v_supply: Volt,
    /// Energy of a row-buffer hit (nJ).
    pub hit_nj: f64,
    /// Energy of a row-buffer miss (nJ).
    pub miss_nj: f64,
    /// Energy of a row-buffer conflict (nJ).
    pub conflict_nj: f64,
}

impl AccessEnergy {
    /// Energy for one access `kind` in nanojoules.
    pub fn for_kind(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Hit => self.hit_nj,
            AccessKind::Miss => self.miss_nj,
            AccessKind::Conflict => self.conflict_nj,
        }
    }

    /// Mean per-access energy given a hit/miss/conflict mix.
    pub fn weighted_mean_nj(&self, hits: u64, misses: u64, conflicts: u64) -> f64 {
        let total = hits + misses + conflicts;
        if total == 0 {
            return 0.0;
        }
        (self.hit_nj * hits as f64
            + self.miss_nj * misses as f64
            + self.conflict_nj * conflicts as f64)
            / total as f64
    }

    /// Fractional saving of `self` relative to a `baseline` at equal access
    /// mix (uniform across conditions) — the quantity of the paper's
    /// Table I.
    pub fn saving_vs(&self, baseline: &AccessEnergy) -> f64 {
        let own = self.hit_nj + self.miss_nj + self.conflict_nj;
        let base = baseline.hit_nj + baseline.miss_nj + baseline.conflict_nj;
        1.0 - own / base
    }
}

impl std::fmt::Display for AccessEnergy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: hit={:.2}nJ miss={:.2}nJ conflict={:.2}nJ",
            self.v_supply, self.hit_nj, self.miss_nj, self.conflict_nj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessEnergy {
        AccessEnergy {
            v_supply: Volt(1.35),
            hit_nj: 2.0,
            miss_nj: 5.0,
            conflict_nj: 7.0,
        }
    }

    #[test]
    fn for_kind_selects_field() {
        let e = sample();
        assert_eq!(e.for_kind(AccessKind::Hit), 2.0);
        assert_eq!(e.for_kind(AccessKind::Miss), 5.0);
        assert_eq!(e.for_kind(AccessKind::Conflict), 7.0);
    }

    #[test]
    fn weighted_mean() {
        let e = sample();
        assert_eq!(e.weighted_mean_nj(1, 1, 0), 3.5);
        assert_eq!(e.weighted_mean_nj(0, 0, 0), 0.0);
    }

    #[test]
    fn saving_vs_baseline() {
        let hi = sample();
        let lo = AccessEnergy {
            hit_nj: 1.0,
            miss_nj: 2.5,
            conflict_nj: 3.5,
            ..hi
        };
        assert!((lo.saving_vs(&hi) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_lists_all_conditions() {
        let s = sample().to_string();
        assert!(s.contains("hit=") && s.contains("miss=") && s.contains("conflict="));
    }
}
