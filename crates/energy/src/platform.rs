//! SNN hardware platform energy-breakdown models (paper Fig. 1b).
//!
//! The paper motivates approximate DRAM by citing the energy breakdowns of
//! three SNN platforms — TrueNorth, PEASE and SNNAP — where memory accesses
//! consume roughly 50–75% of total energy (adapted from Krithivasan et al.,
//! ISLPED 2019). We model each platform with per-operation energy constants
//! and compute the breakdown for a given SNN inference workload.

/// Per-operation energy constants of an SNN platform, in picojoules.
///
/// The constants are chosen per platform so that a typical fully-connected
/// SNN inference workload lands in the published breakdown bands; they are
/// *relative* models (the paper figure shows percentages, not joules).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformProfile {
    /// Platform name as shown in the figure.
    pub name: String,
    /// Energy per synaptic operation (membrane update on spike delivery).
    pub compute_pj_per_synop: f64,
    /// Energy per spike traversing the on-chip network.
    pub comm_pj_per_spike_hop: f64,
    /// Average network hops per spike.
    pub hops_per_spike: f64,
    /// Energy per byte fetched from (off-chip or on-chip macro) memory.
    pub memory_pj_per_byte: f64,
}

impl PlatformProfile {
    /// TrueNorth-like profile: memory ≈ 52%, visible mesh-communication
    /// share (the chip's long-range spike routing), modest compute.
    pub fn truenorth_like() -> Self {
        Self {
            name: "TrueNorth".into(),
            compute_pj_per_synop: 1.84,
            comm_pj_per_spike_hop: 124.0,
            hops_per_spike: 8.0,
            memory_pj_per_byte: 4.0,
        }
    }

    /// PEASE-like profile: event-driven programmable architecture with the
    /// heaviest memory share (~75%).
    pub fn pease_like() -> Self {
        Self {
            name: "PEASE".into(),
            compute_pj_per_synop: 1.73,
            comm_pj_per_spike_hop: 117.0,
            hops_per_spike: 4.0,
            memory_pj_per_byte: 8.0,
        }
    }

    /// SNNAP-like profile: approximate-computing SNN accelerator; memory
    /// around 60% with a visible compute share.
    pub fn snnap_like() -> Self {
        Self {
            name: "SNNAP".into(),
            compute_pj_per_synop: 2.0,
            comm_pj_per_spike_hop: 200.0,
            hops_per_spike: 3.0,
            memory_pj_per_byte: 5.0,
        }
    }

    /// The three platforms of paper Fig. 1(b), in figure order.
    pub fn paper_platforms() -> Vec<Self> {
        vec![
            Self::truenorth_like(),
            Self::pease_like(),
            Self::snnap_like(),
        ]
    }

    /// Computes the energy breakdown of `workload` on this platform.
    pub fn breakdown(&self, workload: &SnnWorkload) -> PlatformEnergyBreakdown {
        let compute = self.compute_pj_per_synop * workload.synaptic_ops as f64;
        let comm = self.comm_pj_per_spike_hop * self.hops_per_spike * workload.spikes as f64;
        let memory = self.memory_pj_per_byte * workload.memory_bytes as f64;
        PlatformEnergyBreakdown {
            platform: self.name.clone(),
            compute_pj: compute,
            communication_pj: comm,
            memory_pj: memory,
        }
    }
}

/// Abstract description of one SNN inference run, used to weight the
/// per-operation platform constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnnWorkload {
    /// Number of synaptic operations (spike × fan-out).
    pub synaptic_ops: u64,
    /// Number of spikes emitted.
    pub spikes: u64,
    /// Bytes of weight/state traffic to memory.
    pub memory_bytes: u64,
}

impl SnnWorkload {
    /// Workload of one inference pass of a fully-connected SNN with
    /// `inputs × neurons` synapses over `timesteps`, with input spike
    /// probability `input_rate` per timestep.
    ///
    /// Weight traffic counts each synapse's 4-byte FP32 weight once per
    /// inference (streamed from DRAM, as in the paper's system model).
    /// For a packed quantised image use
    /// [`fully_connected_at_width`](Self::fully_connected_at_width).
    pub fn fully_connected(
        inputs: usize,
        neurons: usize,
        timesteps: usize,
        input_rate: f64,
    ) -> Self {
        Self::fully_connected_at_width(inputs, neurons, timesteps, input_rate, 4)
    }

    /// [`fully_connected`](Self::fully_connected) with `weight_bytes`
    /// bytes per stored weight word, so memory traffic counts the actual
    /// image bytes (1 for int8, 2 for int16, 4 for FP32).
    pub fn fully_connected_at_width(
        inputs: usize,
        neurons: usize,
        timesteps: usize,
        input_rate: f64,
        weight_bytes: usize,
    ) -> Self {
        let synapses = (inputs * neurons) as u64;
        let input_spikes = (inputs as f64 * timesteps as f64 * input_rate) as u64;
        Self {
            synaptic_ops: input_spikes * neurons as u64,
            spikes: input_spikes,
            memory_bytes: synapses * weight_bytes as u64,
        }
    }
}

/// Absolute and fractional energy breakdown on a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformEnergyBreakdown {
    /// Platform name.
    pub platform: String,
    /// Neuron/synapse computation energy (pJ).
    pub compute_pj: f64,
    /// Spike communication energy (pJ).
    pub communication_pj: f64,
    /// Memory access energy (pJ).
    pub memory_pj: f64,
}

impl PlatformEnergyBreakdown {
    /// Total energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.communication_pj + self.memory_pj
    }

    /// Memory share of total energy in `[0, 1]`.
    pub fn memory_fraction(&self) -> f64 {
        self.memory_pj / self.total_pj()
    }

    /// Compute share of total energy in `[0, 1]`.
    pub fn compute_fraction(&self) -> f64 {
        self.compute_pj / self.total_pj()
    }

    /// Communication share of total energy in `[0, 1]`.
    pub fn communication_fraction(&self) -> f64 {
        self.communication_pj / self.total_pj()
    }
}

impl std::fmt::Display for PlatformEnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: compute {:.0}% comm {:.0}% memory {:.0}%",
            self.platform,
            self.compute_fraction() * 100.0,
            self.communication_fraction() * 100.0,
            self.memory_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> SnnWorkload {
        SnnWorkload::fully_connected(784, 900, 100, 0.05)
    }

    #[test]
    fn memory_dominates_on_all_paper_platforms() {
        for p in PlatformProfile::paper_platforms() {
            let b = p.breakdown(&workload());
            let frac = b.memory_fraction();
            assert!(
                (0.50..=0.80).contains(&frac),
                "{}: memory fraction {frac} outside the paper's 50-75% band",
                p.name
            );
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = PlatformProfile::truenorth_like().breakdown(&workload());
        let sum = b.compute_fraction() + b.communication_fraction() + b.memory_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn workload_scales_with_network_size() {
        let small = SnnWorkload::fully_connected(784, 100, 100, 0.05);
        let large = SnnWorkload::fully_connected(784, 400, 100, 0.05);
        assert!(large.memory_bytes > small.memory_bytes);
        assert!(large.synaptic_ops > small.synaptic_ops);
    }

    #[test]
    fn workload_memory_traffic_follows_word_width() {
        let f32_w = SnnWorkload::fully_connected(784, 100, 100, 0.05);
        let int8_w = SnnWorkload::fully_connected_at_width(784, 100, 100, 0.05, 1);
        assert_eq!(f32_w.memory_bytes, 4 * int8_w.memory_bytes);
        assert_eq!(f32_w.synaptic_ops, int8_w.synaptic_ops);
        assert_eq!(f32_w.spikes, int8_w.spikes);
    }

    #[test]
    fn display_reports_percentages() {
        let b = PlatformProfile::snnap_like().breakdown(&workload());
        let s = b.to_string();
        assert!(s.contains("SNNAP") && s.contains('%'));
    }
}
