//! Fault-aware training (paper Section IV-B, Algorithm 1).
//!
//! The improved SNN is obtained by training under injected bit errors,
//! raising the BER step by step from the smallest scheduled rate to the
//! largest so the network adapts gradually. After each rate step, accuracy
//! *under that error rate* is measured; the largest rate whose accuracy
//! stays within the user bound of the error-free baseline becomes the
//! candidate `BER_th`, and the corresponding weights become the improved
//! model (Algorithm 1 lines 10–13).

use crate::CoreError;
use sparkxd_data::Dataset;
use sparkxd_error::{ErrorModel, Injector};
use sparkxd_snn::{DiehlCookNetwork, NeuronLabeler};

/// Configuration of the fault-aware training loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Increasing BER schedule (Algorithm 1's `rates`); the paper uses
    /// decade steps, e.g. `1e-9 … 1e-3`.
    pub ber_schedule: Vec<f64>,
    /// Training epochs at each scheduled rate (`N_epoch`).
    pub epochs_per_rate: usize,
    /// Accuracy bound below the error-free baseline (`acc_bound`); the
    /// paper uses 0.01 (1%).
    pub accuracy_bound: f64,
    /// DRAM error model used for injection (the paper uses Model 0).
    pub error_model: ErrorModel,
    /// Seed for error injection.
    pub injection_seed: u64,
    /// Seed for spike-train generation during training/evaluation.
    pub spike_seed: u64,
    /// Evaluation repetitions per rate (averaged; reduces Poisson noise).
    pub eval_trials: usize,
}

impl TrainingConfig {
    /// The paper's decade schedule from 1e-9 to 1e-3 with sensible
    /// defaults for the remaining knobs.
    pub fn paper_default() -> Self {
        Self {
            ber_schedule: vec![1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3],
            epochs_per_rate: 1,
            accuracy_bound: 0.01,
            error_model: ErrorModel::Model0,
            injection_seed: 0x5EED,
            spike_seed: 0x51_4B,
            eval_trials: 1,
        }
    }

    /// A short schedule for tests and demos.
    pub fn quick() -> Self {
        Self {
            ber_schedule: vec![1e-5, 1e-3],
            ..Self::paper_default()
        }
    }
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Result of Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAwareOutcome {
    /// Error-free accuracy of the starting (baseline) model (`model0.acc`).
    pub baseline_accuracy: f64,
    /// Accuracy of the improved model evaluated *without* errors.
    pub improved_clean_accuracy: f64,
    /// `(ber, accuracy-under-that-ber)` pairs, one per scheduled rate.
    pub curve: Vec<(f64, f64)>,
    /// The maximum tolerable BER (`BER_th`), if any rate met the bound.
    pub max_tolerable_ber: Option<f64>,
    /// Neuron labelling of the improved model.
    pub labeler: NeuronLabeler,
}

/// Runs Algorithm 1 against a network in place.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultAwareTrainer {
    config: TrainingConfig,
}

impl FaultAwareTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainingConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Measures accuracy of `net` under uniformly injected errors at
    /// `ber`, averaged over `trials` fresh error patterns. Weights are
    /// restored afterwards.
    ///
    /// Each trial's evaluation is sharded across samples by the parallel
    /// engine; the trials themselves stay sequential because they share
    /// one injector stream. Only one scratch weight copy is allocated for
    /// the whole call — it is corrupted, swapped in, and swapped back out,
    /// with only the plane rows the injection actually touched re-derived
    /// on each swap.
    pub fn accuracy_under_errors(
        &self,
        net: &mut DiehlCookNetwork,
        labeler: &NeuronLabeler,
        test: &Dataset,
        ber: f64,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let mut injector = Injector::new(self.config.error_model, seed);
        let mut total = 0.0;
        let mut scratch = net.weights().clone();
        let mut touched = Vec::new();
        for trial in 0..trials.max(1) {
            scratch
                .as_mut_slice()
                .copy_from_slice(net.weights().as_slice());
            touched.clear();
            injector.inject_uniform_tracked(scratch.as_mut_slice(), ber, &mut touched);
            let rows = scratch.rows_of_words(&touched);
            net.swap_weights_rows(&mut scratch, &rows);
            total += net.evaluate(test, labeler, self.config.spike_seed ^ (trial as u64) << 32);
            net.swap_weights_rows(&mut scratch, &rows);
        }
        total / trials.max(1) as f64
    }

    /// Improves and analyses the error tolerance of `net` (Algorithm 1).
    ///
    /// `net` must already be trained error-free (the baseline `model0`);
    /// on return it holds the improved model (`model1`) — the weights from
    /// the highest scheduled BER whose accuracy met the bound, or from the
    /// last schedule step if none did.
    ///
    /// The rate steps are sequential by construction (each adapts the
    /// weights the next step starts from), but every labelling/evaluation
    /// inside a step runs sample-parallel on the batch engine.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns [`CoreError`] for forward
    /// compatibility with fallible substrates.
    pub fn improve(
        &self,
        net: &mut DiehlCookNetwork,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<FaultAwareOutcome, CoreError> {
        let cfg = &self.config;
        // Baseline (model0) accuracy without errors.
        let labeler0 = net.label_neurons(train, cfg.spike_seed ^ 0xABCD);
        let baseline_accuracy = net.evaluate(test, &labeler0, cfg.spike_seed ^ 0xEF01);
        let target = baseline_accuracy - cfg.accuracy_bound;

        let mut injector = Injector::new(cfg.error_model, cfg.injection_seed);
        let mut curve = Vec::with_capacity(cfg.ber_schedule.len());
        let mut best: Option<(f64, DiehlCookNetwork, NeuronLabeler)> = None;

        for (step, &ber) in cfg.ber_schedule.iter().enumerate() {
            // Algorithm 1 lines 3-4: generate and inject errors into the
            // model, then train with them in place.
            net.with_weights_mut(|w| injector.inject_uniform(w.as_mut_slice(), ber));
            for epoch in 0..cfg.epochs_per_rate {
                net.train_epoch(train, cfg.spike_seed ^ ((step * 31 + epoch) as u64));
            }
            // Lines 8-9: test the adapted model under this error rate.
            let labeler = net.label_neurons(train, cfg.spike_seed ^ 0xABCD);
            let acc = self.accuracy_under_errors(
                net,
                &labeler,
                test,
                ber,
                cfg.eval_trials,
                cfg.injection_seed ^ (step as u64) << 16,
            );
            curve.push((ber, acc));
            // Lines 10-13: keep the highest rate meeting the target.
            if acc >= target {
                best = Some((ber, net.clone(), labeler));
            }
        }

        let (max_tolerable_ber, labeler) = match best {
            Some((ber, model, labeler)) => {
                *net = model;
                (Some(ber), labeler)
            }
            None => (None, net.label_neurons(train, cfg.spike_seed ^ 0xABCD)),
        };
        let improved_clean_accuracy = net.evaluate(test, &labeler, cfg.spike_seed ^ 0xEF01);
        Ok(FaultAwareOutcome {
            baseline_accuracy,
            improved_clean_accuracy,
            curve,
            max_tolerable_ber,
            labeler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_data::{SynthDigits, SyntheticSource};
    use sparkxd_snn::SnnConfig;

    fn trained_net(neurons: usize, train: &Dataset) -> DiehlCookNetwork {
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(neurons).with_timesteps(40));
        net.train_epoch(train, 11);
        net
    }

    #[test]
    fn improve_produces_monotone_schedule_coverage() {
        let train = SynthDigits.generate(60, 1);
        let test = SynthDigits.generate(30, 2);
        let mut net = trained_net(30, &train);
        let trainer = FaultAwareTrainer::new(TrainingConfig::quick());
        let out = trainer.improve(&mut net, &train, &test).unwrap();
        assert_eq!(out.curve.len(), 2);
        assert!(out.curve[0].0 < out.curve[1].0);
        assert!(out.baseline_accuracy >= 0.0 && out.baseline_accuracy <= 1.0);
    }

    #[test]
    fn ber_th_is_from_schedule_when_present() {
        let train = SynthDigits.generate(60, 1);
        let test = SynthDigits.generate(30, 2);
        let mut net = trained_net(30, &train);
        let mut cfg = TrainingConfig::quick();
        // A generous bound guarantees at least the first rate passes.
        cfg.accuracy_bound = 1.0;
        let trainer = FaultAwareTrainer::new(cfg.clone());
        let out = trainer.improve(&mut net, &train, &test).unwrap();
        let ber = out.max_tolerable_ber.expect("bound of 1.0 always met");
        assert!(cfg.ber_schedule.contains(&ber));
        // With the full bound, the last (largest) rate wins.
        assert_eq!(ber, *cfg.ber_schedule.last().unwrap());
    }

    #[test]
    fn impossible_bound_yields_none() {
        let train = SynthDigits.generate(60, 1);
        let test = SynthDigits.generate(30, 2);
        let mut net = trained_net(30, &train);
        let mut cfg = TrainingConfig::quick();
        cfg.accuracy_bound = -2.0; // accuracy can never exceed baseline + 2
        let trainer = FaultAwareTrainer::new(cfg);
        let out = trainer.improve(&mut net, &train, &test).unwrap();
        assert_eq!(out.max_tolerable_ber, None);
    }

    #[test]
    fn accuracy_under_errors_restores_weights() {
        let train = SynthDigits.generate(40, 1);
        let test = SynthDigits.generate(20, 2);
        let mut net = trained_net(20, &train);
        let labeler = net.label_neurons(&train, 3);
        let before = net.weights().clone();
        let trainer = FaultAwareTrainer::new(TrainingConfig::quick());
        let _ = trainer.accuracy_under_errors(&mut net, &labeler, &test, 1e-3, 2, 5);
        assert_eq!(net.weights(), &before);
    }

    #[test]
    fn training_under_errors_is_deterministic() {
        let train = SynthDigits.generate(40, 1);
        let test = SynthDigits.generate(20, 2);
        let run = || {
            let mut net = trained_net(20, &train);
            let trainer = FaultAwareTrainer::new(TrainingConfig::quick());
            let out = trainer.improve(&mut net, &train, &test).unwrap();
            (out.curve.clone(), net.weights().as_slice().to_vec())
        };
        assert_eq!(run(), run());
    }
}
