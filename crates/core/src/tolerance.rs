//! Error-tolerance analysis (paper Section IV-C, Fig. 8).
//!
//! A linear search over BER values, valid because the SNN error-tolerance
//! curve is generally decreasing in BER: the largest rate whose accuracy
//! meets the target is the maximum tolerable BER (`BER_th`) used to drive
//! the DRAM mapping.

use sparkxd_data::Dataset;
use sparkxd_error::{ErrorModel, Injector};
use sparkxd_snn::{DiehlCookNetwork, NeuronLabeler, QuantizedImage, WeightPrecision};

/// An accuracy-versus-BER curve for one model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ToleranceCurve {
    points: Vec<(f64, f64)>,
}

impl ToleranceCurve {
    /// Builds a curve from `(ber, accuracy)` pairs sorted by BER.
    pub fn from_points(mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite BER"));
        Self { points }
    }

    /// The `(ber, accuracy)` pairs in ascending BER order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Linear search (paper Sec. IV-C): the largest BER whose accuracy is
    /// at least `target_accuracy`. `None` if no point qualifies.
    pub fn max_tolerable_ber(&self, target_accuracy: f64) -> Option<f64> {
        self.points
            .iter()
            .rev()
            .find(|(_, acc)| *acc >= target_accuracy)
            .map(|(ber, _)| *ber)
    }

    /// Accuracy at the given BER, if it was measured.
    pub fn accuracy_at(&self, ber: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(b, _)| (b / ber - 1.0).abs() < 1e-9 || b == &ber)
            .map(|(_, a)| *a)
    }

    /// Whether the curve is non-increasing (allowing `slack` of evaluation
    /// noise) — the property that justifies the linear search.
    pub fn is_generally_decreasing(&self, slack: f64) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + slack)
    }
}

/// Measures the tolerance curve of `net` (with frozen weights) across
/// `bers`, injecting `trials` fresh error patterns per rate and averaging.
/// Weights are restored before returning.
///
/// Error patterns are generated sequentially (each BER point owns a
/// deterministic injector stream), but every evaluation under a pattern is
/// sharded across samples by the parallel batch engine, so the sweep's
/// wall time scales with the worker count while its result stays
/// bit-identical to a serial run.
pub fn analyze_tolerance(
    net: &mut DiehlCookNetwork,
    labeler: &NeuronLabeler,
    test: &Dataset,
    bers: &[f64],
    model: ErrorModel,
    trials: usize,
    seed: u64,
) -> ToleranceCurve {
    let mut points = Vec::with_capacity(bers.len());
    let mut scratch = net.weights().clone();
    let mut touched = Vec::new();
    for (k, &ber) in bers.iter().enumerate() {
        let mut injector = Injector::new(model, seed ^ (k as u64) << 8);
        let mut total = 0.0;
        for trial in 0..trials.max(1) {
            scratch
                .as_mut_slice()
                .copy_from_slice(net.weights().as_slice());
            touched.clear();
            injector.inject_uniform_tracked(scratch.as_mut_slice(), ber, &mut touched);
            // Corrupt-and-swap: only the rows the flips touched need their
            // effective-plane entries re-derived, in both directions.
            let rows = scratch.rows_of_words(&touched);
            net.swap_weights_rows(&mut scratch, &rows);
            total += net.evaluate(test, labeler, seed ^ 0xACC ^ ((trial as u64) << 24));
            net.swap_weights_rows(&mut scratch, &rows);
        }
        points.push((ber, total / trials.max(1) as f64));
    }
    ToleranceCurve::from_points(points)
}

/// [`analyze_tolerance`] for a packed quantised DRAM image: each trial
/// quantises the frozen weights to `precision`, flips bits in the packed
/// codes at the native word width (8/16-bit words see proportionally fewer
/// flips per weight than a 32-bit image at the same BER), and evaluates
/// the dequantised result. Weights are restored before returning.
///
/// The same `seed` derivations as the FP32 sweep are used per BER point
/// and trial, so a curve pair at both precisions differs only in the
/// injection substrate, not the error-pattern stream.
#[allow(clippy::too_many_arguments)] // mirrors `analyze_tolerance` + precision
pub fn analyze_tolerance_quantized(
    net: &mut DiehlCookNetwork,
    labeler: &NeuronLabeler,
    test: &Dataset,
    bers: &[f64],
    model: ErrorModel,
    trials: usize,
    seed: u64,
    precision: WeightPrecision,
) -> ToleranceCurve {
    let clean = net.weights().clone();
    let clean_image = QuantizedImage::quantize(&clean, precision);
    let word_bits = clean_image.word_bits();
    let mut points = Vec::with_capacity(bers.len());
    for (k, &ber) in bers.iter().enumerate() {
        let mut injector = Injector::new(model, seed ^ (k as u64) << 8);
        let mut total = 0.0;
        for trial in 0..trials.max(1) {
            let mut image = clean_image.clone();
            injector.inject_uniform_packed(image.payload_mut(), word_bits, ber);
            // Even the clean dequantised weights differ from the FP32
            // store in every row, so this path swaps full images rather
            // than touched rows.
            net.set_weights(image.dequantize());
            total += net.evaluate(test, labeler, seed ^ 0xACC ^ ((trial as u64) << 24));
        }
        points.push((ber, total / trials.max(1) as f64));
    }
    net.set_weights(clean);
    ToleranceCurve::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_data::{SynthDigits, SyntheticSource};
    use sparkxd_snn::SnnConfig;

    #[test]
    fn linear_search_finds_largest_qualifying_ber() {
        let c = ToleranceCurve::from_points(vec![
            (1e-9, 0.90),
            (1e-7, 0.89),
            (1e-5, 0.88),
            (1e-3, 0.70),
        ]);
        assert_eq!(c.max_tolerable_ber(0.875), Some(1e-5));
        assert_eq!(c.max_tolerable_ber(0.895), Some(1e-9));
        assert_eq!(c.max_tolerable_ber(0.95), None);
        assert_eq!(c.max_tolerable_ber(0.5), Some(1e-3));
    }

    #[test]
    fn points_are_sorted_on_construction() {
        let c = ToleranceCurve::from_points(vec![(1e-3, 0.7), (1e-9, 0.9)]);
        assert_eq!(c.points()[0].0, 1e-9);
    }

    #[test]
    fn generally_decreasing_check() {
        let down = ToleranceCurve::from_points(vec![(1e-9, 0.9), (1e-5, 0.85), (1e-3, 0.5)]);
        assert!(down.is_generally_decreasing(0.0));
        let bumpy = ToleranceCurve::from_points(vec![(1e-9, 0.9), (1e-5, 0.91), (1e-3, 0.5)]);
        assert!(bumpy.is_generally_decreasing(0.02));
        assert!(!bumpy.is_generally_decreasing(0.0));
    }

    #[test]
    fn accuracy_at_finds_measured_points() {
        let c = ToleranceCurve::from_points(vec![(1e-5, 0.88)]);
        assert_eq!(c.accuracy_at(1e-5), Some(0.88));
        assert_eq!(c.accuracy_at(1e-4), None);
    }

    #[test]
    fn quantized_analysis_restores_weights_and_tracks_fp32_shape() {
        let train = SynthDigits.generate(80, 1);
        let test = SynthDigits.generate(40, 2);
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(30).with_timesteps(40));
        net.train_epoch(&train, 5);
        let labeler = net.label_neurons(&train, 6);
        let before = net.weights().clone();
        let curve = analyze_tolerance_quantized(
            &mut net,
            &labeler,
            &test,
            &[1e-7, 5e-2],
            ErrorModel::Model0,
            2,
            99,
            WeightPrecision::Int8,
        );
        assert_eq!(net.weights(), &before, "weights restored");
        assert_eq!(curve.points().len(), 2);
        let (lo, hi) = (curve.points()[0].1, curve.points()[1].1);
        assert!(hi <= lo + 0.05, "accuracy at 5e-2 ({hi}) vs 1e-7 ({lo})");
        // Near-zero BER leaves the image effectively clean, so the int8
        // curve's first point must stay within quantisation distance of
        // the FP32 model's own near-clean accuracy.
        let fp32 = analyze_tolerance(
            &mut net,
            &labeler,
            &test,
            &[1e-7],
            ErrorModel::Model0,
            2,
            99,
        );
        assert!((lo - fp32.points()[0].1).abs() <= 0.1);
    }

    #[test]
    fn analysis_restores_weights_and_measures_degradation() {
        let train = SynthDigits.generate(80, 1);
        let test = SynthDigits.generate(40, 2);
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(30).with_timesteps(40));
        net.train_epoch(&train, 5);
        let labeler = net.label_neurons(&train, 6);
        let before = net.weights().clone();
        let curve = analyze_tolerance(
            &mut net,
            &labeler,
            &test,
            &[1e-7, 5e-2],
            ErrorModel::Model0,
            2,
            99,
        );
        assert_eq!(net.weights(), &before, "weights restored");
        assert_eq!(curve.points().len(), 2);
        // Extreme corruption must cost accuracy relative to near-zero BER.
        let (lo, hi) = (curve.points()[0].1, curve.points()[1].1);
        assert!(hi <= lo + 0.05, "accuracy at 5e-2 ({hi}) vs 1e-7 ({lo})");
    }
}
