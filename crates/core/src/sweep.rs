//! Multi-device sweeps: accuracy/energy *distributions* instead of
//! single-instance numbers.
//!
//! Weak-cell maps are per-device (process variation), so any figure
//! measured on one `device_seed` is one draw from a distribution. A
//! [`DeviceSweep`] runs the full pipeline over a set of device seeds —
//! sharded across scoped worker threads, one pipeline per device — and
//! reports mean ± 95% CI for the headline metrics, the EnforceSNN-style
//! evaluation the ROADMAP calls for.

use crate::pipeline::{PipelineConfig, PipelineOutcome, SparkXdPipeline};
use crate::CoreError;
use sparkxd_snn::engine::{parallel_map, worker_count};
use std::ops::Range;

/// Summary statistics of one metric across the sweep's devices.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStat {
    /// Devices contributing.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`1.96 · σ / √n`; 0 for n < 2).
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl SweepStat {
    /// Computes the statistics of `samples` (all-zero stat when empty).
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * std_dev / (n as f64).sqrt()
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Self {
            n,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }

    /// Lower edge of the 95% confidence interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper edge of the 95% confidence interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }
}

impl std::fmt::Display for SweepStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.ci95, self.n)
    }
}

/// Everything a sweep produces: per-device outcomes plus cross-device
/// statistics of the headline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSweepReport {
    /// `(device_seed, outcome)` for every device that completed.
    pub outcomes: Vec<(u64, PipelineOutcome)>,
    /// Devices whose pipeline failed (e.g. too few safe subarrays), with
    /// the error.
    pub failures: Vec<(u64, CoreError)>,
    /// Accuracy with errors injected through the actual mapping.
    pub accuracy_at_operating_point: SweepStat,
    /// Error-free accuracy of the improved model.
    pub improved_clean_accuracy: SweepStat,
    /// DRAM energy saving fraction vs the accurate baseline.
    pub energy_saving: SweepStat,
    /// Throughput speed-up vs the accurate baseline.
    pub speedup: SweepStat,
    /// Operating voltage (V) each device settled at.
    pub operating_voltage: SweepStat,
}

impl DeviceSweepReport {
    fn from_runs(runs: Vec<(u64, Result<PipelineOutcome, CoreError>)>) -> Self {
        let mut outcomes = Vec::new();
        let mut failures = Vec::new();
        for (seed, run) in runs {
            match run {
                Ok(outcome) => outcomes.push((seed, outcome)),
                Err(e) => failures.push((seed, e)),
            }
        }
        let metric = |f: &dyn Fn(&PipelineOutcome) -> f64| {
            SweepStat::from_samples(&outcomes.iter().map(|(_, o)| f(o)).collect::<Vec<_>>())
        };
        Self {
            accuracy_at_operating_point: metric(&|o| o.accuracy_at_operating_point),
            improved_clean_accuracy: metric(&|o| o.improved_clean_accuracy),
            energy_saving: metric(&|o| o.energy.saving_fraction_vs_baseline()),
            speedup: metric(&|o| o.energy.speedup()),
            operating_voltage: metric(&|o| o.operating_voltage.0),
            outcomes,
            failures,
        }
    }
}

/// Runs the pipeline over a range of device seeds (same workload, distinct
/// physical device instances), in parallel across devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSweep {
    base: PipelineConfig,
    seeds: Vec<u64>,
}

impl DeviceSweep {
    /// A sweep of `base` over explicit device seeds. Only `device_seed`
    /// varies between runs — dataset and training seeds stay at the base
    /// configuration's values, so the sweep isolates device variation.
    pub fn new(base: PipelineConfig, seeds: Vec<u64>) -> Self {
        Self { base, seeds }
    }

    /// A sweep over the contiguous seed range `seeds`.
    pub fn over_seed_range(base: PipelineConfig, seeds: Range<u64>) -> Self {
        Self::new(base, seeds.collect())
    }

    /// The device seeds this sweep covers.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The base configuration every device run derives from.
    pub fn base(&self) -> &PipelineConfig {
        &self.base
    }

    /// Runs one pipeline per device seed on the worker pool and gathers
    /// the distribution report. Device order in the report follows the
    /// seed order regardless of scheduling.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptySweep`] when no seeds were given; the first
    /// device failure when *every* device failed. Partial failures are
    /// reported in [`DeviceSweepReport::failures`].
    pub fn run(&self) -> Result<DeviceSweepReport, CoreError> {
        if self.seeds.is_empty() {
            return Err(CoreError::EmptySweep);
        }
        let runs = parallel_map(
            &self.seeds,
            worker_count(self.seeds.len()),
            |_, &device_seed| {
                let config = PipelineConfig {
                    device_seed,
                    ..self.base.clone()
                };
                (device_seed, SparkXdPipeline::new(config).run())
            },
        );
        let report = DeviceSweepReport::from_runs(runs);
        if report.outcomes.is_empty() {
            let (_, first_error) = report
                .failures
                .into_iter()
                .next()
                .expect("no outcomes and no failures is impossible for a non-empty sweep");
            return Err(first_error);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base(seed: u64) -> PipelineConfig {
        PipelineConfig {
            neurons: 20,
            timesteps: 20,
            train_samples: 40,
            test_samples: 20,
            baseline_epochs: 1,
            ..PipelineConfig::small_demo(seed)
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = SweepStat::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert!((s.ci95 - 1.96 / 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.hi() - s.lo() - 2.0 * s.ci95).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = SweepStat::from_samples(&[0.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.mean, 0.5);
    }

    #[test]
    fn empty_sweep_is_an_error() {
        // A dedicated error, not a degenerate all-zero report — regression
        // guard for both constructors plus the error's message.
        let sweep = DeviceSweep::new(tiny_base(1), vec![]);
        assert!(matches!(sweep.run(), Err(CoreError::EmptySweep)));
        let empty_range = DeviceSweep::over_seed_range(tiny_base(1), 7..7);
        let err = empty_range.run().expect_err("empty seed range must error");
        assert_eq!(err, CoreError::EmptySweep);
        assert!(err.to_string().contains("at least one device seed"));
    }

    #[test]
    fn sweep_covers_every_device_and_is_deterministic() {
        let sweep = DeviceSweep::over_seed_range(tiny_base(1), 10..12);
        let a = sweep.run().expect("tiny sweep");
        assert_eq!(a.outcomes.len() + a.failures.len(), 2);
        assert_eq!(sweep.seeds(), &[10, 11]);
        let stat = &a.accuracy_at_operating_point;
        assert!(stat.n >= 1);
        assert!((0.0..=1.0).contains(&stat.mean));
        assert!(stat.min <= stat.mean && stat.mean <= stat.max);
        let b = sweep.run().expect("tiny sweep rerun");
        assert_eq!(a, b, "sweep must be deterministic");
    }

    #[test]
    fn sweep_varies_only_the_device_seed() {
        let base = tiny_base(3);
        let sweep = DeviceSweep::over_seed_range(base.clone(), 5..6);
        let report = sweep.run().expect("single-device sweep");
        let (seed, _) = report.outcomes[0];
        assert_eq!(seed, 5);
        // The equivalent single pipeline run must agree exactly.
        let direct = SparkXdPipeline::new(PipelineConfig {
            device_seed: 5,
            ..base
        })
        .run()
        .expect("direct run");
        assert_eq!(report.outcomes[0].1, direct);
    }
}
