//! The end-to-end SparkXD pipeline (paper Fig. 7 / Fig. 10 tool flow).
//!
//! Inputs: an SNN configuration, a dataset, a reduced DRAM supply voltage
//! and an accuracy target. Outputs: the improved (fault-aware-trained)
//! model, its maximum tolerable BER, the error-aware DRAM mapping, and the
//! energy/throughput comparison against the accurate-DRAM baseline.

use crate::energy_eval::{EnergyComparison, EnergyEvaluation};
use crate::mapping::{BaselineMapping, Mapping, MappingPolicy, SparkXdMapping};
use crate::trace_gen::columns_for_network;
use crate::training::{FaultAwareTrainer, TrainingConfig};
use crate::CoreError;
use sparkxd_circuit::Volt;
use sparkxd_data::{Dataset, SynthDigits, SynthFashion, SyntheticSource};
use sparkxd_dram::DramConfig;
use sparkxd_error::{BerCurve, Injector, WeakCellMap};
use sparkxd_snn::{DiehlCookNetwork, QuantizedImage, SnnConfig, WeightPrecision};

/// Which synthetic dataset to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DatasetKind {
    /// MNIST substitute.
    #[default]
    Digits,
    /// Fashion-MNIST substitute (harder).
    Fashion,
}

impl DatasetKind {
    /// Generates `n` samples with this kind's generator.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::Digits => SynthDigits.generate(n, seed),
            DatasetKind::Fashion => SynthFashion.generate(n, seed),
        }
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Digits => "digits",
            DatasetKind::Fashion => "fashion",
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Dataset to train/evaluate on.
    pub dataset: DatasetKind,
    /// Excitatory neuron count.
    pub neurons: usize,
    /// Presentation window per sample (timesteps at 1 ms).
    pub timesteps: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Test-set size.
    pub test_samples: usize,
    /// Error-free training epochs for the baseline model (`model0`).
    pub baseline_epochs: usize,
    /// Algorithm 1 configuration.
    pub training: TrainingConfig,
    /// Reduced DRAM supply voltage to operate at.
    pub v_supply: Volt,
    /// BER-vs-voltage curve of the device family.
    pub ber_curve: BerCurve,
    /// Seed identifying the physical device instance (weak-cell map).
    pub device_seed: u64,
    /// Seed for dataset generation.
    pub data_seed: u64,
    /// Storage precision of the DRAM weight image. FP32 streams the raw
    /// image; int8/int16 map, trace and inject a packed quantised image
    /// (4×/2× fewer columns) and dequantise at plane-build time.
    pub precision: WeightPrecision,
}

impl PipelineConfig {
    /// A configuration small enough for demos and integration tests
    /// (≈ seconds of CPU), exercising every pipeline stage.
    pub fn small_demo(seed: u64) -> Self {
        Self {
            dataset: DatasetKind::Digits,
            neurons: 40,
            timesteps: 40,
            train_samples: 120,
            test_samples: 60,
            baseline_epochs: 2,
            training: TrainingConfig {
                ber_schedule: vec![1e-5, 1e-3],
                epochs_per_rate: 1,
                ..TrainingConfig::paper_default()
            },
            v_supply: Volt(1.025),
            ber_curve: BerCurve::paper_default(),
            device_seed: seed,
            data_seed: seed ^ 0xDA7A,
            precision: WeightPrecision::Fp32,
        }
    }

    /// A paper-style configuration for `neurons` (N400…N3600), scaled to
    /// CPU budgets: 600 train / 200 test samples, 3 baseline epochs and the
    /// full decade BER schedule.
    pub fn paper_network(neurons: usize, dataset: DatasetKind, seed: u64) -> Self {
        Self {
            dataset,
            neurons,
            timesteps: 100,
            train_samples: 600,
            test_samples: 200,
            baseline_epochs: 3,
            training: TrainingConfig::paper_default(),
            v_supply: Volt(1.025),
            ber_curve: BerCurve::paper_default(),
            device_seed: seed,
            data_seed: seed ^ 0xDA7A,
            precision: WeightPrecision::Fp32,
        }
    }

    /// Selects the DRAM storage precision of the weight image.
    pub fn with_precision(mut self, precision: WeightPrecision) -> Self {
        self.precision = precision;
        self
    }
}

/// Summary of the DRAM mapping chosen for the improved model.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSummary {
    /// Policy name.
    pub policy: &'static str,
    /// Columns mapped.
    pub columns: usize,
    /// Distinct subarrays used.
    pub subarrays_used: usize,
    /// Fraction of the device's subarrays that met the BER threshold.
    pub safe_fraction: f64,
    /// Bits per stored weight word (32 for FP32, 8/16 for packed images).
    pub word_bits: u32,
}

/// Everything the pipeline produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Error-free accuracy of the baseline model.
    pub baseline_accuracy: f64,
    /// Error-free accuracy of the improved model.
    pub improved_clean_accuracy: f64,
    /// Accuracy of the improved model with errors injected through the
    /// actual mapping at the operating voltage's per-subarray rates.
    pub accuracy_at_operating_point: f64,
    /// Maximum tolerable BER found by Algorithm 1 (`BER_th`).
    pub max_tolerable_ber: f64,
    /// Whether `BER_th` met the accuracy bound (false = fell back to the
    /// smallest scheduled rate).
    pub target_met: bool,
    /// Actual operating voltage (the requested voltage, raised if its
    /// error rate exceeded the model's tolerance).
    pub operating_voltage: Volt,
    /// Device-level BER at the operating voltage.
    pub operating_ber: f64,
    /// Accuracy-vs-BER curve gathered during Algorithm 1.
    pub tolerance_curve: Vec<(f64, f64)>,
    /// Energy/throughput comparison vs the accurate baseline.
    pub energy: EnergyComparison,
    /// Mapping summary.
    pub mapping: MappingSummary,
}

/// Orchestrates the full SparkXD flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkXdPipeline {
    config: PipelineConfig,
}

impl SparkXdPipeline {
    /// Creates a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs every stage and returns the combined outcome.
    ///
    /// The flow is a fixed sequence of named stages, each feeding the
    /// parallel execution engine where its work is sample-parallel:
    ///
    /// 1. [`stage_data`](Self::stage_data) — dataset generation;
    /// 2. [`stage_baseline_model`](Self::stage_baseline_model) — error-free
    ///    training of `model0` (sequential STDP);
    /// 3. [`stage_fault_aware_training`](Self::stage_fault_aware_training)
    ///    — Algorithm 1 (evaluations sample-parallel);
    /// 4. [`stage_operating_point`](Self::stage_operating_point) — device
    ///    error profile at the (possibly raised) operating voltage;
    /// 5. [`stage_mapping`](Self::stage_mapping) — baseline vs SparkXD
    ///    DRAM mappings;
    /// 6. [`stage_operating_accuracy`](Self::stage_operating_accuracy) —
    ///    mapped-error injection + parallel evaluation;
    /// 7. [`stage_energy`](Self::stage_energy) — energy/throughput
    ///    comparison.
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientSafeCapacity`] if the device's safe
    /// subarrays cannot hold the model at the operating voltage, and any
    /// error propagated from the substrates.
    pub fn run(&self) -> Result<PipelineOutcome, CoreError> {
        // Observation-only spans: one per named stage, so a `spans`-mode
        // run shows where pipeline wall time goes. Durations never feed
        // back into any stage decision (the bit-identity contract).
        let data = {
            let _span = sparkxd_telemetry::span!("pipeline.data");
            self.stage_data()
        };
        let mut net = {
            let _span = sparkxd_telemetry::span!("pipeline.baseline_model");
            self.stage_baseline_model(&data)
        };
        let tolerance = {
            let _span = sparkxd_telemetry::span!("pipeline.fault_aware_training");
            self.stage_fault_aware_training(&mut net, &data)?
        };
        let op = {
            let _span = sparkxd_telemetry::span!("pipeline.operating_point");
            self.stage_operating_point(tolerance.ber_th)?
        };
        let maps = {
            let _span = sparkxd_telemetry::span!("pipeline.mapping");
            self.stage_mapping(&data.snn_config, &op, tolerance.ber_th)?
        };
        let accuracy_at_operating_point = {
            let _span = sparkxd_telemetry::span!("pipeline.operating_accuracy");
            self.stage_operating_accuracy(&mut net, &tolerance, &data, &op, &maps)?
        };
        let energy = {
            let _span = sparkxd_telemetry::span!("pipeline.energy");
            self.stage_energy(&op, &maps)
        };

        let mapping = MappingSummary {
            policy: maps.spark_mapping.policy(),
            columns: maps.spark_mapping.len(),
            subarrays_used: maps.spark_mapping.subarrays_used().len(),
            safe_fraction: op.profile.safe_fraction(tolerance.ber_th),
            word_bits: maps.spark_mapping.precision().word_bits(),
        };

        Ok(PipelineOutcome {
            baseline_accuracy: tolerance.outcome.baseline_accuracy,
            improved_clean_accuracy: tolerance.outcome.improved_clean_accuracy,
            accuracy_at_operating_point,
            max_tolerable_ber: tolerance.ber_th,
            target_met: tolerance.target_met,
            operating_voltage: op.v_op,
            operating_ber: op.operating_ber,
            tolerance_curve: tolerance.outcome.curve,
            energy,
            mapping,
        })
    }

    /// Stage 1: train/test dataset generation and the SNN configuration.
    fn stage_data(&self) -> DataStage {
        let cfg = &self.config;
        DataStage {
            train: cfg.dataset.generate(cfg.train_samples, cfg.data_seed),
            test: cfg
                .dataset
                .generate(cfg.test_samples, cfg.data_seed ^ 0x7E57),
            snn_config: SnnConfig::for_neurons(cfg.neurons)
                .with_timesteps(cfg.timesteps)
                .with_weight_seed(cfg.device_seed ^ 0x11),
        }
    }

    /// Stage 2: error-free training of the baseline model (`model0`).
    fn stage_baseline_model(&self, data: &DataStage) -> DiehlCookNetwork {
        let cfg = &self.config;
        let mut net = DiehlCookNetwork::new(data.snn_config.clone());
        for epoch in 0..cfg.baseline_epochs {
            net.train_epoch(&data.train, cfg.training.spike_seed ^ (epoch as u64));
        }
        net
    }

    /// Stage 3: fault-aware training + tolerance analysis (Algorithm 1);
    /// `net` holds the improved model on return.
    fn stage_fault_aware_training(
        &self,
        net: &mut DiehlCookNetwork,
        data: &DataStage,
    ) -> Result<ToleranceStage, CoreError> {
        let cfg = &self.config;
        let trainer = FaultAwareTrainer::new(cfg.training.clone());
        let outcome = trainer.improve(net, &data.train, &data.test)?;
        let (ber_th, target_met) = match outcome.max_tolerable_ber {
            Some(b) => (b, true),
            None => (
                cfg.training
                    .ber_schedule
                    .first()
                    .copied()
                    .ok_or(CoreError::NoToleratedBer)?,
                false,
            ),
        };
        Ok(ToleranceStage {
            outcome,
            ber_th,
            target_met,
        })
    }

    /// Stage 4: device error profile at the operating voltage. If the
    /// requested voltage is more error-prone than the model tolerates (its
    /// median subarray would exceed `BER_th`), the operating voltage is
    /// raised to the lowest one whose device-level BER fits — the
    /// framework's deployment rule: energy is minimised subject to the
    /// accuracy constraint.
    fn stage_operating_point(&self, ber_th: f64) -> Result<OperatingPointStage, CoreError> {
        let cfg = &self.config;
        let mut v_op = cfg.v_supply;
        let mut operating_ber = cfg.ber_curve.ber_at(v_op);
        if operating_ber > ber_th {
            v_op = cfg.ber_curve.voltage_for_ber(ber_th);
            operating_ber = cfg.ber_curve.ber_at(v_op);
        }
        let approx_config = DramConfig::approximate(v_op)?;
        let weak_cells = WeakCellMap::generate(&approx_config.geometry, cfg.device_seed);
        let profile = weak_cells.profile(operating_ber);
        Ok(OperatingPointStage {
            v_op,
            operating_ber,
            approx_config,
            profile,
        })
    }

    /// Stage 5: baseline (accurate DRAM) vs SparkXD (approximate) mappings.
    fn stage_mapping(
        &self,
        snn_config: &SnnConfig,
        op: &OperatingPointStage,
        ber_th: f64,
    ) -> Result<MappingStage, CoreError> {
        let precision = self.config.precision;
        let geometry = op.approx_config.geometry;
        let n_columns = columns_for_network(snn_config, geometry.col_bytes, precision);
        let baseline_config = DramConfig::lpddr3_1600_4gb();
        // The reference system stays the paper's accurate-DRAM FP32
        // baseline, so a quantised run's energy comparison captures the
        // combined voltage × traffic effect.
        let baseline_columns = columns_for_network(
            snn_config,
            baseline_config.geometry.col_bytes,
            WeightPrecision::Fp32,
        );
        let baseline_mapping = BaselineMapping.map(
            baseline_columns,
            &baseline_config.geometry,
            &op.profile,
            f64::MAX,
        )?;
        let spark_mapping = SparkXdMapping
            .map(n_columns, &geometry, &op.profile, ber_th)?
            .with_precision(precision);
        Ok(MappingStage {
            baseline_config,
            baseline_mapping,
            spark_mapping,
        })
    }

    /// Stage 6: accuracy at the operating point — inject through the
    /// actual mapping and per-subarray rates, then evaluate in parallel.
    fn stage_operating_accuracy(
        &self,
        net: &mut DiehlCookNetwork,
        tolerance: &ToleranceStage,
        data: &DataStage,
        op: &OperatingPointStage,
        maps: &MappingStage,
    ) -> Result<f64, CoreError> {
        self.accuracy_with_mapping(
            net,
            &tolerance.outcome.labeler,
            &data.test,
            &maps.spark_mapping,
            &op.profile,
        )
    }

    /// Stage 7: energy/throughput comparison against the accurate
    /// baseline.
    fn stage_energy(&self, op: &OperatingPointStage, maps: &MappingStage) -> EnergyComparison {
        EnergyComparison {
            baseline: EnergyEvaluation::evaluate(&maps.baseline_config, &maps.baseline_mapping),
            improved: EnergyEvaluation::evaluate(&op.approx_config, &maps.spark_mapping),
        }
    }

    fn accuracy_with_mapping(
        &self,
        net: &mut DiehlCookNetwork,
        labeler: &sparkxd_snn::NeuronLabeler,
        test: &Dataset,
        mapping: &Mapping,
        profile: &sparkxd_error::ErrorProfile,
    ) -> Result<f64, CoreError> {
        let cfg = &self.config;
        if cfg.precision.is_quantized() {
            return self.accuracy_with_quantized_mapping(net, labeler, test, mapping, profile);
        }
        let placements = mapping.placements(net.weights().len());
        let mut injector = Injector::new(cfg.training.error_model, cfg.device_seed ^ 0x0B5E);
        // Corrupt a single copy and swap it in; the clean weights ride in
        // the scratch until the swap back, and only the plane rows the
        // injection touched are re-derived on each swap.
        let mut scratch = net.weights().clone();
        let mut touched = Vec::new();
        injector.inject_with_placements_tracked(
            scratch.as_mut_slice(),
            &placements,
            profile,
            &mut touched,
        )?;
        let rows = scratch.rows_of_words(&touched);
        net.swap_weights_rows(&mut scratch, &rows);
        let acc = net.evaluate(test, labeler, cfg.training.spike_seed ^ 0x0ACC);
        net.swap_weights_rows(&mut scratch, &rows);
        Ok(acc)
    }

    /// Quantised variant of `accuracy_with_mapping`: the DRAM image is the
    /// packed code payload, so injection flips codes at the native word
    /// width through the (precision-aware) placements, and the corrupted
    /// image dequantises into the network for evaluation. Even the clean
    /// quantised weights differ from the FP32 store in every row, so this
    /// path swaps full images rather than touched rows.
    fn accuracy_with_quantized_mapping(
        &self,
        net: &mut DiehlCookNetwork,
        labeler: &sparkxd_snn::NeuronLabeler,
        test: &Dataset,
        mapping: &Mapping,
        profile: &sparkxd_error::ErrorProfile,
    ) -> Result<f64, CoreError> {
        let cfg = &self.config;
        let mut image = QuantizedImage::quantize(net.weights(), cfg.precision);
        let placements = mapping.placements(image.words());
        let mut injector = Injector::new(cfg.training.error_model, cfg.device_seed ^ 0x0B5E);
        let word_bits = image.word_bits();
        injector.inject_packed_with_placements(
            image.payload_mut(),
            word_bits,
            &placements,
            profile,
        )?;
        let clean = net.weights().clone();
        net.set_weights(image.dequantize());
        let acc = net.evaluate(test, labeler, cfg.training.spike_seed ^ 0x0ACC);
        net.set_weights(clean);
        Ok(acc)
    }
}

/// Stage 1 product: datasets and the network shape they are presented to.
struct DataStage {
    train: Dataset,
    test: Dataset,
    snn_config: SnnConfig,
}

/// Stage 3 product: Algorithm 1's outcome plus the resolved `BER_th`.
struct ToleranceStage {
    outcome: crate::training::FaultAwareOutcome,
    ber_th: f64,
    target_met: bool,
}

/// Stage 4 product: the deployment operating point of this device.
struct OperatingPointStage {
    v_op: Volt,
    operating_ber: f64,
    approx_config: DramConfig,
    profile: sparkxd_error::ErrorProfile,
}

/// Stage 5 product: both DRAM mappings and the baseline device config.
struct MappingStage {
    baseline_config: DramConfig,
    baseline_mapping: Mapping,
    spark_mapping: Mapping,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_demo_pipeline_runs_end_to_end() {
        let outcome = SparkXdPipeline::new(PipelineConfig::small_demo(7))
            .run()
            .expect("pipeline must complete");
        // Energy: the paper's ~40% saving band at 1.025 V.
        let saving = outcome.energy.saving_fraction_vs_baseline();
        assert!(
            (0.25..0.50).contains(&saving),
            "energy saving {saving} out of band"
        );
        // Throughput maintained (paper: ~1.02x).
        assert!(outcome.energy.speedup() > 0.9);
        // Tolerance curve covers the schedule.
        assert_eq!(outcome.tolerance_curve.len(), 2);
        // Mapping uses only safe subarrays and holds the whole image.
        assert_eq!(outcome.mapping.policy, "sparkxd");
        assert!(outcome.mapping.columns > 0);
        assert!(outcome.mapping.safe_fraction > 0.0);
        // Accuracies are probabilities.
        for acc in [
            outcome.baseline_accuracy,
            outcome.improved_clean_accuracy,
            outcome.accuracy_at_operating_point,
        ] {
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = SparkXdPipeline::new(PipelineConfig::small_demo(3))
            .run()
            .unwrap();
        let b = SparkXdPipeline::new(PipelineConfig::small_demo(3))
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_pipeline_maps_quarter_columns_and_saves_energy() {
        let f32_outcome = SparkXdPipeline::new(PipelineConfig::small_demo(7))
            .run()
            .unwrap();
        let int8_outcome = SparkXdPipeline::new(
            PipelineConfig::small_demo(7).with_precision(WeightPrecision::Int8),
        )
        .run()
        .unwrap();
        assert_eq!(f32_outcome.mapping.word_bits, 32);
        assert_eq!(int8_outcome.mapping.word_bits, 8);
        // The packed image needs a quarter of the burst columns...
        assert_eq!(
            int8_outcome.mapping.columns * 4,
            f32_outcome.mapping.columns
        );
        // ...so streaming it costs proportionally less DRAM energy and
        // the end-to-end saving vs the FP32 baseline grows.
        assert!(
            int8_outcome.energy.improved.total_mj() < 0.5 * f32_outcome.energy.improved.total_mj()
        );
        assert!(
            int8_outcome.energy.saving_fraction_vs_baseline()
                > f32_outcome.energy.saving_fraction_vs_baseline()
        );
        // And the model still classifies: accuracy is a probability and
        // the quantised clean model matches the FP32 training outcome.
        assert!((0.0..=1.0).contains(&int8_outcome.accuracy_at_operating_point));
        assert_eq!(
            int8_outcome.improved_clean_accuracy,
            f32_outcome.improved_clean_accuracy
        );
    }

    #[test]
    fn quantized_pipeline_is_deterministic() {
        let run = || {
            SparkXdPipeline::new(
                PipelineConfig::small_demo(3).with_precision(WeightPrecision::Int16),
            )
            .run()
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dataset_kinds_generate() {
        assert_eq!(DatasetKind::Digits.generate(5, 1).len(), 5);
        assert_eq!(DatasetKind::Fashion.generate(5, 1).len(), 5);
        assert_eq!(DatasetKind::Fashion.label(), "fashion");
    }

    #[test]
    fn paper_network_config_scales() {
        let c = PipelineConfig::paper_network(400, DatasetKind::Digits, 1);
        assert_eq!(c.neurons, 400);
        assert_eq!(c.training.ber_schedule.len(), 7);
    }
}
