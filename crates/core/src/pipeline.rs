//! The end-to-end SparkXD pipeline (paper Fig. 7 / Fig. 10 tool flow).
//!
//! Inputs: an SNN configuration, a dataset, a reduced DRAM supply voltage
//! and an accuracy target. Outputs: the improved (fault-aware-trained)
//! model, its maximum tolerable BER, the error-aware DRAM mapping, and the
//! energy/throughput comparison against the accurate-DRAM baseline.

use crate::energy_eval::{EnergyComparison, EnergyEvaluation};
use crate::mapping::{BaselineMapping, Mapping, MappingPolicy, SparkXdMapping};
use crate::trace_gen::columns_for_network;
use crate::training::{FaultAwareTrainer, TrainingConfig};
use crate::CoreError;
use sparkxd_circuit::Volt;
use sparkxd_data::{Dataset, SynthDigits, SynthFashion, SyntheticSource};
use sparkxd_dram::DramConfig;
use sparkxd_error::{BerCurve, Injector, WeakCellMap};
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};

/// Which synthetic dataset to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DatasetKind {
    /// MNIST substitute.
    #[default]
    Digits,
    /// Fashion-MNIST substitute (harder).
    Fashion,
}

impl DatasetKind {
    /// Generates `n` samples with this kind's generator.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        match self {
            DatasetKind::Digits => SynthDigits.generate(n, seed),
            DatasetKind::Fashion => SynthFashion.generate(n, seed),
        }
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Digits => "digits",
            DatasetKind::Fashion => "fashion",
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Dataset to train/evaluate on.
    pub dataset: DatasetKind,
    /// Excitatory neuron count.
    pub neurons: usize,
    /// Presentation window per sample (timesteps at 1 ms).
    pub timesteps: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Test-set size.
    pub test_samples: usize,
    /// Error-free training epochs for the baseline model (`model0`).
    pub baseline_epochs: usize,
    /// Algorithm 1 configuration.
    pub training: TrainingConfig,
    /// Reduced DRAM supply voltage to operate at.
    pub v_supply: Volt,
    /// BER-vs-voltage curve of the device family.
    pub ber_curve: BerCurve,
    /// Seed identifying the physical device instance (weak-cell map).
    pub device_seed: u64,
    /// Seed for dataset generation.
    pub data_seed: u64,
}

impl PipelineConfig {
    /// A configuration small enough for demos and integration tests
    /// (≈ seconds of CPU), exercising every pipeline stage.
    pub fn small_demo(seed: u64) -> Self {
        Self {
            dataset: DatasetKind::Digits,
            neurons: 40,
            timesteps: 40,
            train_samples: 120,
            test_samples: 60,
            baseline_epochs: 2,
            training: TrainingConfig {
                ber_schedule: vec![1e-5, 1e-3],
                epochs_per_rate: 1,
                ..TrainingConfig::paper_default()
            },
            v_supply: Volt(1.025),
            ber_curve: BerCurve::paper_default(),
            device_seed: seed,
            data_seed: seed ^ 0xDA7A,
        }
    }

    /// A paper-style configuration for `neurons` (N400…N3600), scaled to
    /// CPU budgets: 600 train / 200 test samples, 3 baseline epochs and the
    /// full decade BER schedule.
    pub fn paper_network(neurons: usize, dataset: DatasetKind, seed: u64) -> Self {
        Self {
            dataset,
            neurons,
            timesteps: 100,
            train_samples: 600,
            test_samples: 200,
            baseline_epochs: 3,
            training: TrainingConfig::paper_default(),
            v_supply: Volt(1.025),
            ber_curve: BerCurve::paper_default(),
            device_seed: seed,
            data_seed: seed ^ 0xDA7A,
        }
    }
}

/// Summary of the DRAM mapping chosen for the improved model.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingSummary {
    /// Policy name.
    pub policy: &'static str,
    /// Columns mapped.
    pub columns: usize,
    /// Distinct subarrays used.
    pub subarrays_used: usize,
    /// Fraction of the device's subarrays that met the BER threshold.
    pub safe_fraction: f64,
}

/// Everything the pipeline produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Error-free accuracy of the baseline model.
    pub baseline_accuracy: f64,
    /// Error-free accuracy of the improved model.
    pub improved_clean_accuracy: f64,
    /// Accuracy of the improved model with errors injected through the
    /// actual mapping at the operating voltage's per-subarray rates.
    pub accuracy_at_operating_point: f64,
    /// Maximum tolerable BER found by Algorithm 1 (`BER_th`).
    pub max_tolerable_ber: f64,
    /// Whether `BER_th` met the accuracy bound (false = fell back to the
    /// smallest scheduled rate).
    pub target_met: bool,
    /// Actual operating voltage (the requested voltage, raised if its
    /// error rate exceeded the model's tolerance).
    pub operating_voltage: Volt,
    /// Device-level BER at the operating voltage.
    pub operating_ber: f64,
    /// Accuracy-vs-BER curve gathered during Algorithm 1.
    pub tolerance_curve: Vec<(f64, f64)>,
    /// Energy/throughput comparison vs the accurate baseline.
    pub energy: EnergyComparison,
    /// Mapping summary.
    pub mapping: MappingSummary,
}

/// Orchestrates the full SparkXD flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkXdPipeline {
    config: PipelineConfig,
}

impl SparkXdPipeline {
    /// Creates a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs every stage and returns the combined outcome.
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientSafeCapacity`] if the device's safe
    /// subarrays cannot hold the model at the operating voltage, and any
    /// error propagated from the substrates.
    pub fn run(&self) -> Result<PipelineOutcome, CoreError> {
        let cfg = &self.config;
        // 1. Data and baseline model (model0).
        let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
        let test = cfg
            .dataset
            .generate(cfg.test_samples, cfg.data_seed ^ 0x7E57);
        let snn_config = SnnConfig::for_neurons(cfg.neurons)
            .with_timesteps(cfg.timesteps)
            .with_weight_seed(cfg.device_seed ^ 0x11);
        let mut net = DiehlCookNetwork::new(snn_config.clone());
        for epoch in 0..cfg.baseline_epochs {
            net.train_epoch(&train, cfg.training.spike_seed ^ (epoch as u64));
        }

        // 2. Fault-aware training + tolerance analysis (Algorithm 1).
        let trainer = FaultAwareTrainer::new(cfg.training.clone());
        let outcome = trainer.improve(&mut net, &train, &test)?;
        let (ber_th, target_met) = match outcome.max_tolerable_ber {
            Some(b) => (b, true),
            None => (
                cfg.training
                    .ber_schedule
                    .first()
                    .copied()
                    .ok_or(CoreError::NoToleratedBer)?,
                false,
            ),
        };

        // 3. Device error profile at the operating voltage. If the
        // requested voltage is more error-prone than the model tolerates
        // (its median subarray would exceed BER_th), raise the operating
        // voltage to the lowest one whose device-level BER fits — the
        // framework's deployment rule: energy is minimised subject to the
        // accuracy constraint.
        let mut v_op = cfg.v_supply;
        let mut operating_ber = cfg.ber_curve.ber_at(v_op);
        if operating_ber > ber_th {
            v_op = cfg.ber_curve.voltage_for_ber(ber_th);
            operating_ber = cfg.ber_curve.ber_at(v_op);
        }
        let approx_config = DramConfig::approximate(v_op)?;
        let geometry = approx_config.geometry;
        let weak_cells = WeakCellMap::generate(&geometry, cfg.device_seed);
        let profile = weak_cells.profile(operating_ber);

        // 4. Mappings: baseline (accurate DRAM) vs SparkXD (approximate).
        let n_columns = columns_for_network(&snn_config, geometry.col_bytes);
        let baseline_config = DramConfig::lpddr3_1600_4gb();
        let baseline_mapping =
            BaselineMapping.map(n_columns, &baseline_config.geometry, &profile, f64::MAX)?;
        let spark_mapping = SparkXdMapping.map(n_columns, &geometry, &profile, ber_th)?;

        // 5. Accuracy at the operating point: inject through the actual
        // mapping and per-subarray rates.
        let accuracy_at_operating_point = self.accuracy_with_mapping(
            &mut net,
            &outcome.labeler,
            &test,
            &spark_mapping,
            &profile,
        )?;

        // 6. Energy/throughput comparison.
        let energy = EnergyComparison {
            baseline: EnergyEvaluation::evaluate(&baseline_config, &baseline_mapping),
            improved: EnergyEvaluation::evaluate(&approx_config, &spark_mapping),
        };

        let mapping = MappingSummary {
            policy: spark_mapping.policy(),
            columns: spark_mapping.len(),
            subarrays_used: spark_mapping.subarrays_used().len(),
            safe_fraction: profile.safe_fraction(ber_th),
        };

        Ok(PipelineOutcome {
            baseline_accuracy: outcome.baseline_accuracy,
            improved_clean_accuracy: outcome.improved_clean_accuracy,
            accuracy_at_operating_point,
            max_tolerable_ber: ber_th,
            target_met,
            operating_voltage: v_op,
            operating_ber,
            tolerance_curve: outcome.curve,
            energy,
            mapping,
        })
    }

    fn accuracy_with_mapping(
        &self,
        net: &mut DiehlCookNetwork,
        labeler: &sparkxd_snn::NeuronLabeler,
        test: &Dataset,
        mapping: &Mapping,
        profile: &sparkxd_error::ErrorProfile,
    ) -> Result<f64, CoreError> {
        let cfg = &self.config;
        let clean = net.weights().clone();
        let n_words = clean.len();
        let placements = mapping.placements(n_words);
        let mut injector = Injector::new(cfg.training.error_model, cfg.device_seed ^ 0x0B5E);
        let mut corrupted = clean.clone();
        injector.inject_with_placements(corrupted.as_mut_slice(), &placements, profile)?;
        net.set_weights(corrupted);
        let acc = net.evaluate(test, labeler, cfg.training.spike_seed ^ 0x0ACC);
        net.set_weights(clean);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_demo_pipeline_runs_end_to_end() {
        let outcome = SparkXdPipeline::new(PipelineConfig::small_demo(7))
            .run()
            .expect("pipeline must complete");
        // Energy: the paper's ~40% saving band at 1.025 V.
        let saving = outcome.energy.saving_fraction_vs_baseline();
        assert!(
            (0.25..0.50).contains(&saving),
            "energy saving {saving} out of band"
        );
        // Throughput maintained (paper: ~1.02x).
        assert!(outcome.energy.speedup() > 0.9);
        // Tolerance curve covers the schedule.
        assert_eq!(outcome.tolerance_curve.len(), 2);
        // Mapping uses only safe subarrays and holds the whole image.
        assert_eq!(outcome.mapping.policy, "sparkxd");
        assert!(outcome.mapping.columns > 0);
        assert!(outcome.mapping.safe_fraction > 0.0);
        // Accuracies are probabilities.
        for acc in [
            outcome.baseline_accuracy,
            outcome.improved_clean_accuracy,
            outcome.accuracy_at_operating_point,
        ] {
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = SparkXdPipeline::new(PipelineConfig::small_demo(3))
            .run()
            .unwrap();
        let b = SparkXdPipeline::new(PipelineConfig::small_demo(3))
            .run()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dataset_kinds_generate() {
        assert_eq!(DatasetKind::Digits.generate(5, 1).len(), 5);
        assert_eq!(DatasetKind::Fashion.generate(5, 1).len(), 5);
        assert_eq!(DatasetKind::Fashion.label(), "fashion");
    }

    #[test]
    fn paper_network_config_scales() {
        let c = PipelineConfig::paper_network(400, DatasetKind::Digits, 1);
        assert_eq!(c.neurons, 400);
        assert_eq!(c.training.ber_schedule.len(), 7);
    }
}
