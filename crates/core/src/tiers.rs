//! Voltage-tier model construction for the serving layer.
//!
//! The pipeline ([`crate::pipeline`]) picks **one** operating voltage per
//! experiment. An online service wants the opposite: several
//! corrupted-and-scrubbed model instances built **once**, each at a
//! different supply voltage, so a router can pick the cheapest tier that
//! still satisfies a request's accuracy floor, energy budget or deadline
//! slack (the EDEN-style per-workload operating-point selection).
//!
//! A [`TierModel`] is one such instance: the improved model's weights are
//! placed through the error-aware SparkXD mapping at that voltage's
//! per-subarray error profile, bit errors are injected through the actual
//! placements, and the corrupted image is scrubbed once into the
//! [`sparkxd_snn::EffectivePlane`] read path. Each tier is tagged with a
//! measured accuracy estimate (on a held-out calibration set) and the
//! per-inference DRAM energy/latency of streaming its mapping, priced by
//! the compressed-trace batch replay.
//!
//! [`TierBuilder::build`] runs the whole flow from a [`PipelineConfig`]
//! (baseline training + Algorithm 1, shared across tiers, then one
//! mapping/injection/calibration pass per voltage);
//! [`TierBuilder::build_from_model`] skips the training stages when the
//! caller already has a trained network.

use crate::energy_eval::EnergyEvaluation;
use crate::mapping::MappingPolicy;
use crate::pipeline::{MappingSummary, PipelineConfig};
use crate::trace_gen::columns_for_network;
use crate::training::FaultAwareTrainer;
use crate::CoreError;
use sparkxd_circuit::Volt;
use sparkxd_dram::DramConfig;
use sparkxd_error::{Injector, WeakCellMap};
use sparkxd_snn::engine::BatchEvaluator;
use sparkxd_snn::{
    DiehlCookNetwork, NetworkParams, NeuronLabeler, QuantizedImage, WeightPrecision,
};

/// One deployable operating point: a corrupted-and-scrubbed model instance
/// at a fixed supply voltage and storage precision, tagged with everything
/// a router needs.
#[derive(Debug, Clone, PartialEq)]
pub struct TierModel {
    /// DRAM supply voltage this tier operates at.
    pub v_supply: Volt,
    /// Storage precision of the tier's DRAM weight image. A quantised
    /// tier streams a 4×/2× smaller image (proportionally smaller trace
    /// and energy) and was injected at the native word width.
    pub precision: WeightPrecision,
    /// Device-level BER at that voltage.
    pub operating_ber: f64,
    /// The tier's inference parameters: improved weights corrupted through
    /// the tier's mapping, scrub (clamp) applied once on plane build.
    pub params: NetworkParams,
    /// Neuron-class assignments of the improved model.
    pub labeler: NeuronLabeler,
    /// Accuracy measured on the held-out calibration set with this tier's
    /// corrupted weights.
    pub accuracy_estimate: f64,
    /// DRAM energy (mJ) of streaming the tier's weight image once — the
    /// per-inference DRAM cost in the paper's system model; a batch of B
    /// amortises one pass across B inferences.
    pub dram_pass_mj: f64,
    /// DRAM latency (ns) of that same single pass.
    pub dram_pass_ns: f64,
    /// Summary of the error-aware mapping backing this tier.
    pub mapping: MappingSummary,
}

/// The product of tier construction: the usable ladder plus the voltages
/// that could not be deployed on this device.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSet {
    /// Usable tiers, ascending by supply voltage (index 0 is the most
    /// aggressive / lowest-energy tier).
    pub tiers: Vec<TierModel>,
    /// Voltages that failed tier construction (typically
    /// [`CoreError::InsufficientSafeCapacity`] when too few subarrays meet
    /// `BER_th` at that voltage), with the error.
    pub skipped: Vec<(Volt, CoreError)>,
    /// The maximum tolerable BER the ladder was built against.
    pub ber_th: f64,
}

/// Builds a [`TierSet`] from a [`PipelineConfig`] and a voltage ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct TierBuilder {
    config: PipelineConfig,
    voltages: Vec<Volt>,
    rungs: Option<Vec<(Volt, WeightPrecision)>>,
    calibration_eval: Option<BatchEvaluator>,
}

impl TierBuilder {
    /// A builder over `config` with the default three-step ladder
    /// (1.025 V, 1.1 V, 1.175 V — the aggressive half of the paper's
    /// operating points).
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            voltages: vec![Volt(1.025), Volt(1.1), Volt(1.175)],
            rungs: None,
            calibration_eval: None,
        }
    }

    /// Replaces the voltage ladder (builder style). Every rung inherits
    /// the configuration's storage precision; use
    /// [`with_rungs`](Self::with_rungs) for a mixed-precision ladder.
    pub fn with_voltages(mut self, voltages: Vec<Volt>) -> Self {
        self.voltages = voltages;
        self.rungs = None;
        self
    }

    /// Replaces the ladder with explicit `(voltage, precision)` rungs, so
    /// one ladder can mix e.g. an "int8 @ low Vdd" aggressive tier with an
    /// FP32 fallback at nominal voltage.
    pub fn with_rungs(mut self, rungs: Vec<(Volt, WeightPrecision)>) -> Self {
        self.rungs = Some(rungs);
        self
    }

    /// Pins the engine configuration (threads / batch / tile width) used
    /// to measure each tier's calibration accuracy, instead of reading
    /// the `SPARKXD_*` environment. Paper-scale ladders (N3600) want the
    /// tiled batched path here: calibration is a full evaluation pass per
    /// voltage, and the engine guarantees the measured accuracy is
    /// bit-identical for **any** evaluator configuration.
    pub fn with_calibration_eval(mut self, eval: BatchEvaluator) -> Self {
        self.calibration_eval = Some(eval);
        self
    }

    /// The configuration tiers are built from.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The voltage ladder.
    pub fn voltages(&self) -> &[Volt] {
        &self.voltages
    }

    /// The effective `(voltage, precision)` rungs the ladder is built
    /// from: the explicit [`with_rungs`](Self::with_rungs) list when set,
    /// otherwise every voltage at the configuration's precision.
    pub fn rungs(&self) -> Vec<(Volt, WeightPrecision)> {
        match &self.rungs {
            Some(r) => r.clone(),
            None => self
                .voltages
                .iter()
                .map(|&v| (v, self.config.precision))
                .collect(),
        }
    }

    /// Runs the full flow: baseline training, fault-aware improvement
    /// (Algorithm 1, shared across every tier) and one
    /// mapping/injection/calibration pass per voltage.
    ///
    /// Seed derivations mirror [`crate::pipeline::SparkXdPipeline`]'s
    /// stages, so the improved model matches what a single-voltage
    /// pipeline run at the same configuration would deploy.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyTierSet`] when the ladder is empty,
    /// [`CoreError::NoToleratedBer`] when the BER schedule is empty, the
    /// first per-voltage error when *every* voltage failed, and anything
    /// Algorithm 1 propagates.
    pub fn build(&self) -> Result<TierSet, CoreError> {
        let cfg = &self.config;
        if self.rungs().is_empty() {
            return Err(CoreError::EmptyTierSet);
        }
        let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
        let test = cfg
            .dataset
            .generate(cfg.test_samples, cfg.data_seed ^ 0x7E57);
        let snn_config = sparkxd_snn::SnnConfig::for_neurons(cfg.neurons)
            .with_timesteps(cfg.timesteps)
            .with_weight_seed(cfg.device_seed ^ 0x11);
        let mut net = DiehlCookNetwork::new(snn_config);
        for epoch in 0..cfg.baseline_epochs {
            net.train_epoch(&train, cfg.training.spike_seed ^ (epoch as u64));
        }
        let outcome =
            FaultAwareTrainer::new(cfg.training.clone()).improve(&mut net, &train, &test)?;
        let ber_th = match outcome.max_tolerable_ber {
            Some(b) => b,
            None => cfg
                .training
                .ber_schedule
                .first()
                .copied()
                .ok_or(CoreError::NoToleratedBer)?,
        };
        self.assemble(&net, &outcome.labeler, &test, ber_th)
    }

    /// Builds the ladder around an externally trained (ideally
    /// fault-aware-improved) network, skipping the training stages — the
    /// fast path for serving binaries that already hold a model.
    ///
    /// The calibration set and the neuron labelling are derived from the
    /// builder's configuration seeds, exactly as [`build`](Self::build)
    /// would.
    ///
    /// # Errors
    ///
    /// Same per-voltage errors as [`build`](Self::build).
    pub fn build_from_model(
        &self,
        net: &DiehlCookNetwork,
        ber_th: f64,
    ) -> Result<TierSet, CoreError> {
        let cfg = &self.config;
        if self.rungs().is_empty() {
            return Err(CoreError::EmptyTierSet);
        }
        let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
        let test = cfg
            .dataset
            .generate(cfg.test_samples, cfg.data_seed ^ 0x7E57);
        let labeler = net.label_neurons(&train, cfg.training.spike_seed ^ 0xABCD);
        self.assemble(net, &labeler, &test, ber_th)
    }

    /// One mapping/injection/calibration pass per ladder rung against an
    /// already-improved model.
    fn assemble(
        &self,
        net: &DiehlCookNetwork,
        labeler: &NeuronLabeler,
        calibration: &sparkxd_data::Dataset,
        ber_th: f64,
    ) -> Result<TierSet, CoreError> {
        let mut rungs = self.rungs();
        // Ascending voltage; at equal voltage the narrower (cheaper) image
        // first, mirroring the "most aggressive tier first" ordering.
        rungs.sort_by(|a, b| {
            a.0 .0
                .total_cmp(&b.0 .0)
                .then(a.1.word_bits().cmp(&b.1.word_bits()))
        });
        rungs.dedup();

        let mut tiers = Vec::with_capacity(rungs.len());
        let mut skipped = Vec::new();
        for (v, precision) in rungs {
            match self.build_tier(net, labeler, calibration, ber_th, v, precision) {
                Ok(tier) => tiers.push(tier),
                Err(e) => skipped.push((v, e)),
            }
        }
        if tiers.is_empty() {
            let (_, first_error) = skipped
                .into_iter()
                .next()
                .expect("non-empty ladder with no tiers must have failures");
            return Err(first_error);
        }
        Ok(TierSet {
            tiers,
            skipped,
            ber_th,
        })
    }

    /// Builds one tier: device profile at `v`, error-aware mapping under
    /// `ber_th` at the rung's storage precision, placement-shaped injection
    /// into a copy of the improved weights at the native word width
    /// (scrubbed once on plane rebuild), calibration-set accuracy and
    /// compressed-trace energy/latency pricing.
    fn build_tier(
        &self,
        net: &DiehlCookNetwork,
        labeler: &NeuronLabeler,
        calibration: &sparkxd_data::Dataset,
        ber_th: f64,
        v: Volt,
        precision: WeightPrecision,
    ) -> Result<TierModel, CoreError> {
        let _span = sparkxd_telemetry::span!("core.build_tier");
        sparkxd_telemetry::counter_add!("core.tiers_built", 1);
        let cfg = &self.config;
        let operating_ber = cfg.ber_curve.ber_at(v);
        let approx_config = DramConfig::approximate(v)?;
        let weak_cells = WeakCellMap::generate(&approx_config.geometry, cfg.device_seed);
        let profile = weak_cells.profile(operating_ber);
        let n_columns =
            columns_for_network(net.config(), approx_config.geometry.col_bytes, precision);
        let mapping = crate::mapping::SparkXdMapping
            .map(n_columns, &approx_config.geometry, &profile, ber_th)?
            .with_precision(precision);

        // Corrupt a copy of the improved weights through the tier's actual
        // placements; `set_weights` rebuilds the effective plane, which is
        // where the one-time scrub (clamp) happens. A quantised rung packs
        // the image first and flips bits in the packed codes.
        let mut params = net.params().clone();
        let mut injector = Injector::new(cfg.training.error_model, cfg.device_seed ^ v.0.to_bits());
        if precision.is_quantized() {
            let mut image = QuantizedImage::quantize(params.weights(), precision);
            let placements = mapping.placements(image.words());
            let word_bits = image.word_bits();
            injector.inject_packed_with_placements(
                image.payload_mut(),
                word_bits,
                &placements,
                &profile,
            )?;
            params.set_weights(image.dequantize());
        } else {
            let placements = mapping.placements(params.weights().len());
            let mut corrupted = params.weights().clone();
            injector.inject_with_placements(corrupted.as_mut_slice(), &placements, &profile)?;
            params.set_weights(corrupted);
        }

        let accuracy_estimate = self
            .calibration_eval
            .unwrap_or_else(BatchEvaluator::from_env)
            .evaluate(
                &params,
                calibration,
                labeler,
                cfg.training.spike_seed ^ 0x71E5,
            );
        let energy = EnergyEvaluation::evaluate(&approx_config, &mapping);
        Ok(TierModel {
            v_supply: v,
            precision,
            operating_ber,
            params,
            labeler: labeler.clone(),
            accuracy_estimate,
            dram_pass_mj: energy.total_mj(),
            dram_pass_ns: energy.runtime_ns(),
            mapping: MappingSummary {
                policy: mapping.policy(),
                columns: mapping.len(),
                subarrays_used: mapping.subarrays_used().len(),
                safe_fraction: profile.safe_fraction(ber_th),
                word_bits: precision.word_bits(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    fn tiny_config(seed: u64) -> PipelineConfig {
        PipelineConfig {
            neurons: 20,
            timesteps: 20,
            train_samples: 40,
            test_samples: 20,
            baseline_epochs: 1,
            ..PipelineConfig::small_demo(seed)
        }
    }

    #[test]
    fn empty_ladder_is_an_error() {
        let b = TierBuilder::new(tiny_config(1)).with_voltages(vec![]);
        assert!(matches!(b.build(), Err(CoreError::EmptyTierSet)));
    }

    #[test]
    fn ladder_builds_ascending_tagged_tiers() {
        let set = TierBuilder::new(tiny_config(2))
            .build()
            .expect("tiny ladder builds");
        assert!(!set.tiers.is_empty());
        for pair in set.tiers.windows(2) {
            assert!(pair[0].v_supply.0 < pair[1].v_supply.0, "ascending order");
            // Lower voltage streams cheaper: DRAM energy must be monotone
            // in the supply voltage for a fixed image size.
            assert!(pair[0].dram_pass_mj < pair[1].dram_pass_mj);
        }
        for tier in &set.tiers {
            assert!((0.0..=1.0).contains(&tier.accuracy_estimate));
            assert!(tier.dram_pass_mj > 0.0);
            assert!(tier.dram_pass_ns > 0.0);
            assert_eq!(tier.mapping.policy, "sparkxd");
            assert!(tier.mapping.columns > 0);
            // The tag must be exactly the curve's value at the tier's
            // voltage — a swapped lookup would ship a wrong routing tag.
            let expected_ber = tiny_config(2).ber_curve.ber_at(tier.v_supply);
            assert_eq!(tier.operating_ber, expected_ber);
        }
    }

    #[test]
    fn tier_construction_is_deterministic() {
        let build = || TierBuilder::new(tiny_config(3)).build().unwrap();
        assert_eq!(build(), build());
    }

    #[test]
    fn calibration_eval_config_cannot_change_the_ladder() {
        // The pinned calibration evaluator decides *how fast* accuracy is
        // measured, never *what* is measured: any (threads, batch, tile)
        // point must tag every tier with the same accuracy as the scalar
        // serial reference.
        let reference = TierBuilder::new(tiny_config(5))
            .with_calibration_eval(BatchEvaluator::with_threads(1).with_batch(1))
            .build()
            .unwrap();
        for eval in [
            BatchEvaluator::with_threads(2).with_batch(8),
            BatchEvaluator::with_threads(1).with_batch(3).with_tile(1),
            BatchEvaluator::with_threads(2).with_batch(4).with_tile(7),
        ] {
            let set = TierBuilder::new(tiny_config(5))
                .with_calibration_eval(eval)
                .build()
                .unwrap();
            assert_eq!(set, reference, "diverged under {eval:?}");
        }
    }

    #[test]
    fn quantized_rungs_build_cheaper_tiers_at_the_same_voltage() {
        let cfg = tiny_config(6);
        let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
        let snn_config = sparkxd_snn::SnnConfig::for_neurons(cfg.neurons)
            .with_timesteps(cfg.timesteps)
            .with_weight_seed(cfg.device_seed ^ 0x11);
        let mut net = DiehlCookNetwork::new(snn_config);
        net.train_epoch(&train, 1);
        let set = TierBuilder::new(cfg)
            .with_rungs(vec![
                (Volt(1.1), WeightPrecision::Fp32),
                (Volt(1.1), WeightPrecision::Int8),
                (Volt(1.1), WeightPrecision::Int16),
            ])
            .build_from_model(&net, 1e-4)
            .expect("mixed-precision ladder builds");
        assert_eq!(set.tiers.len(), 3);
        // Narrower image first at equal voltage.
        let widths: Vec<u32> = set.tiers.iter().map(|t| t.precision.word_bits()).collect();
        assert_eq!(widths, vec![8, 16, 32]);
        let by_width = |bits: u32| {
            set.tiers
                .iter()
                .find(|t| t.precision.word_bits() == bits)
                .unwrap()
        };
        let (t8, t16, t32) = (by_width(8), by_width(16), by_width(32));
        // A packed image streams proportionally fewer burst columns, so the
        // per-pass DRAM cost must drop with the word width.
        assert_eq!(t8.mapping.columns * 4, t32.mapping.columns);
        assert_eq!(t16.mapping.columns * 2, t32.mapping.columns);
        assert_eq!(t8.mapping.word_bits, 8);
        assert!(t8.dram_pass_mj < t16.dram_pass_mj);
        assert!(t16.dram_pass_mj < t32.dram_pass_mj);
        assert!(t8.dram_pass_ns < t32.dram_pass_ns);
        for tier in &set.tiers {
            assert!((0.0..=1.0).contains(&tier.accuracy_estimate));
        }
    }

    #[test]
    fn voltage_ladder_inherits_config_precision() {
        let cfg = tiny_config(7).with_precision(WeightPrecision::Int8);
        let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
        let snn_config = sparkxd_snn::SnnConfig::for_neurons(cfg.neurons)
            .with_timesteps(cfg.timesteps)
            .with_weight_seed(cfg.device_seed ^ 0x11);
        let mut net = DiehlCookNetwork::new(snn_config);
        net.train_epoch(&train, 1);
        let builder = TierBuilder::new(cfg).with_voltages(vec![Volt(1.05), Volt(1.15)]);
        assert!(builder
            .rungs()
            .iter()
            .all(|(_, p)| *p == WeightPrecision::Int8));
        let set = builder.build_from_model(&net, 1e-4).expect("int8 ladder");
        for tier in &set.tiers {
            assert_eq!(tier.precision, WeightPrecision::Int8);
            assert_eq!(tier.mapping.word_bits, 8);
        }
    }

    #[test]
    fn mixed_rung_ladder_is_deterministic() {
        let build = || {
            let cfg = tiny_config(8);
            let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
            let snn_config = sparkxd_snn::SnnConfig::for_neurons(cfg.neurons)
                .with_timesteps(cfg.timesteps)
                .with_weight_seed(cfg.device_seed ^ 0x11);
            let mut net = DiehlCookNetwork::new(snn_config);
            net.train_epoch(&train, 1);
            TierBuilder::new(cfg)
                .with_rungs(vec![
                    (Volt(1.05), WeightPrecision::Int8),
                    (Volt(1.175), WeightPrecision::Fp32),
                ])
                .build_from_model(&net, 1e-4)
                .unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn build_from_model_skips_training_but_matches_shape() {
        let cfg = tiny_config(4);
        let train = cfg.dataset.generate(cfg.train_samples, cfg.data_seed);
        let snn_config = sparkxd_snn::SnnConfig::for_neurons(cfg.neurons)
            .with_timesteps(cfg.timesteps)
            .with_weight_seed(cfg.device_seed ^ 0x11);
        let mut net = DiehlCookNetwork::new(snn_config);
        net.train_epoch(&train, 1);
        let set = TierBuilder::new(cfg)
            .with_voltages(vec![Volt(1.05), Volt(1.15)])
            .build_from_model(&net, 1e-4)
            .expect("prebuilt model ladder");
        assert_eq!(set.ber_th, 1e-4);
        assert!(!set.tiers.is_empty());
        for tier in &set.tiers {
            assert_eq!(tier.params.config().n_neurons, 20);
        }
    }
}
