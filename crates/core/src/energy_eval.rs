//! DRAM energy and throughput evaluation of a mapped model
//! (behind paper Fig. 12a/12b and Table I).

use crate::mapping::Mapping;
use sparkxd_circuit::Volt;
use sparkxd_dram::{AccessStats, DramConfig, DramModel, LatencyReport};
use sparkxd_energy::{EnergyBreakdown, EnergyModel};

/// Energy/latency outcome of streaming a mapped weight image once through
/// a DRAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyEvaluation {
    /// Mapping policy that produced the trace.
    pub policy: &'static str,
    /// Operating voltage.
    pub v_supply: Volt,
    /// Row-buffer statistics of the replay.
    pub stats: AccessStats,
    /// Latency report of the replay.
    pub latency: LatencyReport,
    /// Energy breakdown of the replay.
    pub breakdown: EnergyBreakdown,
}

impl EnergyEvaluation {
    /// Replays the mapping's read trace on `config` and prices it. Uses
    /// the batch replay path — mapped weight images are long same-row
    /// bursts, so this is O(rows) rather than O(columns).
    pub fn evaluate(config: &DramConfig, mapping: &Mapping) -> Self {
        let mut model = DramModel::new(config.clone());
        let outcome = model.replay_compressed(&mapping.read_trace());
        let energy = EnergyModel::for_config(config);
        let breakdown = energy.trace_energy(&outcome.stats, &outcome.latency);
        // Energy per weight-image replay, in nJ so the log2 histogram
        // keeps resolution at demo scale (mJ values round to 0).
        sparkxd_telemetry::hist_record!("dram.replay_energy_nj", breakdown.total_nj());
        Self {
            policy: mapping.policy(),
            v_supply: config.v_supply,
            stats: outcome.stats,
            latency: outcome.latency,
            breakdown,
        }
    }

    /// Total DRAM energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.breakdown.total_mj()
    }

    /// Effective runtime of the streamed pass in nanoseconds (core-timing
    /// slowdown included via the energy model's convention).
    pub fn runtime_ns(&self) -> f64 {
        self.latency.total_ns
    }
}

/// Side-by-side comparison of the accurate-DRAM baseline and a
/// SparkXD-mapped approximate-DRAM configuration (the unit of Fig. 12).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyComparison {
    /// Baseline: accurate DRAM at nominal voltage, baseline mapping.
    pub baseline: EnergyEvaluation,
    /// SparkXD: approximate DRAM at reduced voltage, SparkXD mapping.
    pub improved: EnergyEvaluation,
}

impl EnergyComparison {
    /// Fractional DRAM energy saving of the improved configuration
    /// (`1 − E_improved / E_baseline`; ≈ 0.40 at 1.025 V in the paper).
    pub fn saving_fraction_vs_baseline(&self) -> f64 {
        1.0 - self.improved.total_mj() / self.baseline.total_mj()
    }

    /// Throughput speed-up of the improved configuration over the baseline
    /// (≈ 1.02× in the paper, thanks to the multi-bank burst mapping).
    pub fn speedup(&self) -> f64 {
        self.baseline.runtime_ns() / self.improved.runtime_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
    use sparkxd_error::ErrorProfile;

    fn comparison(n_columns: usize) -> EnergyComparison {
        let baseline_cfg = DramConfig::lpddr3_1600_4gb();
        let approx_cfg = DramConfig::approximate(Volt(1.025)).unwrap();
        let profile = ErrorProfile::uniform(1e-4, baseline_cfg.geometry.total_subarrays());
        let base_map = BaselineMapping
            .map(n_columns, &baseline_cfg.geometry, &profile, 1.0)
            .unwrap();
        let spark_map = SparkXdMapping
            .map(n_columns, &approx_cfg.geometry, &profile, 1e-3)
            .unwrap();
        EnergyComparison {
            baseline: EnergyEvaluation::evaluate(&baseline_cfg, &base_map),
            improved: EnergyEvaluation::evaluate(&approx_cfg, &spark_map),
        }
    }

    #[test]
    fn sparkxd_saves_meaningful_energy_at_lowest_voltage() {
        let cmp = comparison(4096);
        let saving = cmp.saving_fraction_vs_baseline();
        assert!(
            (0.30..0.48).contains(&saving),
            "saving {saving} out of the paper's ~0.40 band"
        );
    }

    #[test]
    fn sparkxd_maintains_throughput() {
        let cmp = comparison(4096);
        let speedup = cmp.speedup();
        assert!(
            speedup >= 0.95,
            "mapping must not cost meaningful throughput, got {speedup}"
        );
    }

    #[test]
    fn evaluation_reports_policy_and_voltage() {
        let cmp = comparison(512);
        assert_eq!(cmp.baseline.policy, "baseline");
        assert_eq!(cmp.improved.policy, "sparkxd");
        assert_eq!(cmp.baseline.v_supply, Volt(1.35));
        assert_eq!(cmp.improved.v_supply, Volt(1.025));
    }

    #[test]
    fn energy_scales_with_trace_length() {
        let small = comparison(512).baseline.total_mj();
        let large = comparison(4096).baseline.total_mj();
        assert!(large > small * 6.0, "energy should scale with accesses");
    }
}
