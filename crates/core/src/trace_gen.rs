//! Inference access-trace generation.
//!
//! In the paper's system model (Fig. 1/Sec. I), the SNN's synaptic weights
//! exceed on-chip storage, so each inference streams the weight image from
//! DRAM. The trace generator turns a [`Mapping`] plus a network shape into
//! the read trace of one (or several) inference passes, and reports the
//! workload numbers used by the platform energy-breakdown model.

use crate::mapping::Mapping;
use sparkxd_dram::CompressedTrace;
use sparkxd_energy::SnnWorkload;
use sparkxd_snn::{SnnConfig, WeightPrecision};

/// Number of burst columns needed to hold `n_words` weight words of the
/// given `precision`, with `col_bytes` bytes per column. Routes through
/// [`WeightPrecision::bytes_per_word`] — an int8 image packs 4× the words
/// per burst column of an FP32 one.
pub fn columns_for_words(n_words: usize, col_bytes: usize, precision: WeightPrecision) -> usize {
    let words_per_col = col_bytes / precision.bytes_per_word();
    n_words.div_ceil(words_per_col)
}

/// Number of burst columns needed for a network's full weight image at
/// the given storage precision.
pub fn columns_for_network(
    config: &SnnConfig,
    col_bytes: usize,
    precision: WeightPrecision,
) -> usize {
    columns_for_words(config.n_inputs * config.n_neurons, col_bytes, precision)
}

/// Read trace of `passes` complete inference passes over the mapped
/// weight image. Multi-pass traces use the compressed representation's
/// `repeat` count — one op sequence, replayed `passes` times — instead of
/// materializing per-pass copies.
pub fn inference_trace(mapping: &Mapping, passes: usize) -> CompressedTrace {
    mapping.read_trace().with_repeat(passes)
}

/// Workload descriptor of one inference pass (for the Fig. 1b platform
/// breakdowns): synaptic operations and spikes estimated from the input
/// statistics, memory traffic from the actual weight-image bytes at the
/// given storage precision.
pub fn workload_for_network(
    config: &SnnConfig,
    mean_intensity: f64,
    precision: WeightPrecision,
) -> SnnWorkload {
    let rate = (mean_intensity * config.encoder.max_rate_hz as f64 * config.encoder.dt_ms as f64
        / 1000.0)
        .clamp(0.0, 1.0);
    SnnWorkload::fully_connected_at_width(
        config.n_inputs,
        config.n_neurons,
        config.timesteps,
        rate,
        precision.bytes_per_word(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BaselineMapping, MappingPolicy};
    use sparkxd_dram::DramGeometry;
    use sparkxd_error::ErrorProfile;

    #[test]
    fn column_count_rounds_up() {
        assert_eq!(columns_for_words(4, 16, WeightPrecision::Fp32), 1);
        assert_eq!(columns_for_words(5, 16, WeightPrecision::Fp32), 2);
        assert_eq!(columns_for_words(0, 16, WeightPrecision::Fp32), 0);
        assert_eq!(columns_for_words(16, 16, WeightPrecision::Int8), 1);
        assert_eq!(columns_for_words(17, 16, WeightPrecision::Int8), 2);
        assert_eq!(columns_for_words(8, 16, WeightPrecision::Int16), 1);
    }

    #[test]
    fn network_column_count_scales_with_size() {
        let small = columns_for_network(&SnnConfig::for_neurons(100), 16, WeightPrecision::Fp32);
        let large = columns_for_network(&SnnConfig::for_neurons(400), 16, WeightPrecision::Fp32);
        assert_eq!(small * 4, large);
        // N400: 784*400 words / 4 per column = 78,400 columns.
        assert_eq!(large, 78_400);
    }

    #[test]
    fn network_column_count_scales_with_precision() {
        // N400 at int8 packs 16 words per 16-byte column: 19,600 columns —
        // a quarter of the FP32 image's 78,400.
        let cfg = SnnConfig::for_neurons(400);
        assert_eq!(columns_for_network(&cfg, 16, WeightPrecision::Int8), 19_600);
        assert_eq!(
            columns_for_network(&cfg, 16, WeightPrecision::Int16),
            39_200
        );
    }

    #[test]
    fn trace_repeats_per_pass() {
        let g = DramGeometry::tiny();
        let p = ErrorProfile::uniform(0.0, g.total_subarrays());
        let m = BaselineMapping.map(10, &g, &p, 1.0).unwrap();
        let t = inference_trace(&m, 3);
        assert_eq!(t.len(), 30);
        let expanded = t.expand();
        assert_eq!(expanded.accesses()[0].coord, expanded.accesses()[10].coord);
        // `repeat` replaces materialized copies: the op sequence stays that
        // of a single pass.
        assert_eq!(t.repeat(), 3);
        assert_eq!(t.num_ops(), inference_trace(&m, 1).num_ops());
    }

    #[test]
    fn zero_passes_is_an_empty_trace() {
        let g = DramGeometry::tiny();
        let p = ErrorProfile::uniform(0.0, g.total_subarrays());
        let m = BaselineMapping.map(10, &g, &p, 1.0).unwrap();
        let t = inference_trace(&m, 0);
        assert!(t.is_empty());
        assert!(t.expand().is_empty());
    }

    #[test]
    fn multi_pass_trace_replays_like_materialized_copies() {
        use sparkxd_dram::{DramConfig, DramModel};
        let g = DramGeometry::tiny();
        let p = ErrorProfile::uniform(0.0, g.total_subarrays());
        let m = BaselineMapping.map(20, &g, &p, 1.0).unwrap();
        let compressed = inference_trace(&m, 4);
        let mut materialized = sparkxd_dram::AccessTrace::new();
        for _ in 0..4 {
            materialized.extend(m.read_trace().expand());
        }
        let config = DramConfig::tiny();
        let batch = DramModel::new(config.clone()).replay_compressed(&compressed);
        let reference = DramModel::new(config).replay(&materialized);
        assert_eq!(batch, reference);
    }

    #[test]
    fn workload_counts_weight_bytes() {
        let cfg = SnnConfig::for_neurons(100);
        let w = workload_for_network(&cfg, 0.1, WeightPrecision::Fp32);
        assert_eq!(w.memory_bytes, 784 * 100 * 4);
        assert!(w.synaptic_ops > 0);
    }

    #[test]
    fn workload_counts_actual_image_bytes_per_precision() {
        // Regression: memory traffic hardcoded 4 bytes/word, so a packed
        // image's workload over-reported its DRAM traffic 4×.
        let cfg = SnnConfig::for_neurons(100);
        let w8 = workload_for_network(&cfg, 0.1, WeightPrecision::Int8);
        let w16 = workload_for_network(&cfg, 0.1, WeightPrecision::Int16);
        assert_eq!(w8.memory_bytes, 784 * 100);
        assert_eq!(w16.memory_bytes, 784 * 100 * 2);
        // Compute-side numbers are precision-independent.
        let w32 = workload_for_network(&cfg, 0.1, WeightPrecision::Fp32);
        assert_eq!(w8.synaptic_ops, w32.synaptic_ops);
        assert_eq!(w8.spikes, w32.spikes);
    }
}
