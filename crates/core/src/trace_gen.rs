//! Inference access-trace generation.
//!
//! In the paper's system model (Fig. 1/Sec. I), the SNN's synaptic weights
//! exceed on-chip storage, so each inference streams the weight image from
//! DRAM. The trace generator turns a [`Mapping`] plus a network shape into
//! the read trace of one (or several) inference passes, and reports the
//! workload numbers used by the platform energy-breakdown model.

use crate::mapping::Mapping;
use sparkxd_dram::CompressedTrace;
use sparkxd_energy::SnnWorkload;
use sparkxd_snn::SnnConfig;

/// Number of burst columns needed to hold `n_words` FP32 weights given
/// `col_bytes` bytes per column.
pub fn columns_for_words(n_words: usize, col_bytes: usize) -> usize {
    let words_per_col = col_bytes / 4;
    n_words.div_ceil(words_per_col)
}

/// Number of burst columns needed for a network's full weight image.
pub fn columns_for_network(config: &SnnConfig, col_bytes: usize) -> usize {
    columns_for_words(config.n_inputs * config.n_neurons, col_bytes)
}

/// Read trace of `passes` complete inference passes over the mapped
/// weight image. Multi-pass traces use the compressed representation's
/// `repeat` count — one op sequence, replayed `passes` times — instead of
/// materializing per-pass copies.
pub fn inference_trace(mapping: &Mapping, passes: usize) -> CompressedTrace {
    mapping.read_trace().with_repeat(passes)
}

/// Workload descriptor of one inference pass (for the Fig. 1b platform
/// breakdowns): synaptic operations and spikes estimated from the input
/// statistics, memory traffic from the weight image.
pub fn workload_for_network(config: &SnnConfig, mean_intensity: f64) -> SnnWorkload {
    let rate = (mean_intensity * config.encoder.max_rate_hz as f64 * config.encoder.dt_ms as f64
        / 1000.0)
        .clamp(0.0, 1.0);
    SnnWorkload::fully_connected(config.n_inputs, config.n_neurons, config.timesteps, rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{BaselineMapping, MappingPolicy};
    use sparkxd_dram::DramGeometry;
    use sparkxd_error::ErrorProfile;

    #[test]
    fn column_count_rounds_up() {
        assert_eq!(columns_for_words(4, 16), 1);
        assert_eq!(columns_for_words(5, 16), 2);
        assert_eq!(columns_for_words(0, 16), 0);
    }

    #[test]
    fn network_column_count_scales_with_size() {
        let small = columns_for_network(&SnnConfig::for_neurons(100), 16);
        let large = columns_for_network(&SnnConfig::for_neurons(400), 16);
        assert_eq!(small * 4, large);
        // N400: 784*400 words / 4 per column = 78,400 columns.
        assert_eq!(large, 78_400);
    }

    #[test]
    fn trace_repeats_per_pass() {
        let g = DramGeometry::tiny();
        let p = ErrorProfile::uniform(0.0, g.total_subarrays());
        let m = BaselineMapping.map(10, &g, &p, 1.0).unwrap();
        let t = inference_trace(&m, 3);
        assert_eq!(t.len(), 30);
        let expanded = t.expand();
        assert_eq!(expanded.accesses()[0].coord, expanded.accesses()[10].coord);
        // `repeat` replaces materialized copies: the op sequence stays that
        // of a single pass.
        assert_eq!(t.repeat(), 3);
        assert_eq!(t.num_ops(), inference_trace(&m, 1).num_ops());
    }

    #[test]
    fn zero_passes_is_an_empty_trace() {
        let g = DramGeometry::tiny();
        let p = ErrorProfile::uniform(0.0, g.total_subarrays());
        let m = BaselineMapping.map(10, &g, &p, 1.0).unwrap();
        let t = inference_trace(&m, 0);
        assert!(t.is_empty());
        assert!(t.expand().is_empty());
    }

    #[test]
    fn multi_pass_trace_replays_like_materialized_copies() {
        use sparkxd_dram::{DramConfig, DramModel};
        let g = DramGeometry::tiny();
        let p = ErrorProfile::uniform(0.0, g.total_subarrays());
        let m = BaselineMapping.map(20, &g, &p, 1.0).unwrap();
        let compressed = inference_trace(&m, 4);
        let mut materialized = sparkxd_dram::AccessTrace::new();
        for _ in 0..4 {
            materialized.extend(m.read_trace().expand());
        }
        let config = DramConfig::tiny();
        let batch = DramModel::new(config.clone()).replay_compressed(&compressed);
        let reference = DramModel::new(config).replay(&materialized);
        assert_eq!(batch, reference);
    }

    #[test]
    fn workload_counts_weight_bytes() {
        let cfg = SnnConfig::for_neurons(100);
        let w = workload_for_network(&cfg, 0.1);
        assert_eq!(w.memory_bytes, 784 * 100 * 4);
        assert!(w.synaptic_ops > 0);
    }
}
