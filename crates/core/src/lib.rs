//! # sparkxd-core
//!
//! The SparkXD framework (paper Section IV): a conjoint solution for
//! resilient and energy-efficient SNN inference on approximate DRAM.
//!
//! The three mechanisms, mirroring the paper's Fig. 7 flow:
//!
//! 1. **Improving the SNN error tolerance** ([`training`], Algorithm 1):
//!    bit errors from the DRAM error model are injected into the synaptic
//!    weights during training, with the BER raised step by step, so the
//!    network learns to tolerate weight corruption.
//! 2. **Analyzing the error tolerance** ([`tolerance`]): a linear search
//!    over BER values finds the maximum tolerable BER (`BER_th`) whose
//!    accuracy still meets the user-specified target.
//! 3. **DRAM mapping for the improved SNN** ([`mapping`], Algorithm 2):
//!    weights are placed only in subarrays whose error rate ≤ `BER_th`,
//!    filling rows column-first and striping across banks to maximise
//!    row-buffer hits and exploit the multi-bank burst feature.
//!
//! [`pipeline`] wires all three together with the DRAM, energy and error
//! substrates and reports accuracy, `BER_th`, energy and throughput —
//! everything behind the paper's Figs. 8/11/12 and Table I.
//!
//! ## Example
//!
//! ```no_run
//! use sparkxd_core::pipeline::{PipelineConfig, SparkXdPipeline};
//!
//! let outcome = SparkXdPipeline::new(PipelineConfig::small_demo(42))
//!     .run()
//!     .expect("pipeline");
//! println!(
//!     "BER_th {:.1e}; DRAM energy saving {:.1}%",
//!     outcome.max_tolerable_ber,
//!     outcome.energy.saving_fraction_vs_baseline() * 100.0
//! );
//! ```

pub mod energy_eval;
pub mod mapping;
pub mod pipeline;
pub mod sweep;
pub mod tiers;
pub mod tolerance;
pub mod trace_gen;
pub mod training;

pub use energy_eval::{EnergyComparison, EnergyEvaluation};
pub use mapping::{BaselineMapping, Mapping, MappingPolicy, SafeSequentialMapping, SparkXdMapping};
pub use pipeline::{PipelineConfig, PipelineOutcome, SparkXdPipeline};
pub use sweep::{DeviceSweep, DeviceSweepReport, SweepStat};
pub use tiers::{TierBuilder, TierModel, TierSet};
pub use tolerance::{analyze_tolerance, ToleranceCurve};
pub use training::{FaultAwareOutcome, FaultAwareTrainer, TrainingConfig};

/// Errors reported by the SparkXD framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The safe subarrays cannot hold the weight image.
    InsufficientSafeCapacity {
        /// Columns required by the weight image.
        needed: usize,
        /// Columns available in safe subarrays.
        available: usize,
    },
    /// No BER in the schedule met the accuracy target.
    NoToleratedBer,
    /// A device sweep was started with no device seeds.
    EmptySweep,
    /// A voltage-tier set was requested with no supply voltages.
    EmptyTierSet,
    /// Underlying SNN error.
    Snn(sparkxd_snn::SnnError),
    /// Underlying injection error.
    Inject(sparkxd_error::InjectError),
    /// Underlying circuit-model error.
    Circuit(sparkxd_circuit::CircuitError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InsufficientSafeCapacity { needed, available } => write!(
                f,
                "safe subarrays hold {available} columns but the model needs {needed}"
            ),
            CoreError::NoToleratedBer => {
                write!(
                    f,
                    "no bit error rate in the schedule met the accuracy target"
                )
            }
            CoreError::EmptySweep => {
                write!(f, "device sweep needs at least one device seed")
            }
            CoreError::EmptyTierSet => {
                write!(f, "tier set needs at least one supply voltage")
            }
            CoreError::Snn(e) => write!(f, "snn: {e}"),
            CoreError::Inject(e) => write!(f, "injection: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sparkxd_snn::SnnError> for CoreError {
    fn from(e: sparkxd_snn::SnnError) -> Self {
        CoreError::Snn(e)
    }
}

impl From<sparkxd_error::InjectError> for CoreError {
    fn from(e: sparkxd_error::InjectError) -> Self {
        CoreError::Inject(e)
    }
}

impl From<sparkxd_circuit::CircuitError> for CoreError {
    fn from(e: sparkxd_circuit::CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e: CoreError = sparkxd_snn::SnnError::EmptyDataset.into();
        assert!(e.to_string().contains("snn"));
        let e = CoreError::InsufficientSafeCapacity {
            needed: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
