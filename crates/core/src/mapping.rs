//! DRAM mapping policies (paper Section IV-D, Algorithm 2).
//!
//! A *mapping* is the ordered list of DRAM burst columns that hold the
//! weight image. From it we derive both the inference access trace (for the
//! DRAM/energy models) and the per-word physical placements (for error
//! injection).

use crate::CoreError;
use sparkxd_dram::{Access, AddressOrder, CompressedTrace, DramCoord, DramGeometry, SubarrayId};
use sparkxd_error::{ErrorProfile, WordPlacement};
use sparkxd_snn::WeightPrecision;

/// An ordered assignment of burst columns to the weight image.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    policy: &'static str,
    geometry: DramGeometry,
    columns: Vec<DramCoord>,
    precision: WeightPrecision,
}

impl Mapping {
    /// Builds a mapping from explicit columns, storing FP32 words. For a
    /// packed quantised image, chain [`with_precision`](Self::with_precision).
    pub fn from_columns(
        policy: &'static str,
        geometry: DramGeometry,
        columns: Vec<DramCoord>,
    ) -> Self {
        Self {
            policy,
            geometry,
            columns,
            precision: WeightPrecision::Fp32,
        }
    }

    /// Re-tags the mapping with the word width of the image it holds —
    /// the columns are unchanged, but capacity, placements and bit
    /// offsets follow the precision's
    /// [`bytes_per_word`](WeightPrecision::bytes_per_word).
    pub fn with_precision(mut self, precision: WeightPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Word width of the stored image.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Name of the policy that produced this mapping.
    pub fn policy(&self) -> &'static str {
        self.policy
    }

    /// The geometry the mapping targets.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Mapped columns in streaming order.
    pub fn columns(&self) -> &[DramCoord] {
        &self.columns
    }

    /// Number of mapped columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if no columns are mapped.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Read trace streaming the whole weight image once (one inference
    /// pass in the paper's system model), emitted directly in run-length
    /// compressed form: the baseline and SparkXD orders fill rows
    /// column-by-column, so the trace collapses to one op per row visit.
    /// Use [`CompressedTrace::expand`] when per-access form is needed.
    pub fn read_trace(&self) -> CompressedTrace {
        self.columns.iter().map(|&c| Access::read(c)).collect()
    }

    /// Number of weight words per burst column at this mapping's word
    /// width (e.g. 4 for FP32 / 16 for int8 at 16-byte columns).
    pub fn words_per_column(&self) -> usize {
        self.geometry.col_bytes / self.precision.bytes_per_word()
    }

    /// Physical placement of each of the first `n_words` weight words.
    ///
    /// # Panics
    ///
    /// Panics if `n_words` exceeds the mapped capacity.
    pub fn placements(&self, n_words: usize) -> Vec<WordPlacement> {
        let wpc = self.words_per_column();
        assert!(
            n_words <= self.columns.len() * wpc,
            "mapping holds {} words, {} requested",
            self.columns.len() * wpc,
            n_words
        );
        (0..n_words)
            .map(|w| {
                let coord = &self.columns[w / wpc];
                let word_in_col = w % wpc;
                let subarray = self.geometry.subarray_id(coord);
                WordPlacement {
                    subarray,
                    global_row: (subarray.0 * self.geometry.rows_per_subarray + coord.row) as u64,
                    bit_offset_in_row: (coord.col * self.geometry.col_bytes * 8
                        + word_in_col * self.precision.word_bits() as usize)
                        as u32,
                }
            })
            .collect()
    }

    /// Distinct subarrays used by the mapping.
    pub fn subarrays_used(&self) -> Vec<SubarrayId> {
        let mut ids: Vec<SubarrayId> = self
            .columns
            .iter()
            .map(|c| self.geometry.subarray_id(c))
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// A policy for placing the weight image into DRAM.
pub trait MappingPolicy {
    /// Short policy name used in reports.
    fn name(&self) -> &'static str;

    /// Maps `n_columns` burst columns, honouring the per-subarray error
    /// `profile` and the model's maximum tolerable BER `ber_threshold`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InsufficientSafeCapacity`] if the eligible subarrays
    /// cannot hold the image.
    fn map(
        &self,
        n_columns: usize,
        geometry: &DramGeometry,
        profile: &ErrorProfile,
        ber_threshold: f64,
    ) -> Result<Mapping, CoreError>;
}

/// The paper's baseline: weights fill subsequent addresses of a bank
/// (row-major), spilling into the next bank — maximising burst locality but
/// ignoring the error profile entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineMapping;

impl MappingPolicy for BaselineMapping {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn map(
        &self,
        n_columns: usize,
        geometry: &DramGeometry,
        _profile: &ErrorProfile,
        _ber_threshold: f64,
    ) -> Result<Mapping, CoreError> {
        let capacity = geometry.capacity_cols() as usize;
        if n_columns > capacity {
            return Err(CoreError::InsufficientSafeCapacity {
                needed: n_columns,
                available: capacity,
            });
        }
        let columns = (0..n_columns as u64)
            .map(|a| {
                geometry
                    .linear_to_coord(a, AddressOrder::BaselineRowMajor)
                    .expect("bounded by capacity check")
            })
            .collect();
        Ok(Mapping::from_columns(self.name(), *geometry, columns))
    }
}

/// The SparkXD mapping of Algorithm 2: only subarrays whose error rate is
/// at or below `BER_th` are used; within the eligible set, columns of the
/// same row are filled first (row-buffer hits) and rows are visited across
/// banks (multi-bank burst), exactly following the paper's loop nest
/// `ch → ra → cp → ro → su → ba → co`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SparkXdMapping;

impl MappingPolicy for SparkXdMapping {
    fn name(&self) -> &'static str {
        "sparkxd"
    }

    fn map(
        &self,
        n_columns: usize,
        geometry: &DramGeometry,
        profile: &ErrorProfile,
        ber_threshold: f64,
    ) -> Result<Mapping, CoreError> {
        let g = geometry;
        let mut columns = Vec::with_capacity(n_columns);
        'outer: for ch in 0..g.channels {
            for ra in 0..g.ranks {
                for cp in 0..g.chips {
                    for ro in 0..g.rows_per_subarray {
                        for su in 0..g.subarrays_per_bank {
                            for ba in 0..g.banks {
                                let probe = DramCoord {
                                    channel: ch,
                                    rank: ra,
                                    chip: cp,
                                    bank: ba,
                                    subarray: su,
                                    row: ro,
                                    col: 0,
                                };
                                let rate = profile.ber(g.subarray_id(&probe));
                                if rate > ber_threshold {
                                    continue; // unsafe subarray (Alg. 2 line 7)
                                }
                                for co in 0..g.cols_per_row {
                                    columns.push(DramCoord { col: co, ..probe });
                                    if columns.len() == n_columns {
                                        break 'outer;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if columns.len() < n_columns {
            return Err(CoreError::InsufficientSafeCapacity {
                needed: n_columns,
                available: columns.len(),
            });
        }
        Ok(Mapping::from_columns(self.name(), *g, columns))
    }
}

/// Ablation policy: restricts placement to safe subarrays like SparkXD but
/// keeps the baseline row-major order within them (no bank striping) —
/// isolates how much of SparkXD's throughput comes from the multi-bank
/// burst exploitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SafeSequentialMapping;

impl MappingPolicy for SafeSequentialMapping {
    fn name(&self) -> &'static str {
        "safe-sequential"
    }

    fn map(
        &self,
        n_columns: usize,
        geometry: &DramGeometry,
        profile: &ErrorProfile,
        ber_threshold: f64,
    ) -> Result<Mapping, CoreError> {
        let g = geometry;
        let mut columns = Vec::with_capacity(n_columns);
        'outer: for ch in 0..g.channels {
            for ra in 0..g.ranks {
                for cp in 0..g.chips {
                    for ba in 0..g.banks {
                        for su in 0..g.subarrays_per_bank {
                            let probe = DramCoord {
                                channel: ch,
                                rank: ra,
                                chip: cp,
                                bank: ba,
                                subarray: su,
                                row: 0,
                                col: 0,
                            };
                            if profile.ber(g.subarray_id(&probe)) > ber_threshold {
                                continue;
                            }
                            for ro in 0..g.rows_per_subarray {
                                for co in 0..g.cols_per_row {
                                    columns.push(DramCoord {
                                        row: ro,
                                        col: co,
                                        ..probe
                                    });
                                    if columns.len() == n_columns {
                                        break 'outer;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if columns.len() < n_columns {
            return Err(CoreError::InsufficientSafeCapacity {
                needed: n_columns,
                available: columns.len(),
            });
        }
        Ok(Mapping::from_columns(self.name(), *g, columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sparkxd_dram::DramGeometry;

    fn tiny() -> DramGeometry {
        DramGeometry::tiny()
    }

    fn uniform_profile(g: &DramGeometry, ber: f64) -> ErrorProfile {
        ErrorProfile::uniform(ber, g.total_subarrays())
    }

    #[test]
    fn baseline_maps_sequentially() {
        let g = tiny();
        let p = uniform_profile(&g, 1e-4);
        let m = BaselineMapping.map(20, &g, &p, 1e-9).unwrap();
        assert_eq!(m.len(), 20);
        // First row fills before the second row starts.
        assert!(m.columns()[..8].iter().all(|c| c.row == 0 && c.bank == 0));
        assert_eq!(m.columns()[8].row, 1);
    }

    #[test]
    fn sparkxd_skips_unsafe_subarrays() {
        let g = tiny();
        // Subarrays alternate safe/unsafe.
        let rates: Vec<f64> = (0..g.total_subarrays())
            .map(|i| if i % 2 == 0 { 1e-8 } else { 1e-2 })
            .collect();
        let p = ErrorProfile::from_rates(1e-5, rates);
        let m = SparkXdMapping.map(32, &g, &p, 1e-5).unwrap();
        for c in m.columns() {
            let id = g.subarray_id(c);
            assert_eq!(id.0 % 2, 0, "column {c} placed in unsafe subarray");
        }
    }

    #[test]
    fn sparkxd_stripes_across_banks() {
        let g = tiny();
        let p = uniform_profile(&g, 1e-8);
        // Two rows' worth of columns must span both banks.
        let m = SparkXdMapping
            .map(g.cols_per_row * 2, &g, &p, 1e-5)
            .unwrap();
        let banks: std::collections::HashSet<_> = m.columns().iter().map(|c| c.bank).collect();
        assert_eq!(banks.len(), 2, "expected both banks used");
        // Within one row's worth, the columns share a (bank, row) pair.
        let first = &m.columns()[..g.cols_per_row];
        assert!(first
            .iter()
            .all(|c| c.bank == first[0].bank && c.row == first[0].row));
    }

    #[test]
    fn insufficient_safe_capacity_is_an_error() {
        let g = tiny();
        // Everything unsafe.
        let p = uniform_profile(&g, 1e-2);
        let err = SparkXdMapping.map(8, &g, &p, 1e-5);
        assert!(matches!(
            err,
            Err(CoreError::InsufficientSafeCapacity { available: 0, .. })
        ));
    }

    #[test]
    fn baseline_rejects_oversized_image() {
        let g = tiny();
        let p = uniform_profile(&g, 0.0);
        let cap = g.capacity_cols() as usize;
        assert!(BaselineMapping.map(cap + 1, &g, &p, 1.0).is_err());
        assert!(BaselineMapping.map(cap, &g, &p, 1.0).is_ok());
    }

    #[test]
    fn placements_are_consistent_with_columns() {
        let g = tiny();
        let p = uniform_profile(&g, 1e-8);
        let m = SparkXdMapping.map(4, &g, &p, 1e-5).unwrap();
        let wpc = m.words_per_column();
        let placements = m.placements(4 * wpc);
        assert_eq!(placements.len(), 4 * wpc);
        // Words of the same column share a subarray and row.
        for w in 0..wpc {
            assert_eq!(placements[w].subarray, placements[0].subarray);
            assert_eq!(placements[w].global_row, placements[0].global_row);
        }
        // Bit offsets advance by 32 within a column.
        assert_eq!(
            placements[1].bit_offset_in_row,
            placements[0].bit_offset_in_row + 32
        );
    }

    #[test]
    fn precision_scales_words_per_column_and_bit_offsets() {
        let g = tiny();
        let p = uniform_profile(&g, 1e-8);
        let f32_map = SparkXdMapping.map(4, &g, &p, 1e-5).unwrap();
        assert_eq!(f32_map.precision(), WeightPrecision::Fp32);
        assert_eq!(f32_map.words_per_column(), g.col_bytes / 4);

        let int8_map = f32_map.clone().with_precision(WeightPrecision::Int8);
        assert_eq!(int8_map.words_per_column(), g.col_bytes);
        assert_eq!(
            int8_map.words_per_column(),
            4 * f32_map.words_per_column(),
            "int8 packs 4× the words per burst column"
        );
        // Same columns, so the same trace — only the word geometry shifts.
        assert_eq!(int8_map.columns(), f32_map.columns());

        let placements = int8_map.placements(4 * int8_map.words_per_column());
        assert_eq!(
            placements[1].bit_offset_in_row,
            placements[0].bit_offset_in_row + 8,
            "int8 words step by 8 bitlines"
        );
        // A full column's worth of words shares its subarray and row.
        let wpc = int8_map.words_per_column();
        for w in 0..wpc {
            assert_eq!(placements[w].subarray, placements[0].subarray);
            assert_eq!(placements[w].global_row, placements[0].global_row);
        }
        // The capacity check follows the packed width: 4 columns hold
        // 4×wpc int8 words, one more panics.
        let result = std::panic::catch_unwind(|| int8_map.placements(4 * wpc + 1));
        assert!(result.is_err());
    }

    #[test]
    fn safe_sequential_also_respects_threshold() {
        let g = tiny();
        let rates: Vec<f64> = (0..g.total_subarrays())
            .map(|i| if i == 0 { 1e-8 } else { 1e-2 })
            .collect();
        let p = ErrorProfile::from_rates(1e-5, rates);
        let m = SafeSequentialMapping
            .map(g.cols_per_row * 2, &g, &p, 1e-5)
            .unwrap();
        assert!(m.columns().iter().all(|c| g.subarray_id(c).0 == 0));
    }

    #[test]
    fn read_trace_covers_all_columns_in_order() {
        let g = tiny();
        let p = uniform_profile(&g, 1e-8);
        let m = BaselineMapping.map(10, &g, &p, 1.0).unwrap();
        let t = m.read_trace();
        assert_eq!(t.len(), 10);
        let expanded = t.expand();
        assert_eq!(expanded.accesses()[3].coord, m.columns()[3]);
        // Sequential columns collapse into runs: 10 columns over rows of 8
        // is two ops, not ten.
        assert_eq!(t.num_ops(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn sparkxd_never_places_in_unsafe_subarrays(seed in 0u64..500, n in 1usize..64) {
            let g = tiny();
            let map = sparkxd_error::WeakCellMap::generate(&g, seed);
            let p = map.profile(1e-5);
            let threshold = 2e-5;
            if let Ok(m) = SparkXdMapping.map(n, &g, &p, threshold) {
                for c in m.columns() {
                    prop_assert!(p.ber(g.subarray_id(c)) <= threshold);
                }
            }
        }

        #[test]
        fn mapped_columns_are_unique(n in 1usize..128) {
            let g = tiny();
            let p = uniform_profile(&g, 1e-8);
            let m = SparkXdMapping.map(n, &g, &p, 1e-5).unwrap();
            let mut set = std::collections::HashSet::new();
            for c in m.columns() {
                prop_assert!(set.insert(*c), "duplicate column {c}");
            }
        }
    }
}
