//! Per-request voltage-tier selection.
//!
//! Every tier in a [`TierSet`](sparkxd_core::TierSet) trades accuracy
//! against DRAM energy and latency; a [`RoutePolicy`] states which side of
//! that trade a request cares about, and the [`Router`] resolves it to a
//! tier index. Routing is a pure function of `(policy, tier table)` — no
//! queue state, no clock — so the same request always lands on the same
//! tier regardless of worker count, batch size or arrival timing. The
//! scheduler-determinism suite leans on exactly that.

use sparkxd_circuit::Volt;
use sparkxd_core::TierModel;

/// What a request wants from the accuracy/energy/latency trade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutePolicy {
    /// Cheapest (lowest DRAM energy) tier whose calibration accuracy is at
    /// least this floor; falls back to the most accurate tier when no tier
    /// reaches the floor.
    AccuracyFloor(f64),
    /// Most accurate tier whose per-pass DRAM energy is within this budget
    /// (mJ); falls back to the cheapest tier when even it exceeds the
    /// budget.
    EnergyBudget(f64),
    /// Most accurate tier whose single-pass DRAM latency fits this slack
    /// (ns); falls back to the fastest tier when none fits.
    DeadlineSlack(f64),
}

/// The routing-relevant tags of one tier, copied out of the
/// [`TierModel`] so snapshots and reports don't drag model weights along.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierInfo {
    /// Supply voltage of the tier.
    pub v_supply: Volt,
    /// Calibration-set accuracy of the tier's corrupted model.
    pub accuracy_estimate: f64,
    /// DRAM energy (mJ) of one weight-image pass.
    pub dram_pass_mj: f64,
    /// DRAM latency (ns) of one weight-image pass.
    pub dram_pass_ns: f64,
}

impl TierInfo {
    /// Extracts the routing tags of `tier`.
    pub fn of(tier: &TierModel) -> Self {
        Self {
            v_supply: tier.v_supply,
            accuracy_estimate: tier.accuracy_estimate,
            dram_pass_mj: tier.dram_pass_mj,
            dram_pass_ns: tier.dram_pass_ns,
        }
    }
}

/// Resolves [`RoutePolicy`] values against a fixed tier table.
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    tiers: Vec<TierInfo>,
    /// Tier indices ascending by per-pass energy (ties keep table order).
    by_energy: Vec<usize>,
    /// Tier indices descending by accuracy estimate (ties keep table
    /// order).
    by_accuracy: Vec<usize>,
}

impl Router {
    /// Builds a router over the tier table (panics on an empty table — a
    /// service without tiers cannot answer anything).
    pub fn new(tiers: Vec<TierInfo>) -> Self {
        assert!(!tiers.is_empty(), "router needs at least one tier");
        let mut by_energy: Vec<usize> = (0..tiers.len()).collect();
        by_energy.sort_by(|&a, &b| tiers[a].dram_pass_mj.total_cmp(&tiers[b].dram_pass_mj));
        let mut by_accuracy: Vec<usize> = (0..tiers.len()).collect();
        by_accuracy.sort_by(|&a, &b| {
            tiers[b]
                .accuracy_estimate
                .total_cmp(&tiers[a].accuracy_estimate)
        });
        Self {
            tiers,
            by_energy,
            by_accuracy,
        }
    }

    /// The tier table the router resolves against.
    pub fn tiers(&self) -> &[TierInfo] {
        &self.tiers
    }

    /// Resolves `policy` to a tier index. Total: every policy has a
    /// defined fallback, so routing never fails.
    pub fn route(&self, policy: RoutePolicy) -> usize {
        // Observation only: decision counts per policy shape; routing
        // itself stays a pure function of `(policy, tier table)`.
        sparkxd_telemetry::counter_add!("serve.routes", 1);
        match policy {
            RoutePolicy::AccuracyFloor(_) => {
                sparkxd_telemetry::counter_add!("serve.route_accuracy_floor", 1)
            }
            RoutePolicy::EnergyBudget(_) => {
                sparkxd_telemetry::counter_add!("serve.route_energy_budget", 1)
            }
            RoutePolicy::DeadlineSlack(_) => {
                sparkxd_telemetry::counter_add!("serve.route_deadline_slack", 1)
            }
        }
        match policy {
            RoutePolicy::AccuracyFloor(floor) => self
                .by_energy
                .iter()
                .copied()
                .find(|&i| self.tiers[i].accuracy_estimate >= floor)
                .unwrap_or(self.by_accuracy[0]),
            RoutePolicy::EnergyBudget(budget_mj) => self
                .by_accuracy
                .iter()
                .copied()
                .find(|&i| self.tiers[i].dram_pass_mj <= budget_mj)
                .unwrap_or(self.by_energy[0]),
            RoutePolicy::DeadlineSlack(slack_ns) => self
                .by_accuracy
                .iter()
                .copied()
                .find(|&i| self.tiers[i].dram_pass_ns <= slack_ns)
                .unwrap_or_else(|| self.fastest()),
        }
    }

    /// Index of the tier with the smallest per-pass latency.
    fn fastest(&self) -> usize {
        (0..self.tiers.len())
            .min_by(|&a, &b| {
                self.tiers[a]
                    .dram_pass_ns
                    .total_cmp(&self.tiers[b].dram_pass_ns)
            })
            .expect("non-empty table")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tiers mirroring a real ladder: lower voltage = cheaper and
    /// less accurate.
    fn table() -> Vec<TierInfo> {
        vec![
            TierInfo {
                v_supply: Volt(1.025),
                accuracy_estimate: 0.70,
                dram_pass_mj: 1.0,
                dram_pass_ns: 900.0,
            },
            TierInfo {
                v_supply: Volt(1.1),
                accuracy_estimate: 0.80,
                dram_pass_mj: 1.4,
                dram_pass_ns: 1_000.0,
            },
            TierInfo {
                v_supply: Volt(1.175),
                accuracy_estimate: 0.85,
                dram_pass_mj: 1.9,
                dram_pass_ns: 1_100.0,
            },
        ]
    }

    #[test]
    fn accuracy_floor_picks_cheapest_sufficient_tier() {
        let r = Router::new(table());
        assert_eq!(r.route(RoutePolicy::AccuracyFloor(0.0)), 0);
        assert_eq!(r.route(RoutePolicy::AccuracyFloor(0.75)), 1);
        assert_eq!(r.route(RoutePolicy::AccuracyFloor(0.84)), 2);
        // Unreachable floor: most accurate tier as the fallback.
        assert_eq!(r.route(RoutePolicy::AccuracyFloor(0.99)), 2);
    }

    #[test]
    fn energy_budget_picks_most_accurate_affordable_tier() {
        let r = Router::new(table());
        assert_eq!(r.route(RoutePolicy::EnergyBudget(5.0)), 2);
        assert_eq!(r.route(RoutePolicy::EnergyBudget(1.5)), 1);
        assert_eq!(r.route(RoutePolicy::EnergyBudget(1.1)), 0);
        // Impossible budget: cheapest tier as the fallback.
        assert_eq!(r.route(RoutePolicy::EnergyBudget(0.1)), 0);
    }

    #[test]
    fn deadline_slack_picks_most_accurate_fitting_tier() {
        let r = Router::new(table());
        assert_eq!(r.route(RoutePolicy::DeadlineSlack(2_000.0)), 2);
        assert_eq!(r.route(RoutePolicy::DeadlineSlack(1_050.0)), 1);
        assert_eq!(r.route(RoutePolicy::DeadlineSlack(950.0)), 0);
        // No tier fits: fastest tier as the fallback.
        assert_eq!(r.route(RoutePolicy::DeadlineSlack(10.0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_table_panics() {
        Router::new(vec![]);
    }
}
