//! Deterministic open-loop load generation.
//!
//! An arrival trace is a seeded, fully precomputed schedule: offsets from
//! a Poisson process at the requested rate (or zero offsets for a
//! saturation burst), sample indices cycling through a dataset, and a
//! policy drawn per request from a mix. **Open loop** means the generator
//! submits at trace time regardless of completions — the standard way to
//! expose queueing behaviour instead of measuring the closed-loop
//! round-trip of one client.
//!
//! Trace generation is pure given `(spec, dataset length)`; replay timing
//! varies with the machine, but the submitted `(id, sample, policy)`
//! stream — and therefore every response's `(label, tier)` — does not.

use crate::router::RoutePolicy;
use crate::service::{ServeRequest, SparkXdService, SubmitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkxd_data::Dataset;
use std::time::{Duration, Instant};

/// Parameters of one synthetic load.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Requests to generate.
    pub requests: usize,
    /// Mean arrival rate (requests/second) of the Poisson process;
    /// non-finite or non-positive rates collapse every offset to zero (a
    /// saturation burst).
    pub rate_per_sec: f64,
    /// Seed of the arrival/policy RNG.
    pub seed: u64,
    /// Policies drawn uniformly per request (must be non-empty).
    pub policy_mix: Vec<RoutePolicy>,
}

/// One scheduled request of an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Submission time as an offset from replay start (ns).
    pub at_ns: u64,
    /// Dataset sample index presented by this request.
    pub sample_index: usize,
    /// The request's routing policy.
    pub policy: RoutePolicy,
}

/// Exponential inter-arrival gap (ns) at mean `mean_gap_ns` via inverse
/// transform sampling of uniform draw `u`.
///
/// `u` is clamped into `[0, 1 - ε/2]` (the largest double below 1.0)
/// before the `(1 - u)` flip, so `ln` never sees 0: an RNG that can emit
/// exactly 1.0 — or a corrupted non-finite draw, which collapses to 0 —
/// would otherwise produce an infinite gap that saturates the arrival
/// clock at `u64::MAX` and freezes every remaining arrival at infinity.
/// The clamp caps a single gap at `≈ 36.7 × mean_gap_ns`, the honest
/// tail of a 53-bit uniform draw.
fn exponential_gap_ns(u: f64, mean_gap_ns: f64) -> u64 {
    const U_MAX: f64 = 1.0 - f64::EPSILON / 2.0;
    let u = if u.is_finite() {
        u.clamp(0.0, U_MAX)
    } else {
        0.0
    };
    // `as` saturates on overflow, so a huge mean cannot wrap either.
    (-(1.0 - u).ln() * mean_gap_ns) as u64
}

/// Generates the seeded arrival trace of `spec` over a dataset of
/// `dataset_len` samples (sample indices cycle).
///
/// # Panics
///
/// Panics when the policy mix is empty or `dataset_len` is zero.
pub fn arrival_trace(spec: &LoadSpec, dataset_len: usize) -> Vec<Arrival> {
    assert!(!spec.policy_mix.is_empty(), "policy mix must be non-empty");
    assert!(dataset_len > 0, "dataset must be non-empty");
    let paced = spec.rate_per_sec.is_finite() && spec.rate_per_sec > 0.0;
    let mean_gap_ns = if paced { 1e9 / spec.rate_per_sec } else { 0.0 };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut at_ns = 0u64;
    (0..spec.requests)
        .map(|i| {
            if paced {
                let u: f64 = rng.gen();
                at_ns = at_ns.saturating_add(exponential_gap_ns(u, mean_gap_ns));
            }
            let policy = spec.policy_mix[rng.gen_range(0..spec.policy_mix.len())];
            Arrival {
                at_ns,
                sample_index: i % dataset_len,
                policy,
            }
        })
        .collect()
}

/// Outcome of one open-loop replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Requests the service admitted.
    pub accepted: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Wall time from first to last submission.
    pub submit_wall: Duration,
}

/// Replays `trace` against `service`, open loop: each request is
/// submitted at its scheduled offset (never waiting for completions),
/// with request id = trace position. Returns the admission tally.
///
/// # Panics
///
/// Panics on [`SubmitError::InputSizeMismatch`] or
/// [`SubmitError::ShuttingDown`] — both are harness bugs, not load
/// behaviour.
pub fn replay_open_loop(
    service: &SparkXdService,
    dataset: &Dataset,
    trace: &[Arrival],
) -> ReplayOutcome {
    let start = Instant::now();
    let mut accepted = 0;
    let mut rejected = 0;
    for (id, arrival) in trace.iter().enumerate() {
        let target = start + Duration::from_nanos(arrival.at_ns);
        if let Some(sleep) = target.checked_duration_since(Instant::now()) {
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        let (image, _) = dataset.get(arrival.sample_index);
        match service.submit(ServeRequest {
            id: id as u64,
            pixels: image.pixels().to_vec(),
            policy: arrival.policy,
        }) {
            Ok(_) => accepted += 1,
            Err(SubmitError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("open-loop replay hit a harness bug: {e}"),
        }
    }
    ReplayOutcome {
        accepted,
        rejected,
        submit_wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64) -> LoadSpec {
        LoadSpec {
            requests: 200,
            rate_per_sec: rate,
            seed: 42,
            policy_mix: vec![
                RoutePolicy::AccuracyFloor(0.5),
                RoutePolicy::EnergyBudget(1.0),
            ],
        }
    }

    #[test]
    fn trace_is_deterministic_and_monotone() {
        let a = arrival_trace(&spec(5_000.0), 30);
        let b = arrival_trace(&spec(5_000.0), 30);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for pair in a.windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns, "offsets must be sorted");
        }
        assert!(a.iter().all(|arr| arr.sample_index < 30));
        // Both policies should appear in a 200-request draw.
        assert!(a
            .iter()
            .any(|arr| arr.policy == RoutePolicy::AccuracyFloor(0.5)));
        assert!(a
            .iter()
            .any(|arr| arr.policy == RoutePolicy::EnergyBudget(1.0)));
    }

    #[test]
    fn trace_rate_matches_the_mean_gap() {
        let trace = arrival_trace(&spec(10_000.0), 10);
        let total_ns = trace.last().unwrap().at_ns as f64;
        let mean_gap = total_ns / (trace.len() - 1) as f64;
        // Mean of 199 exponential gaps at 100 µs: comfortably within 3x.
        assert!((30_000.0..300_000.0).contains(&mean_gap), "gap {mean_gap}");
    }

    #[test]
    fn burst_trace_has_zero_offsets() {
        for rate in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            let trace = arrival_trace(&spec(rate), 10);
            assert!(trace.iter().all(|a| a.at_ns == 0), "rate {rate}");
        }
    }

    #[test]
    fn seeds_produce_distinct_traces() {
        let mut other = spec(5_000.0);
        other.seed = 43;
        assert_ne!(arrival_trace(&spec(5_000.0), 30), arrival_trace(&other, 30));
    }

    #[test]
    fn extreme_uniform_draws_never_freeze_the_arrival_clock() {
        // Regression: u == 1.0 used to yield `-ln(0) = ∞`, whose cast
        // saturates to u64::MAX — every later arrival frozen at infinity.
        let mean = 100_000.0; // 10k req/s
        let bound = (37.0 * mean) as u64;
        for u in [1.0, 1.0 - f64::EPSILON / 2.0, f64::NAN, f64::INFINITY, 2.0] {
            let gap = exponential_gap_ns(u, mean);
            assert!(gap <= bound, "u={u}: gap {gap} breaches the clamp bound");
        }
        assert_eq!(exponential_gap_ns(0.0, mean), 0);
        assert_eq!(exponential_gap_ns(f64::NAN, mean), 0, "corrupt draw → 0");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// Property: over the whole closed unit interval — including the
        /// endpoint the RNG is never supposed to emit — a gap is finite,
        /// bounded by the clamp tail, and zero exactly at u = 0.
        #[test]
        fn any_unit_draw_yields_a_bounded_gap(u in 0.0f64..=1.0) {
            let mean = 1e6;
            let gap = exponential_gap_ns(u, mean);
            proptest::prop_assert!(gap <= (37.0 * mean) as u64);
            if u == 0.0 {
                proptest::prop_assert_eq!(gap, 0);
            }
        }
    }
}
