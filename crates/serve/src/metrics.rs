//! Serving metrics: latency percentiles, throughput, per-tier energy and
//! hit accounting.
//!
//! The recorder sits behind one mutex; workers touch it once per *chunk*
//! plus once per response, which is noise next to an SNN inference
//! (hundreds of microseconds each). Timing-derived numbers (latencies,
//! throughput) naturally vary run to run — only the request→response
//! mapping is deterministic — so the snapshot keeps them clearly separated
//! from the deterministic per-tier hit counts.

use sparkxd_telemetry::Histogram;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deterministic per-tier accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounters {
    /// Requests answered by this tier.
    pub hits: u64,
    /// Batches (weight-image DRAM passes) this tier served.
    pub batches: u64,
}

/// Mutable interior of [`ServiceMetrics`].
#[derive(Debug, Default)]
struct MetricsCore {
    /// End-to-end latency (enqueue → response) of every completed
    /// request, as a fixed-bucket log2 histogram — constant memory over
    /// any service lifetime, so no sample ring or windowing is needed
    /// (the predecessor kept the most recent 2^20 samples and sorted
    /// them per snapshot).
    latencies_ns: Histogram,
    /// All-time completion count.
    completed: u64,
    per_tier: Vec<TierCounters>,
    /// DRAM energy per tier (mJ): passes × per-pass energy.
    tier_energy_mj: Vec<f64>,
    rejected: u64,
    first_completion: Option<Instant>,
    last_completion: Option<Instant>,
}

/// Shared metrics recorder of one service instance.
#[derive(Debug)]
pub struct ServiceMetrics {
    core: Mutex<MetricsCore>,
}

impl ServiceMetrics {
    /// A fresh recorder for `n_tiers` tiers.
    pub fn new(n_tiers: usize) -> Self {
        Self {
            core: Mutex::new(MetricsCore {
                per_tier: vec![TierCounters::default(); n_tiers],
                tier_energy_mj: vec![0.0; n_tiers],
                ..MetricsCore::default()
            }),
        }
    }

    /// Records one admission-control rejection.
    pub fn record_rejection(&self) {
        self.core.lock().expect("metrics lock").rejected += 1;
    }

    /// Records one dispatched chunk: `len` requests served by `tier` in a
    /// single weight-image pass, with the member requests' end-to-end
    /// latencies.
    pub fn record_chunk(&self, tier: usize, len: usize, pass_mj: f64, latencies_ns: &[u64]) {
        let now = Instant::now();
        let mut core = self.core.lock().expect("metrics lock");
        core.per_tier[tier].hits += len as u64;
        core.per_tier[tier].batches += 1;
        core.tier_energy_mj[tier] += pass_mj;
        core.completed += latencies_ns.len() as u64;
        for &latency in latencies_ns {
            core.latencies_ns.record(latency);
        }
        core.first_completion.get_or_insert(now);
        core.last_completion = Some(now);
    }

    /// A consistent copy of everything recorded so far.
    ///
    /// Percentiles come straight off the log2 histogram — O(buckets)
    /// per query, no per-snapshot sort — so a monitoring thread polling
    /// snapshots never stalls the worker pool's per-chunk recording.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let core = self.core.lock().expect("metrics lock");
        let window = match (core.first_completion, core.last_completion) {
            (Some(first), Some(last)) => last.duration_since(first),
            _ => Duration::ZERO,
        };
        let samples = core.latencies_ns.count();
        let mean_ns = if samples == 0 {
            0.0
        } else {
            core.latencies_ns.sum() as f64 / samples as f64
        };
        let throughput_rps = if core.completed > 1 && !window.is_zero() {
            // The window spans completions 1..n: n-1 inter-completion gaps.
            (core.completed - 1) as f64 / window.as_secs_f64()
        } else {
            0.0
        };
        MetricsSnapshot {
            completed: core.completed,
            rejected: core.rejected,
            p50_ns: core.latencies_ns.percentile(0.50),
            p95_ns: core.latencies_ns.percentile(0.95),
            p99_ns: core.latencies_ns.percentile(0.99),
            mean_ns,
            throughput_rps,
            per_tier: core.per_tier.clone(),
            tier_energy_mj: core.tier_energy_mj.clone(),
        }
    }
}

/// Point-in-time summary of a service's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests answered (all time).
    pub completed: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Median end-to-end latency (ns) over all completions, answered
    /// from the log2 latency histogram (the mean of the bucket the rank
    /// falls in — exact for all-equal samples, ≤ 2× off otherwise).
    pub p50_ns: u64,
    /// 95th-percentile end-to-end latency (ns), same histogram.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end latency (ns), same histogram.
    pub p99_ns: u64,
    /// Mean end-to-end latency (ns), over all completions (exact).
    pub mean_ns: f64,
    /// Completions per second over the first→last completion window.
    pub throughput_rps: f64,
    /// Per-tier hit/batch counters (deterministic given a request set).
    pub per_tier: Vec<TierCounters>,
    /// Per-tier DRAM energy (mJ): weight-image passes × per-pass cost.
    pub tier_energy_mj: Vec<f64>,
}

impl MetricsSnapshot {
    /// Total DRAM energy across tiers (mJ).
    pub fn total_energy_mj(&self) -> f64 {
        self.tier_energy_mj.iter().sum()
    }

    /// Mean DRAM energy per answered request (mJ) — the batching
    /// amortisation made visible: B requests per chunk share one pass.
    pub fn energy_per_request_mj(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_energy_mj() / self.completed as f64
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set (`0` when
/// empty). `q` is a fraction in `[0, 1]`. This is the exact reference
/// the histogram-backed snapshot percentiles approximate; the
/// regression tests below pin where the two agree bit-for-bit (empty,
/// single sample, all-equal).
pub fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (q * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn chunks_accumulate_hits_batches_and_energy() {
        let m = ServiceMetrics::new(2);
        m.record_chunk(0, 4, 1.5, &[10, 20, 30, 40]);
        m.record_chunk(1, 1, 2.0, &[100]);
        m.record_chunk(0, 2, 1.5, &[50, 60]);
        m.record_rejection();
        let s = m.snapshot();
        assert_eq!(s.completed, 7);
        assert_eq!(s.rejected, 1);
        assert_eq!(
            s.per_tier[0],
            TierCounters {
                hits: 6,
                batches: 2
            }
        );
        assert_eq!(
            s.per_tier[1],
            TierCounters {
                hits: 1,
                batches: 1
            }
        );
        assert!((s.tier_energy_mj[0] - 3.0).abs() < 1e-12);
        assert!((s.tier_energy_mj[1] - 2.0).abs() < 1e-12);
        assert!((s.total_energy_mj() - 5.0).abs() < 1e-12);
        assert!((s.energy_per_request_mj() - 5.0 / 7.0).abs() < 1e-12);
        // Histogram-backed percentiles: rank 4 of 7 falls in the
        // [32, 64) bucket holding {40, 50, 60}, answered as that
        // bucket's mean; rank 7 isolates 100 in [64, 128).
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 100);
    }

    #[test]
    fn latency_memory_is_bounded_but_every_sample_counts() {
        // The predecessor kept a 2^20-sample ring; the histogram is
        // constant-size regardless of volume, and repeated identical
        // chunks keep the percentiles of one chunk (scale invariance).
        let m = ServiceMetrics::new(1);
        let chunk: Vec<u64> = (0..4096).collect();
        let chunks = (1 << 20) / chunk.len() + 2;
        for _ in 0..chunks {
            m.record_chunk(0, chunk.len(), 0.0, &chunk);
        }
        let s = m.snapshot();
        assert_eq!(s.completed, (chunks * chunk.len()) as u64);
        // Exactly half of 0..4096 lies at or below the [1024, 2048)
        // bucket, so the median is that bucket's mean, ⌊1535.5⌋.
        assert_eq!(s.p50_ns, 1535, "median of repeated 0..4096 chunks");
        assert_eq!(s.per_tier[0].hits, s.completed);
    }

    #[test]
    fn histogram_percentiles_match_the_old_sort_on_edge_cases() {
        // Regression against the previous sort-the-ring implementation
        // (the free `percentile` above is its exact percentile half):
        // on the edge cases — empty, single sample, all-equal — the
        // histogram answers must be bit-identical to the old path.
        // Empty.
        let s = ServiceMetrics::new(1).snapshot();
        assert_eq!(s.p50_ns, percentile(&[], 0.50));
        assert_eq!(s.p95_ns, percentile(&[], 0.95));
        assert_eq!(s.p99_ns, percentile(&[], 0.99));
        // Single sample.
        let m = ServiceMetrics::new(1);
        m.record_chunk(0, 1, 0.0, &[7]);
        let s = m.snapshot();
        assert_eq!(s.p50_ns, percentile(&[7], 0.50));
        assert_eq!(s.p95_ns, percentile(&[7], 0.95));
        assert_eq!(s.p99_ns, percentile(&[7], 0.99));
        // All-equal.
        let m = ServiceMetrics::new(1);
        let same = [777u64; 128];
        m.record_chunk(0, same.len(), 0.0, &same);
        let s = m.snapshot();
        assert_eq!(s.p50_ns, percentile(&same, 0.50));
        assert_eq!(s.p95_ns, percentile(&same, 0.95));
        assert_eq!(s.p99_ns, percentile(&same, 0.99));
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = ServiceMetrics::new(1).snapshot();
        assert_eq!(s.completed, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.energy_per_request_mj(), 0.0);
    }
}
