//! Serving metrics: latency percentiles, throughput, per-tier energy and
//! hit accounting.
//!
//! The recorder sits behind one mutex; workers touch it once per *chunk*
//! plus once per response, which is noise next to an SNN inference
//! (hundreds of microseconds each). Timing-derived numbers (latencies,
//! throughput) naturally vary run to run — only the request→response
//! mapping is deterministic — so the snapshot keeps them clearly separated
//! from the deterministic per-tier hit counts.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deterministic per-tier accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounters {
    /// Requests answered by this tier.
    pub hits: u64,
    /// Batches (weight-image DRAM passes) this tier served.
    pub batches: u64,
}

/// Latency samples retained for percentile estimation. A long-lived
/// service completes requests indefinitely; an unbounded history would
/// grow ~8 bytes per request forever and make every snapshot sort pay for
/// the service's whole lifetime, so the recorder keeps a ring of the most
/// recent 2^20 completions (8 MiB worst case) — plenty for stable
/// p50/p95/p99 over any recent window.
pub const LATENCY_SAMPLE_CAP: usize = 1 << 20;

/// Mutable interior of [`ServiceMetrics`].
#[derive(Debug, Default)]
struct MetricsCore {
    /// End-to-end latency (enqueue → response) of the most recent
    /// [`LATENCY_SAMPLE_CAP`] completed requests (ring order, not sorted).
    latencies_ns: Vec<u64>,
    /// Ring cursor: the slot the next post-capacity sample overwrites.
    latency_cursor: usize,
    /// All-time completion count (the ring only bounds the percentile
    /// window, never this).
    completed: u64,
    per_tier: Vec<TierCounters>,
    /// DRAM energy per tier (mJ): passes × per-pass energy.
    tier_energy_mj: Vec<f64>,
    rejected: u64,
    first_completion: Option<Instant>,
    last_completion: Option<Instant>,
}

/// Shared metrics recorder of one service instance.
#[derive(Debug)]
pub struct ServiceMetrics {
    core: Mutex<MetricsCore>,
}

impl ServiceMetrics {
    /// A fresh recorder for `n_tiers` tiers.
    pub fn new(n_tiers: usize) -> Self {
        Self {
            core: Mutex::new(MetricsCore {
                per_tier: vec![TierCounters::default(); n_tiers],
                tier_energy_mj: vec![0.0; n_tiers],
                ..MetricsCore::default()
            }),
        }
    }

    /// Records one admission-control rejection.
    pub fn record_rejection(&self) {
        self.core.lock().expect("metrics lock").rejected += 1;
    }

    /// Records one dispatched chunk: `len` requests served by `tier` in a
    /// single weight-image pass, with the member requests' end-to-end
    /// latencies.
    pub fn record_chunk(&self, tier: usize, len: usize, pass_mj: f64, latencies_ns: &[u64]) {
        let now = Instant::now();
        let mut core = self.core.lock().expect("metrics lock");
        core.per_tier[tier].hits += len as u64;
        core.per_tier[tier].batches += 1;
        core.tier_energy_mj[tier] += pass_mj;
        core.completed += latencies_ns.len() as u64;
        for &latency in latencies_ns {
            if core.latencies_ns.len() < LATENCY_SAMPLE_CAP {
                core.latencies_ns.push(latency);
            } else {
                let cursor = core.latency_cursor;
                core.latencies_ns[cursor] = latency;
                core.latency_cursor = (cursor + 1) % LATENCY_SAMPLE_CAP;
            }
        }
        core.first_completion.get_or_insert(now);
        core.last_completion = Some(now);
    }

    /// A consistent copy of everything recorded so far.
    ///
    /// Only the raw copies happen under the metrics lock; the (up to
    /// window-sized) percentile sort runs after it is released, so a
    /// monitoring thread polling snapshots never stalls the worker pool's
    /// per-chunk recording behind a million-element sort.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (mut sorted, completed, rejected, per_tier, tier_energy_mj, window) = {
            let core = self.core.lock().expect("metrics lock");
            let window = match (core.first_completion, core.last_completion) {
                (Some(first), Some(last)) => last.duration_since(first),
                _ => Duration::ZERO,
            };
            (
                core.latencies_ns.clone(),
                core.completed,
                core.rejected,
                core.per_tier.clone(),
                core.tier_energy_mj.clone(),
                window,
            )
        };
        sorted.sort_unstable();
        let mean_ns = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
        };
        let throughput_rps = if completed > 1 && !window.is_zero() {
            // The window spans completions 1..n: n-1 inter-completion gaps.
            (completed - 1) as f64 / window.as_secs_f64()
        } else {
            0.0
        };
        MetricsSnapshot {
            completed,
            rejected,
            p50_ns: percentile(&sorted, 0.50),
            p95_ns: percentile(&sorted, 0.95),
            p99_ns: percentile(&sorted, 0.99),
            mean_ns,
            throughput_rps,
            per_tier,
            tier_energy_mj,
        }
    }
}

/// Point-in-time summary of a service's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests answered (all time).
    pub completed: u64,
    /// Requests refused by admission control.
    pub rejected: u64,
    /// Median end-to-end latency (ns), over the most recent
    /// [`LATENCY_SAMPLE_CAP`] completions.
    pub p50_ns: u64,
    /// 95th-percentile end-to-end latency (ns), same window.
    pub p95_ns: u64,
    /// 99th-percentile end-to-end latency (ns), same window.
    pub p99_ns: u64,
    /// Mean end-to-end latency (ns), same window.
    pub mean_ns: f64,
    /// Completions per second over the first→last completion window.
    pub throughput_rps: f64,
    /// Per-tier hit/batch counters (deterministic given a request set).
    pub per_tier: Vec<TierCounters>,
    /// Per-tier DRAM energy (mJ): weight-image passes × per-pass cost.
    pub tier_energy_mj: Vec<f64>,
}

impl MetricsSnapshot {
    /// Total DRAM energy across tiers (mJ).
    pub fn total_energy_mj(&self) -> f64 {
        self.tier_energy_mj.iter().sum()
    }

    /// Mean DRAM energy per answered request (mJ) — the batching
    /// amortisation made visible: B requests per chunk share one pass.
    pub fn energy_per_request_mj(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_energy_mj() / self.completed as f64
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set (`0` when
/// empty). `q` is a fraction in `[0, 1]`.
pub fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (q * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn chunks_accumulate_hits_batches_and_energy() {
        let m = ServiceMetrics::new(2);
        m.record_chunk(0, 4, 1.5, &[10, 20, 30, 40]);
        m.record_chunk(1, 1, 2.0, &[100]);
        m.record_chunk(0, 2, 1.5, &[50, 60]);
        m.record_rejection();
        let s = m.snapshot();
        assert_eq!(s.completed, 7);
        assert_eq!(s.rejected, 1);
        assert_eq!(
            s.per_tier[0],
            TierCounters {
                hits: 6,
                batches: 2
            }
        );
        assert_eq!(
            s.per_tier[1],
            TierCounters {
                hits: 1,
                batches: 1
            }
        );
        assert!((s.tier_energy_mj[0] - 3.0).abs() < 1e-12);
        assert!((s.tier_energy_mj[1] - 2.0).abs() < 1e-12);
        assert!((s.total_energy_mj() - 5.0).abs() < 1e-12);
        assert!((s.energy_per_request_mj() - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.p50_ns, 40);
        assert_eq!(s.p99_ns, 100);
    }

    #[test]
    fn latency_window_is_bounded_but_completed_is_not() {
        let m = ServiceMetrics::new(1);
        let chunk: Vec<u64> = (0..4096).collect();
        let chunks = LATENCY_SAMPLE_CAP / chunk.len() + 2;
        for _ in 0..chunks {
            m.record_chunk(0, chunk.len(), 0.0, &chunk);
        }
        let s = m.snapshot();
        // The all-time count keeps growing past the percentile window…
        assert_eq!(s.completed, (chunks * chunk.len()) as u64);
        assert!(s.completed > LATENCY_SAMPLE_CAP as u64);
        // …while the window itself stays a ring of identical chunks, so
        // the percentiles are those of one chunk.
        assert_eq!(s.p50_ns, 2047, "median of repeated 0..4096 chunks");
        assert_eq!(s.per_tier[0].hits, s.completed);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = ServiceMetrics::new(1).snapshot();
        assert_eq!(s.completed, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.energy_per_request_mj(), 0.0);
    }
}
