//! # sparkxd-serve
//!
//! An **online inference service** on top of the SparkXD reproduction:
//! many concurrent clients multiplexed onto the batched execution engine,
//! with a per-request choice of approximate-DRAM operating point.
//!
//! The offline pipeline picks one supply voltage per experiment; serving
//! inverts that. A [`TierSet`](sparkxd_core::TierSet) holds several
//! corrupted-and-scrubbed model instances — one per voltage, built once
//! through the existing injection/mapping machinery and tagged with a
//! measured accuracy estimate plus per-pass DRAM energy/latency from
//! compressed-trace replay — and every request names a [`RoutePolicy`]
//! (accuracy floor, energy budget or deadline slack) that the [`Router`]
//! resolves to a tier.
//!
//! The pieces:
//!
//! * [`router`] — pure policy → tier resolution over the tier tags;
//! * [`service`] — [`SparkXdService`]: per-tier queues, a **dynamic
//!   batcher** (dispatch on full chunk or `max_wait`, whichever first), a
//!   std-thread worker pool driving
//!   [`run_batch`](sparkxd_snn::NetworkParams::run_batch), and admission
//!   control against a queue bound;
//! * [`metrics`] — p50/p95/p99 latency, throughput, per-tier hit/batch
//!   and DRAM-energy accounting;
//! * [`loadgen`] — seeded open-loop arrival traces and their replay (the
//!   `serve_load` binary in `sparkxd-bench` drives this).
//!
//! Everything is std-only: threads, channels, mutexes and condvars — no
//! async runtime.
//!
//! ## Determinism
//!
//! Request `id` selects the same per-sample RNG stream
//! ([`sample_rng`](sparkxd_snn::engine::sample_rng)) the offline engine
//! uses, and tier choice is a pure function of the policy — so the
//! `(id → label, tier)` mapping is bit-identical for **any** worker
//! count, batch size, chunking, arrival timing or intra-chunk sweep
//! split (`SPARKXD_INTRA` / [`ServiceConfig::with_intra`]), and equals
//! the offline answer for the same seed. `tests/scheduler_determinism.rs`
//! proves it across a worker/batch/intra matrix, mirroring the repo's
//! `thread_invariance` suite, and `tests/worker_budget.rs` pins that the
//! service workers plus any intra sweep helpers stay under the engine's
//! global thread budget.
//!
//! ## Vendored-stub surface
//!
//! This crate adds **no** new vendored API requirements: the load
//! generator only uses `StdRng`, `Rng::gen` and `Rng::gen_range`, all
//! already covered by `vendor/rand` (see its lib.rs for the supported
//! surface).
//!
//! ## Example
//!
//! ```no_run
//! use sparkxd_core::pipeline::PipelineConfig;
//! use sparkxd_core::TierBuilder;
//! use sparkxd_serve::{RoutePolicy, ServeRequest, ServiceConfig, SparkXdService};
//!
//! let tiers = TierBuilder::new(PipelineConfig::small_demo(42))
//!     .build()
//!     .expect("tier ladder");
//! let (service, responses) =
//!     SparkXdService::start(tiers.tiers, ServiceConfig::from_env());
//! service
//!     .submit(ServeRequest {
//!         id: 0,
//!         pixels: vec![0.0; 784],
//!         policy: RoutePolicy::AccuracyFloor(0.6),
//!     })
//!     .expect("admitted");
//! let answer = responses.recv().expect("served");
//! println!("label {:?} from tier {} at {}", answer.label, answer.tier, answer.v_supply);
//! ```

pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod service;

pub use loadgen::{arrival_trace, replay_open_loop, Arrival, LoadSpec, ReplayOutcome};
pub use metrics::{percentile, MetricsSnapshot, ServiceMetrics, TierCounters};
pub use router::{RoutePolicy, Router, TierInfo};
pub use service::{ServeRequest, ServeResponse, ServiceConfig, SparkXdService, SubmitError};
