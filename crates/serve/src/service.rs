//! The online inference service: per-tier request queues, a dynamic
//! batcher and a std-thread worker pool over the batched engine path.
//!
//! ## Flow
//!
//! [`SparkXdService::submit`] routes a request to a tier (pure policy
//! lookup), applies admission control against a global queue bound and
//! enqueues it. Worker threads drain a tier's queue into a chunk of up to
//! `batch` requests as soon as a full chunk is available **or** the
//! tier's oldest request has waited `max_wait` (the classic dynamic
//! batcher trade: amortise the weight-image pass without letting a lone
//! request starve). The chunk runs through
//! [`NetworkParams::run_batch`](sparkxd_snn::NetworkParams::run_batch)
//! with one RNG stream per request id, and each answer goes back over one
//! response channel.
//!
//! ## Determinism
//!
//! The spike RNG of request `id` is `sample_rng(spike_seed, id)` — the
//! same per-sample stream derivation the offline engine uses — and the
//! batched path is bit-identical to the scalar path for any chunk
//! composition. Tier choice is a pure function of the request's policy.
//! So `(id → label, tier)` is **bit-identical for any worker count, batch
//! size, chunking or arrival timing**; only latency/throughput metrics
//! vary. A service answer is exactly the offline answer for the same
//! `(seed, id)` pair. The intra-chunk tile sweep ([`IntraChoice`], routed
//! through [`ServiceConfig::with_intra`]) keeps that contract: its split
//! is bit-identical by construction, so the intra setting, too, only
//! moves latency.
//!
//! ## Thread budget
//!
//! The service's workers register one [`WorkerReservation`] for the whole
//! pool, and any intra-chunk helpers a dispatched `run_batch` claims come
//! from the engine's *leftover* budget
//! ([`WorkerReservation::claim_leftover`]) — so service workers plus
//! sweep helpers together never exceed the configured thread count, no
//! matter how the two layers nest. Sweep helpers themselves run on the
//! engine's persistent [`WorkerPool`](sparkxd_snn::WorkerPool), shared
//! with every other fan-out in the process, so a dispatch is a queue push
//! instead of a thread spawn.

use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::router::{RoutePolicy, Router, TierInfo};
use rand::rngs::StdRng;
use sparkxd_circuit::Volt;
use sparkxd_core::TierModel;
use sparkxd_snn::engine::{
    batch_size, intra_choice, sample_rng, worker_count, IntraChoice, WorkerReservation,
};
use sparkxd_snn::BatchState;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of one service instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads running inference.
    pub workers: usize,
    /// Maximum requests per dispatched chunk (the dynamic batcher's B).
    pub batch: usize,
    /// Longest a request may wait for its chunk to fill before being
    /// dispatched short.
    pub max_wait: Duration,
    /// Admission bound on the total queued (not yet dispatched) requests;
    /// submissions beyond it are rejected.
    pub queue_bound: usize,
    /// Base seed of the per-request spike-train RNG streams.
    pub spike_seed: u64,
    /// Intra-chunk tile-sweep parallelism for dispatched batches. The
    /// default `Auto` sizes itself to the engine budget left over after
    /// the service workers' reservation, so it is always safe; results
    /// are bit-identical under every setting.
    pub intra: IntraChoice,
}

impl ServiceConfig {
    /// Defaults resolved from the engine environment: `SPARKXD_THREADS`
    /// workers (or available parallelism), `SPARKXD_BATCH` chunk size (or
    /// the engine default), the `SPARKXD_INTRA` sweep mode, a 2 ms
    /// batching wait and a 1024-deep queue.
    pub fn from_env() -> Self {
        Self {
            workers: worker_count(usize::MAX),
            batch: batch_size(),
            max_wait: Duration::from_millis(2),
            queue_bound: 1024,
            spike_seed: 0x5E_BF,
            intra: intra_choice(),
        }
    }

    /// Pins the worker count (builder style; floors at 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Pins the chunk size (builder style; floors at 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the batching wait budget (builder style).
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the admission queue bound (builder style).
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound.max(1);
        self
    }

    /// Sets the spike-RNG base seed (builder style).
    pub fn with_spike_seed(mut self, seed: u64) -> Self {
        self.spike_seed = seed;
        self
    }

    /// Pins the intra-chunk tile-sweep mode (builder style).
    pub fn with_intra(mut self, intra: IntraChoice) -> Self {
        self.intra = intra;
        self
    }
}

/// One inference request. The `id` doubles as the RNG stream index, so it
/// must be unique per logical request for offline/online equivalence.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Caller-assigned request id (echoed in the response; selects the
    /// spike RNG stream).
    pub id: u64,
    /// Input image pixels (must match the model's input size).
    pub pixels: Vec<f32>,
    /// How to resolve the accuracy/energy/latency trade for this request.
    pub policy: RoutePolicy,
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The request's id.
    pub id: u64,
    /// Predicted class (None when no labelled neuron spiked).
    pub label: Option<u8>,
    /// Tier index that served the request.
    pub tier: usize,
    /// Supply voltage of that tier.
    pub v_supply: Volt,
    /// This request's share of the chunk's DRAM pass energy (mJ) — the
    /// batching amortisation: B requests split one weight-image pass.
    pub dram_share_mj: f64,
    /// Time spent queued before dispatch (ns).
    pub queue_ns: u64,
    /// Inference time of the chunk the request rode in (ns).
    pub service_ns: u64,
    /// Size of that chunk.
    pub chunk_len: usize,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the queue is at its bound.
    QueueFull {
        /// Requests currently queued.
        depth: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The request's pixel count does not match the model input size.
    InputSizeMismatch {
        /// Pixels provided.
        provided: usize,
        /// Pixels the model expects.
        expected: usize,
    },
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth, bound } => {
                write!(f, "queue full: {depth} of {bound} slots occupied")
            }
            SubmitError::InputSizeMismatch { provided, expected } => {
                write!(f, "request has {provided} pixels, model expects {expected}")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A queued, routed, not-yet-dispatched request.
struct Pending {
    id: u64,
    pixels: Vec<f32>,
    enqueued: Instant,
}

/// Queue state behind the service mutex: one FIFO per tier.
struct QueueState {
    per_tier: Vec<VecDeque<Pending>>,
    /// Total queued across tiers (the admission-control quantity).
    depth: usize,
    /// `false` once shutdown began: submissions are refused and workers
    /// drain what is left, dispatching short chunks immediately.
    open: bool,
}

/// Everything workers share.
struct Shared {
    tiers: Vec<TierModel>,
    router: Router,
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    /// Signalled on every enqueue and on shutdown.
    work_cv: Condvar,
    metrics: ServiceMetrics,
}

/// The running service: worker threads plus the shared state.
///
/// Responses are delivered on the channel returned by
/// [`SparkXdService::start`], in completion order (match them to requests
/// by `id`). Dropping the service without [`shutdown`](Self::shutdown)
/// still stops and joins the workers.
pub struct SparkXdService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Registers the pool against the engine's global thread budget so
    /// nested engine fan-outs (e.g. a tier rebuild on the side) size
    /// themselves to the leftover cores.
    _reservation: WorkerReservation,
}

impl SparkXdService {
    /// Starts `config.workers` worker threads over `tiers` and returns
    /// the service handle plus the response channel.
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is empty or the tiers disagree on the model
    /// input size.
    pub fn start(
        tiers: Vec<TierModel>,
        config: ServiceConfig,
    ) -> (Self, mpsc::Receiver<ServeResponse>) {
        assert!(!tiers.is_empty(), "service needs at least one tier");
        let n_inputs = tiers[0].params.config().n_inputs;
        assert!(
            tiers.iter().all(|t| t.params.config().n_inputs == n_inputs),
            "every tier must share one input size: submit() validates a \
             request against it once, before routing"
        );
        let config = ServiceConfig {
            workers: config.workers.max(1),
            batch: config.batch.max(1),
            queue_bound: config.queue_bound.max(1),
            ..config
        };
        let router = Router::new(tiers.iter().map(TierInfo::of).collect());
        let n_tiers = tiers.len();
        let shared = Arc::new(Shared {
            router,
            config,
            queue: Mutex::new(QueueState {
                per_tier: (0..n_tiers).map(|_| VecDeque::new()).collect(),
                depth: 0,
                open: true,
            }),
            work_cv: Condvar::new(),
            metrics: ServiceMetrics::new(n_tiers),
            tiers,
        });
        let (tx, rx) = mpsc::channel();
        let reservation = WorkerReservation::for_pool(config.workers);
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || worker_loop(&shared, &tx))
            })
            .collect();
        // The workers hold the only remaining senders: the channel closes
        // when the pool exits, which is what lets clients iterate the
        // receiver to completion.
        drop(tx);
        (
            Self {
                shared,
                workers,
                _reservation: reservation,
            },
            rx,
        )
    }

    /// Routes and enqueues one request; returns the tier it will run on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::InputSizeMismatch`] for wrong-sized inputs,
    /// [`SubmitError::QueueFull`] when admission control refuses, and
    /// [`SubmitError::ShuttingDown`] after shutdown began. Rejections are
    /// counted in the metrics.
    pub fn submit(&self, request: ServeRequest) -> Result<usize, SubmitError> {
        let expected = self.shared.tiers[0].params.config().n_inputs;
        if request.pixels.len() != expected {
            return Err(SubmitError::InputSizeMismatch {
                provided: request.pixels.len(),
                expected,
            });
        }
        let tier = self.shared.router.route(request.policy);
        {
            let mut queue = self.shared.queue.lock().expect("service queue lock");
            if !queue.open {
                return Err(SubmitError::ShuttingDown);
            }
            if queue.depth >= self.shared.config.queue_bound {
                let depth = queue.depth;
                drop(queue);
                self.shared.metrics.record_rejection();
                return Err(SubmitError::QueueFull {
                    depth,
                    bound: self.shared.config.queue_bound,
                });
            }
            queue.per_tier[tier].push_back(Pending {
                id: request.id,
                pixels: request.pixels,
                enqueued: Instant::now(),
            });
            queue.depth += 1;
        }
        self.shared.work_cv.notify_one();
        Ok(tier)
    }

    /// The routing table in use (tier tags without the model weights).
    pub fn tier_infos(&self) -> &[TierInfo] {
        self.shared.router.tiers()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Requests currently queued (not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("service queue lock").depth
    }

    /// Stops accepting work, drains every queued request, joins the
    /// workers and returns the final metrics. Already-queued requests are
    /// still answered (in short chunks where needed).
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            handle.join().expect("service worker panicked");
        }
        self.shared.metrics.snapshot()
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().expect("service queue lock").open = false;
        self.shared.work_cv.notify_all();
    }
}

impl Drop for SparkXdService {
    fn drop(&mut self) {
        // `shutdown` drains `workers`, making this a no-op; a plain drop
        // still stops the pool instead of leaking threads.
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Picks the tier to dispatch: any tier with a full chunk, or — once its
/// head has aged past `max_wait` or the service is draining — a partial
/// one. Among eligible tiers the longest-waiting head wins, which keeps
/// the batcher fair across tiers under load.
fn pick_tier(queue: &QueueState, config: &ServiceConfig, now: Instant) -> Option<usize> {
    let mut best: Option<(Instant, usize)> = None;
    for (tier, pending) in queue.per_tier.iter().enumerate() {
        let Some(head) = pending.front() else {
            continue;
        };
        let ready = pending.len() >= config.batch
            || !queue.open
            || now.duration_since(head.enqueued) >= config.max_wait;
        if ready && best.is_none_or(|(oldest, _)| head.enqueued < oldest) {
            best = Some((head.enqueued, tier));
        }
    }
    best.map(|(_, tier)| tier)
}

/// Time until the earliest queued head exceeds its batching wait — how
/// long a worker may sleep without missing a `max_wait` deadline. `None`
/// with empty queues.
fn next_deadline(queue: &QueueState, config: &ServiceConfig, now: Instant) -> Option<Duration> {
    queue
        .per_tier
        .iter()
        .filter_map(|pending| pending.front())
        .map(|head| {
            (head.enqueued + config.max_wait)
                .checked_duration_since(now)
                .unwrap_or(Duration::ZERO)
        })
        .min()
}

fn worker_loop(shared: &Shared, tx: &mpsc::Sender<ServeResponse>) {
    let config = &shared.config;
    // One scratch per tier, lazily allocated: a worker that never serves a
    // tier never pays for its `[B × n_neurons]` slabs.
    let mut states: Vec<Option<BatchState>> = shared.tiers.iter().map(|_| None).collect();
    let mut chunk: Vec<Pending> = Vec::with_capacity(config.batch);
    loop {
        let tier_idx = {
            let mut queue = shared.queue.lock().expect("service queue lock");
            loop {
                let now = Instant::now();
                if let Some(tier) = pick_tier(&queue, config, now) {
                    let pending = &mut queue.per_tier[tier];
                    let take = pending.len().min(config.batch);
                    chunk.clear();
                    chunk.extend(pending.drain(..take));
                    queue.depth -= take;
                    break tier;
                }
                if !queue.open && queue.depth == 0 {
                    return;
                }
                // Sleep until the earliest max-wait deadline (or
                // indefinitely when idle — every enqueue signals).
                let wait = next_deadline(&queue, config, now);
                queue = match wait {
                    Some(wait) => {
                        shared
                            .work_cv
                            .wait_timeout(queue, wait.max(Duration::from_micros(50)))
                            .expect("service queue lock")
                            .0
                    }
                    None => shared.work_cv.wait(queue).expect("service queue lock"),
                };
            }
        };
        serve_chunk(shared, tx, tier_idx, &chunk, &mut states[tier_idx]);
        // A drained queue may unblock a sibling's full-batch condition or
        // the shutdown exit check.
        shared.work_cv.notify_all();
    }
}

/// Runs one dispatched chunk through the tier's batched path and emits
/// responses + metrics.
fn serve_chunk(
    shared: &Shared,
    tx: &mpsc::Sender<ServeResponse>,
    tier_idx: usize,
    chunk: &[Pending],
    state: &mut Option<BatchState>,
) {
    let tier = &shared.tiers[tier_idx];
    let state = state.get_or_insert_with(|| {
        BatchState::for_params(&tier.params, shared.config.batch).with_intra(shared.config.intra)
    });
    let started = Instant::now();
    let pixels: Vec<&[f32]> = chunk.iter().map(|p| p.pixels.as_slice()).collect();
    let mut rngs: Vec<StdRng> = chunk
        .iter()
        .map(|p| sample_rng(shared.config.spike_seed, p.id))
        .collect();
    let counts = tier
        .params
        .run_batch(state, &pixels, &mut rngs)
        .expect("input sizes validated at submit");
    let service_ns = started.elapsed().as_nanos() as u64;
    let done = Instant::now();
    let share_mj = tier.dram_pass_mj / chunk.len() as f64;
    let latencies: Vec<u64> = chunk
        .iter()
        .map(|p| done.duration_since(p.enqueued).as_nanos() as u64)
        .collect();
    shared
        .metrics
        .record_chunk(tier_idx, chunk.len(), tier.dram_pass_mj, &latencies);
    for (pending, sample_counts) in chunk.iter().zip(counts) {
        let response = ServeResponse {
            id: pending.id,
            label: tier.labeler.predict(&sample_counts),
            tier: tier_idx,
            v_supply: tier.v_supply,
            dram_share_mj: share_mj,
            queue_ns: started.duration_since(pending.enqueued).as_nanos() as u64,
            service_ns,
            chunk_len: chunk.len(),
        };
        // A dropped receiver only means nobody is listening; serving (and
        // metrics) continue.
        let _ = tx.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_core::pipeline::MappingSummary;
    use sparkxd_snn::{NetworkParams, NeuronLabeler, SnnConfig};

    /// A hand-built tier: untrained 10-neuron params with a fixed
    /// labelling and synthetic energy tags — no training, so unit tests
    /// stay fast. Neuron j votes class j.
    fn synthetic_tier(v: f64, accuracy: f64, pass_mj: f64) -> TierModel {
        let params = NetworkParams::new(
            SnnConfig::for_neurons(10)
                .with_timesteps(5)
                .with_weight_seed(v.to_bits()),
        );
        TierModel {
            v_supply: Volt(v),
            precision: sparkxd_snn::WeightPrecision::Fp32,
            operating_ber: 1e-6,
            params,
            labeler: NeuronLabeler::from_assignments((0..10).map(|j| Some(j as u8)).collect()),
            accuracy_estimate: accuracy,
            dram_pass_mj: pass_mj,
            dram_pass_ns: 1_000.0 * v,
            mapping: MappingSummary {
                policy: "sparkxd",
                columns: 1,
                subarrays_used: 1,
                safe_fraction: 1.0,
                word_bits: 32,
            },
        }
    }

    fn three_tiers() -> Vec<TierModel> {
        vec![
            synthetic_tier(1.025, 0.70, 1.0),
            synthetic_tier(1.1, 0.80, 1.4),
            synthetic_tier(1.175, 0.85, 1.9),
        ]
    }

    fn request(id: u64, policy: RoutePolicy) -> ServeRequest {
        ServeRequest {
            id,
            pixels: vec![0.5; sparkxd_data::IMAGE_PIXELS],
            policy,
        }
    }

    fn quick_config() -> ServiceConfig {
        ServiceConfig::from_env()
            .with_workers(2)
            .with_batch(4)
            .with_max_wait(Duration::from_millis(1))
            .with_queue_bound(64)
    }

    #[test]
    fn serves_a_burst_and_reports_metrics() {
        let (service, rx) = SparkXdService::start(three_tiers(), quick_config());
        for i in 0..12 {
            service
                .submit(request(i, RoutePolicy::AccuracyFloor(0.75)))
                .expect("queue has room");
        }
        let snapshot = service.shutdown();
        let responses: Vec<ServeResponse> = rx.iter().collect();
        assert_eq!(responses.len(), 12);
        assert_eq!(snapshot.completed, 12);
        assert_eq!(snapshot.rejected, 0);
        // AccuracyFloor(0.75): cheapest sufficient tier is index 1.
        assert!(responses.iter().all(|r| r.tier == 1));
        assert_eq!(snapshot.per_tier[1].hits, 12);
        assert!(snapshot.per_tier[1].batches >= 3, "B=4 over 12 requests");
        assert!(snapshot.total_energy_mj() >= 1.4 * 3.0 - 1e-9);
        assert!(responses.iter().all(|r| r.v_supply == Volt(1.1)));
    }

    #[test]
    fn input_size_mismatch_is_rejected_up_front() {
        let (service, _rx) = SparkXdService::start(three_tiers(), quick_config());
        let bad = ServeRequest {
            id: 0,
            pixels: vec![0.0; 3],
            policy: RoutePolicy::AccuracyFloor(0.0),
        };
        assert_eq!(
            service.submit(bad),
            Err(SubmitError::InputSizeMismatch {
                provided: 3,
                expected: sparkxd_data::IMAGE_PIXELS,
            })
        );
    }

    #[test]
    fn admission_control_rejects_beyond_the_bound() {
        // One slow-to-start worker and a tiny bound: overflow must be
        // refused, not queued without limit.
        let config = ServiceConfig::from_env()
            .with_workers(1)
            .with_batch(1)
            .with_max_wait(Duration::from_secs(5))
            .with_queue_bound(2);
        let (service, rx) = SparkXdService::start(three_tiers(), config);
        let mut accepted = 0;
        let mut rejected = 0;
        for i in 0..40 {
            match service.submit(request(i, RoutePolicy::EnergyBudget(0.1))) {
                Ok(_) => accepted += 1,
                Err(SubmitError::QueueFull { bound, .. }) => {
                    assert_eq!(bound, 2);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(rejected > 0, "bound of 2 must refuse part of a 40-burst");
        let snapshot = service.shutdown();
        assert_eq!(snapshot.rejected, rejected);
        assert_eq!(snapshot.completed, accepted);
        assert_eq!(rx.iter().count() as u64, accepted);
    }

    #[test]
    fn shutdown_drains_queued_requests_and_refuses_new_ones() {
        let config = quick_config()
            .with_workers(1)
            .with_max_wait(Duration::from_secs(5));
        let (service, rx) = SparkXdService::start(three_tiers(), config);
        for i in 0..7 {
            service
                .submit(request(i, RoutePolicy::DeadlineSlack(f64::MAX)))
                .expect("room");
        }
        // max_wait is 5 s, yet shutdown must flush everything now.
        let snapshot = service.shutdown();
        assert_eq!(snapshot.completed, 7);
        assert_eq!(rx.iter().count(), 7);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let (service, _rx) = SparkXdService::start(three_tiers(), quick_config());
        service.begin_shutdown();
        assert_eq!(
            service.submit(request(0, RoutePolicy::AccuracyFloor(0.0))),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn responses_match_offline_run_sample() {
        // The serving answer for (seed, id) must be exactly the offline
        // engine's answer: same RNG stream, same batched read path.
        let tiers = three_tiers();
        let tier0 = tiers[0].clone();
        let seed = 0xF00D;
        let (service, rx) =
            SparkXdService::start(tiers, quick_config().with_spike_seed(seed).with_batch(3));
        let pixels = vec![0.5; sparkxd_data::IMAGE_PIXELS];
        for id in 0..6 {
            service
                .submit(ServeRequest {
                    id,
                    pixels: pixels.clone(),
                    policy: RoutePolicy::AccuracyFloor(0.0),
                })
                .expect("room");
        }
        service.shutdown();
        let mut offline_state = sparkxd_snn::RunState::for_params(&tier0.params);
        for response in rx.iter() {
            let mut rng = sample_rng(seed, response.id);
            let counts = tier0
                .params
                .run_sample(&mut offline_state, &pixels, &mut rng)
                .unwrap();
            assert_eq!(
                response.label,
                tier0.labeler.predict(&counts),
                "id {}",
                response.id
            );
        }
    }
}
