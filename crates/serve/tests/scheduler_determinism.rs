//! Scheduler determinism: the same seeded arrival trace must yield
//! bit-identical responses — predicted labels *and* tier choices — for
//! any worker count, any batch size and any intra-chunk sweep split,
//! mirroring the offline engine's `tests/thread_invariance.rs` guarantee.
//!
//! Why this holds: request `id` selects the per-sample RNG stream (the
//! offline derivation), the batched read path is bit-identical to the
//! scalar path for any chunk composition, the intra-chunk tile sweep
//! splits on tile boundaries (the serial sweep's own loop structure), and
//! routing is a pure function of the policy. Worker count, batch size,
//! sweep split and dispatch timing can only change *when* an answer
//! arrives, never *what* it says.

use sparkxd_core::pipeline::PipelineConfig;
use sparkxd_core::{TierBuilder, TierSet};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_serve::{
    arrival_trace, replay_open_loop, LoadSpec, RoutePolicy, ServiceConfig, SparkXdService,
};
use sparkxd_snn::IntraChoice;
use std::time::Duration;

/// Trimmed below `small_demo` so the one-off tier build stays in seconds.
fn tiny_tiers() -> TierSet {
    let config = PipelineConfig {
        neurons: 20,
        timesteps: 20,
        train_samples: 40,
        test_samples: 20,
        baseline_epochs: 1,
        ..PipelineConfig::small_demo(11)
    };
    TierBuilder::new(config).build().expect("tiny tier ladder")
}

#[test]
fn responses_are_bit_identical_across_workers_and_batch_sizes() {
    let tiers = tiny_tiers();
    assert!(tiers.tiers.len() >= 2, "matrix needs a real tier choice");
    let data = SynthDigits.generate(30, 5);
    // Saturation trace (zero offsets): submission order is the trace
    // order on every run, with all four policy shapes in the mix.
    let trace = arrival_trace(
        &LoadSpec {
            requests: 60,
            rate_per_sec: f64::INFINITY,
            seed: 9,
            policy_mix: vec![
                RoutePolicy::AccuracyFloor(0.0),
                RoutePolicy::AccuracyFloor(2.0), // unreachable: falls back
                RoutePolicy::EnergyBudget(f64::MAX),
                RoutePolicy::DeadlineSlack(0.0), // unreachable: falls back
            ],
        },
        data.len(),
    );

    let run = |workers: usize, batch: usize, intra: IntraChoice| -> Vec<(u64, Option<u8>, usize)> {
        let config = ServiceConfig::from_env()
            .with_workers(workers)
            .with_batch(batch)
            .with_intra(intra)
            .with_max_wait(Duration::from_micros(200))
            .with_queue_bound(10_000) // no admission pressure: every
            // request must be answered for the comparison to be total
            .with_spike_seed(0xD0_0D);
        let (service, responses) = SparkXdService::start(tiers.tiers.clone(), config);
        let outcome = replay_open_loop(&service, &data, &trace);
        assert_eq!(outcome.rejected, 0, "bound must never reject this load");
        let snapshot = service.shutdown();
        assert_eq!(snapshot.completed, 60);
        let mut answers: Vec<_> = responses.iter().map(|r| (r.id, r.label, r.tier)).collect();
        answers.sort_unstable();
        answers
    };

    // Serial scalar reference: 1 worker, chunk size 1, serial sweep.
    let reference = run(1, 1, IntraChoice::Off);
    assert_eq!(reference.len(), 60);
    for (workers, batch, intra) in [
        (1, 4, IntraChoice::Off),
        (2, 1, IntraChoice::Off),
        (2, 3, IntraChoice::Auto),
        (4, 8, IntraChoice::Auto),
        (3, 17, IntraChoice::Workers(2)),
        (2, 8, IntraChoice::Workers(3)),
    ] {
        assert_eq!(
            run(workers, batch, intra),
            reference,
            "workers={workers} batch={batch} intra={intra:?} diverged from serial scalar"
        );
    }
}
