//! Scheduler determinism: the same seeded arrival trace must yield
//! bit-identical responses — predicted labels *and* tier choices — for
//! any worker count, any batch size and any intra-chunk sweep split,
//! mirroring the offline engine's `tests/thread_invariance.rs` guarantee.
//!
//! Why this holds: request `id` selects the per-sample RNG stream (the
//! offline derivation), the batched read path is bit-identical to the
//! scalar path for any chunk composition, the intra-chunk tile sweep
//! splits on tile boundaries (the serial sweep's own loop structure), and
//! routing is a pure function of the policy. Worker count, batch size,
//! sweep split and dispatch timing can only change *when* an answer
//! arrives, never *what* it says.
//!
//! The matrix also crosses the `SPARKXD_TELEMETRY` mode: telemetry is
//! observation-only (counters, histograms and span timers — it never
//! feeds back into scheduling or the engine), so counters and full spans
//! must reproduce the telemetry-off answers bit for bit.

use sparkxd_core::pipeline::PipelineConfig;
use sparkxd_core::{TierBuilder, TierSet};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_serve::{
    arrival_trace, replay_open_loop, LoadSpec, RoutePolicy, ServiceConfig, SparkXdService,
};
use sparkxd_snn::IntraChoice;
use std::time::Duration;

/// Trimmed below `small_demo` so the one-off tier build stays in seconds.
fn tiny_tiers() -> TierSet {
    let config = PipelineConfig {
        neurons: 20,
        timesteps: 20,
        train_samples: 40,
        test_samples: 20,
        baseline_epochs: 1,
        ..PipelineConfig::small_demo(11)
    };
    TierBuilder::new(config).build().expect("tiny tier ladder")
}

#[test]
fn responses_are_bit_identical_across_workers_and_batch_sizes() {
    let tiers = tiny_tiers();
    assert!(tiers.tiers.len() >= 2, "matrix needs a real tier choice");
    let data = SynthDigits.generate(30, 5);
    // Saturation trace (zero offsets): submission order is the trace
    // order on every run, with all four policy shapes in the mix.
    let trace = arrival_trace(
        &LoadSpec {
            requests: 60,
            rate_per_sec: f64::INFINITY,
            seed: 9,
            policy_mix: vec![
                RoutePolicy::AccuracyFloor(0.0),
                RoutePolicy::AccuracyFloor(2.0), // unreachable: falls back
                RoutePolicy::EnergyBudget(f64::MAX),
                RoutePolicy::DeadlineSlack(0.0), // unreachable: falls back
            ],
        },
        data.len(),
    );

    let run = |workers: usize,
               batch: usize,
               intra: IntraChoice,
               telemetry: sparkxd_telemetry::Mode|
     -> Vec<(u64, Option<u8>, usize)> {
        sparkxd_telemetry::set_mode(telemetry);
        let config = ServiceConfig::from_env()
            .with_workers(workers)
            .with_batch(batch)
            .with_intra(intra)
            .with_max_wait(Duration::from_micros(200))
            .with_queue_bound(10_000) // no admission pressure: every
            // request must be answered for the comparison to be total
            .with_spike_seed(0xD0_0D);
        let (service, responses) = SparkXdService::start(tiers.tiers.clone(), config);
        let outcome = replay_open_loop(&service, &data, &trace);
        assert_eq!(outcome.rejected, 0, "bound must never reject this load");
        let snapshot = service.shutdown();
        assert_eq!(snapshot.completed, 60);
        let mut answers: Vec<_> = responses.iter().map(|r| (r.id, r.label, r.tier)).collect();
        answers.sort_unstable();
        answers
    };

    // Serial scalar reference: 1 worker, chunk size 1, serial sweep,
    // telemetry off.
    use sparkxd_telemetry::Mode;
    let reference = run(1, 1, IntraChoice::Off, Mode::Off);
    assert_eq!(reference.len(), 60);
    for (workers, batch, intra, telemetry) in [
        (1, 4, IntraChoice::Off, Mode::Counters),
        (2, 1, IntraChoice::Off, Mode::Spans),
        (2, 3, IntraChoice::Auto, Mode::Off),
        (4, 8, IntraChoice::Auto, Mode::Spans),
        (3, 17, IntraChoice::Workers(2), Mode::Counters),
        (2, 8, IntraChoice::Workers(3), Mode::Spans),
    ] {
        assert_eq!(
            run(workers, batch, intra, telemetry),
            reference,
            "workers={workers} batch={batch} intra={intra:?} telemetry={telemetry:?} \
             diverged from serial scalar"
        );
    }
    // Leave the process-global mode as the suite found it.
    sparkxd_telemetry::force_mode_from_env();
}
