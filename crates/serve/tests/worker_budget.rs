//! Worker-budget accounting under serve load: service workers plus any
//! intra-chunk sweep helpers must stay under the engine's global thread
//! budget — the nested-reservation fix this suite pins.
//!
//! Before the fix, every service worker dispatching `run_batch` with
//! intra-chunk parallelism could have pinned its *own* full-size
//! reservation, multiplying the configured thread count (cores² in the
//! worst case). [`WorkerReservation::claim_leftover`] makes the inner
//! level claim only what the budget has left, so the sum of registered
//! extras never exceeds `configured - 1` — which the [`busy_peak`]
//! high-water mark observes directly.
//!
//! This is a dedicated one-test binary on purpose: the peak is process
//! global, and a sibling test running a `parallel_map` concurrently
//! would pollute it. Same convention as the engine's own single-test
//! integration binaries.

use sparkxd_core::pipeline::MappingSummary;
use sparkxd_core::TierModel;
use sparkxd_serve::{RoutePolicy, ServeRequest, ServiceConfig, SparkXdService};
use sparkxd_snn::engine::{busy_peak, configured_threads, reset_busy_peak};
use sparkxd_snn::{IntraChoice, NetworkParams, NeuronLabeler, SnnConfig};
use std::time::Duration;

/// An untrained single tier with a fixed labelling — enough substrate to
/// drive real `run_batch` dispatches without a training pass.
fn one_tier() -> Vec<TierModel> {
    let params = NetworkParams::new(SnnConfig::for_neurons(40).with_timesteps(8));
    vec![TierModel {
        v_supply: sparkxd_circuit::Volt(1.1),
        precision: sparkxd_snn::WeightPrecision::Fp32,
        operating_ber: 1e-6,
        params,
        labeler: NeuronLabeler::from_assignments((0..40).map(|j| Some((j % 10) as u8)).collect()),
        accuracy_estimate: 0.8,
        dram_pass_mj: 1.0,
        dram_pass_ns: 1_000.0,
        mapping: MappingSummary {
            policy: "sparkxd",
            columns: 1,
            subarrays_used: 1,
            safe_fraction: 1.0,
            word_bits: 32,
        },
    }]
}

#[test]
fn serve_workers_plus_intra_helpers_stay_under_the_global_budget() {
    // Pretend the host has 4 cores so the leftover-claim path is
    // exercised even on single-core CI runners. Safe here: this binary
    // holds exactly one test, so nothing else reads the variable
    // concurrently.
    std::env::set_var("SPARKXD_THREADS", "4");
    let configured = configured_threads();
    assert_eq!(configured, 4);

    let workers = 3;
    let config = ServiceConfig::from_env()
        .with_workers(workers)
        .with_batch(4)
        .with_intra(IntraChoice::Auto)
        .with_max_wait(Duration::from_micros(100))
        .with_queue_bound(10_000);
    reset_busy_peak();
    let (service, rx) = SparkXdService::start(one_tier(), config);
    for id in 0..48 {
        service
            .submit(ServeRequest {
                id,
                pixels: vec![0.5; sparkxd_data::IMAGE_PIXELS],
                policy: RoutePolicy::AccuracyFloor(0.0),
            })
            .expect("bound of 10_000 admits a 48-burst");
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 48);
    assert_eq!(rx.iter().count(), 48);

    // The service pool registers `workers - 1` extras; every intra-chunk
    // claim on top comes out of the leftover budget, so the high-water
    // mark of registered extras must stay under the global cap — never
    // `workers × configured` as naive nested reservations would give.
    let peak = busy_peak();
    assert!(
        peak < configured,
        "budget oversubscribed: peak {peak} extras, cap {}",
        configured - 1
    );
    // And the service's own reservation must itself have been visible
    // (sanity that the peak diagnostic observed this run at all).
    assert!(
        peak >= workers - 1,
        "peak {peak} never reached the service pool's own {} extras",
        workers - 1
    );
    std::env::remove_var("SPARKXD_THREADS");
}
