//! # sparkxd-data
//!
//! Synthetic, procedurally generated image datasets standing in for MNIST
//! and Fashion-MNIST in the SparkXD reproduction.
//!
//! The paper evaluates on MNIST and Fashion-MNIST; neither is available in
//! this offline environment, so we generate datasets that preserve the two
//! properties the experiments depend on:
//!
//! 1. a 10-class, 28×28 grayscale, rate-codable image distribution on which
//!    a larger unsupervised SNN scores higher than a smaller one
//!    ([`SynthDigits`] — rendered digit glyphs with jitter and noise), and
//! 2. a second, *harder* dataset with more intra-class variation and
//!    inter-class overlap, so absolute accuracy drops markedly, as
//!    Fashion-MNIST's does in the paper ([`SynthFashion`] — garment
//!    silhouettes with texture).
//!
//! All generation is deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use sparkxd_data::{Dataset, SynthDigits, SyntheticSource};
//!
//! let train = SynthDigits.generate(100, 42);
//! assert_eq!(train.len(), 100);
//! let (image, label) = train.get(0);
//! assert!(label < 10);
//! assert!(image.pixels().iter().all(|p| (0.0..=1.0).contains(p)));
//! ```

pub mod dataset;
pub mod digits;
pub mod fashion;
pub mod raster;

pub use dataset::{Dataset, Image, SyntheticSource, IMAGE_PIXELS, IMAGE_SIDE};
pub use digits::SynthDigits;
pub use fashion::SynthFashion;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sources_generate() {
        assert_eq!(SynthDigits.generate(10, 1).len(), 10);
        assert_eq!(SynthFashion.generate(10, 1).len(), 10);
    }
}
