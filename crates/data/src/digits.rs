//! `SynthDigits`: the MNIST substitute — rendered digit glyphs with
//! per-sample jitter, stroke-width variation and pixel noise.

use crate::dataset::{Dataset, Image, SyntheticSource};
use crate::raster::{draw_ellipse_arc, draw_polyline, draw_segment, pt, translate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator of MNIST-like digit images.
///
/// Each sample picks its class glyph, a stroke thickness, a small random
/// translation and additive pixel noise — enough intra-class variation that
/// classification is non-trivial, while classes remain separable (paper's
/// MNIST setting, where a 3600-neuron SNN reaches ~92%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthDigits;

impl SynthDigits {
    /// Renders the noiseless prototype of `digit` with stroke `thickness`.
    ///
    /// # Panics
    ///
    /// Panics if `digit > 9`.
    pub fn prototype(digit: u8, thickness: f32) -> Image {
        assert!(digit <= 9, "digit must be 0-9");
        let mut img = Image::black();
        let t = thickness;
        match digit {
            0 => draw_ellipse_arc(&mut img, pt(14.0, 14.0), 6.5, 9.0, 0.0, 360.0, t, 1.0),
            1 => {
                draw_polyline(
                    &mut img,
                    &[pt(10.0, 9.0), pt(14.0, 5.0), pt(14.0, 23.0)],
                    t,
                    1.0,
                );
                draw_segment(&mut img, pt(9.0, 23.0), pt(19.0, 23.0), t, 1.0);
            }
            2 => {
                draw_ellipse_arc(&mut img, pt(14.0, 10.0), 6.0, 5.0, 180.0, 360.0, t, 1.0);
                draw_polyline(
                    &mut img,
                    &[pt(20.0, 10.0), pt(8.0, 23.0), pt(21.0, 23.0)],
                    t,
                    1.0,
                );
            }
            3 => {
                draw_ellipse_arc(&mut img, pt(13.0, 9.5), 5.5, 4.5, 150.0, 360.0, t, 1.0);
                draw_ellipse_arc(&mut img, pt(13.0, 18.5), 6.0, 5.0, -90.0, 120.0, t, 1.0);
            }
            4 => {
                draw_polyline(
                    &mut img,
                    &[pt(17.0, 5.0), pt(7.0, 17.0), pt(21.0, 17.0)],
                    t,
                    1.0,
                );
                draw_segment(&mut img, pt(17.0, 5.0), pt(17.0, 23.0), t, 1.0);
            }
            5 => {
                draw_polyline(
                    &mut img,
                    &[pt(20.0, 5.0), pt(9.0, 5.0), pt(9.0, 13.0)],
                    t,
                    1.0,
                );
                draw_ellipse_arc(&mut img, pt(13.5, 17.0), 6.0, 5.5, -100.0, 130.0, t, 1.0);
            }
            6 => {
                draw_ellipse_arc(&mut img, pt(14.0, 17.5), 5.5, 5.5, 0.0, 360.0, t, 1.0);
                draw_ellipse_arc(&mut img, pt(17.5, 11.0), 9.0, 14.0, 150.0, 215.0, t, 1.0);
            }
            7 => {
                draw_polyline(
                    &mut img,
                    &[pt(8.0, 6.0), pt(21.0, 6.0), pt(12.0, 23.0)],
                    t,
                    1.0,
                );
            }
            8 => {
                draw_ellipse_arc(&mut img, pt(14.0, 9.5), 4.8, 4.5, 0.0, 360.0, t, 1.0);
                draw_ellipse_arc(&mut img, pt(14.0, 18.5), 5.8, 5.0, 0.0, 360.0, t, 1.0);
            }
            _ => {
                draw_ellipse_arc(&mut img, pt(13.5, 10.5), 5.5, 5.5, 0.0, 360.0, t, 1.0);
                draw_ellipse_arc(&mut img, pt(10.0, 17.0), 9.0, 14.0, -35.0, 35.0, t, 1.0);
            }
        }
        img
    }

    fn sample(&self, digit: u8, rng: &mut StdRng) -> Image {
        let thickness = rng.gen_range(1.6..2.6);
        let img = Self::prototype(digit, thickness);
        let dx = rng.gen_range(-2i32..=2);
        let dy = rng.gen_range(-2i32..=2);
        let mut img = translate(&img, dx, dy);
        // Intensity scale and additive noise.
        let scale = rng.gen_range(0.85..1.0);
        for p in img.pixels_mut() {
            let noise: f32 = rng.gen_range(-0.04..0.04);
            *p = (*p * scale + noise).clamp(0.0, 1.0);
        }
        img
    }
}

impl SyntheticSource for SynthDigits {
    fn name(&self) -> &'static str {
        "synth-digits"
    }

    fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let digit = (i % 10) as u8;
            images.push(self.sample(digit, &mut rng));
            labels.push(digit);
        }
        Dataset::from_parts(self.name(), images, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IMAGE_PIXELS;

    #[test]
    fn prototypes_are_distinct() {
        // Pairwise L2 distance between prototypes should be meaningful.
        let protos: Vec<Image> = (0..10).map(|d| SynthDigits::prototype(d, 2.0)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d2: f32 = protos[i]
                    .pixels()
                    .iter()
                    .zip(protos[j].pixels())
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                assert!(
                    d2 / IMAGE_PIXELS as f32 > 0.005,
                    "digits {i} and {j} too similar: {d2}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SynthDigits.generate(30, 9);
        let b = SynthDigits.generate(30, 9);
        assert_eq!(a, b);
        let c = SynthDigits.generate(30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SynthDigits.generate(25, 0);
        assert_eq!(d.get(0).1, 0);
        assert_eq!(d.get(11).1, 1);
        assert_eq!(d.class_count(), 10);
    }

    #[test]
    fn images_have_reasonable_ink() {
        let d = SynthDigits.generate(50, 3);
        for (img, label) in d.iter() {
            let ink = img.mean_intensity();
            assert!(
                (0.02..0.5).contains(&ink),
                "digit {label} ink {ink} out of range"
            );
        }
    }

    #[test]
    fn samples_of_same_class_vary() {
        let d = SynthDigits.generate(40, 5);
        let (a, _) = d.get(0); // both label 0
        let (b, _) = d.get(10);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "digit must be 0-9")]
    fn out_of_range_digit_panics() {
        let _ = SynthDigits::prototype(10, 2.0);
    }
}
