//! Dataset and image containers.

/// Side length of every generated image (28, matching MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Pixels per image (784).
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;

/// A 28×28 grayscale image with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    pixels: Vec<f32>,
}

impl Image {
    /// A black (all-zero) image.
    pub fn black() -> Self {
        Self {
            pixels: vec![0.0; IMAGE_PIXELS],
        }
    }

    /// Builds an image from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` does not hold exactly [`IMAGE_PIXELS`] values.
    pub fn from_pixels(pixels: Vec<f32>) -> Self {
        assert_eq!(pixels.len(), IMAGE_PIXELS, "image must be 28x28");
        Self { pixels }
    }

    /// Pixel intensities, row-major.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutable pixel intensities, row-major.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Intensity at `(x, y)`; `0` outside the canvas.
    pub fn get(&self, x: i32, y: i32) -> f32 {
        if (0..IMAGE_SIDE as i32).contains(&x) && (0..IMAGE_SIDE as i32).contains(&y) {
            self.pixels[y as usize * IMAGE_SIDE + x as usize]
        } else {
            0.0
        }
    }

    /// Sets intensity at `(x, y)` (ignored outside the canvas), clamped to
    /// `[0, 1]`.
    pub fn set(&mut self, x: i32, y: i32, v: f32) {
        if (0..IMAGE_SIDE as i32).contains(&x) && (0..IMAGE_SIDE as i32).contains(&y) {
            self.pixels[y as usize * IMAGE_SIDE + x as usize] = v.clamp(0.0, 1.0);
        }
    }

    /// Maximum-intensity blend at `(x, y)`.
    pub fn blend_max(&mut self, x: i32, y: i32, v: f32) {
        let current = self.get(x, y);
        self.set(x, y, current.max(v));
    }

    /// Mean intensity over the image.
    pub fn mean_intensity(&self) -> f32 {
        self.pixels.iter().sum::<f32>() / IMAGE_PIXELS as f32
    }

    /// Renders the image as ASCII art (useful in examples and debugging).
    pub fn to_ascii(&self) -> String {
        let ramp = [' ', '.', ':', '+', '#', '@'];
        let mut out = String::with_capacity((IMAGE_SIDE + 1) * IMAGE_SIDE);
        for y in 0..IMAGE_SIDE {
            for x in 0..IMAGE_SIDE {
                let v = self.pixels[y * IMAGE_SIDE + x];
                let idx = ((v * (ramp.len() - 1) as f32).round() as usize).min(ramp.len() - 1);
                out.push(ramp[idx]);
            }
            out.push('\n');
        }
        out
    }
}

impl Default for Image {
    fn default() -> Self {
        Self::black()
    }
}

/// An ordered collection of labeled images.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    name: String,
    images: Vec<Image>,
    labels: Vec<u8>,
}

impl Dataset {
    /// Builds a dataset from parallel image/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn from_parts(name: impl Into<String>, images: Vec<Image>, labels: Vec<u8>) -> Self {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        Self {
            name: name.into(),
            images,
            labels,
        }
    }

    /// Dataset name (e.g. `"synth-digits"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Sample `i` as `(image, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> (&Image, u8) {
        (&self.images[i], self.labels[i])
    }

    /// Iterates over `(image, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Image, u8)> {
        self.images.iter().zip(self.labels.iter().copied())
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Number of distinct classes present.
    pub fn class_count(&self) -> usize {
        let mut seen = [false; 256];
        for &l in &self.labels {
            seen[l as usize] = true;
        }
        seen.iter().filter(|s| **s).count()
    }

    /// Splits off the first `n` samples into a new dataset (train/test
    /// separation).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let a = Dataset {
            name: format!("{}-head", self.name),
            images: self.images[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        };
        let b = Dataset {
            name: format!("{}-tail", self.name),
            images: self.images[n..].to_vec(),
            labels: self.labels[n..].to_vec(),
        };
        (a, b)
    }
}

/// A deterministic, seedable dataset generator.
pub trait SyntheticSource {
    /// Human-readable source name.
    fn name(&self) -> &'static str;

    /// Generates `n` labeled samples with labels cycling through the 10
    /// classes, deterministically from `seed`.
    fn generate(&self, n: usize, seed: u64) -> Dataset;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_get_set_bounds() {
        let mut img = Image::black();
        img.set(5, 5, 0.7);
        assert_eq!(img.get(5, 5), 0.7);
        img.set(-1, 0, 1.0); // silently ignored
        assert_eq!(img.get(-1, 0), 0.0);
        img.set(0, 0, 2.0); // clamped
        assert_eq!(img.get(0, 0), 1.0);
    }

    #[test]
    fn blend_max_keeps_brighter() {
        let mut img = Image::black();
        img.set(1, 1, 0.8);
        img.blend_max(1, 1, 0.3);
        assert_eq!(img.get(1, 1), 0.8);
        img.blend_max(1, 1, 0.9);
        assert_eq!(img.get(1, 1), 0.9);
    }

    #[test]
    fn dataset_split() {
        let images = vec![Image::black(); 10];
        let labels: Vec<u8> = (0..10).collect();
        let d = Dataset::from_parts("t", images, labels);
        let (a, b) = d.split_at(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0).1, 7);
    }

    #[test]
    fn class_count_counts_distinct() {
        let d = Dataset::from_parts("t", vec![Image::black(); 4], vec![0, 1, 1, 3]);
        assert_eq!(d.class_count(), 3);
    }

    #[test]
    fn ascii_render_has_rows() {
        let art = Image::black().to_ascii();
        assert_eq!(art.lines().count(), IMAGE_SIDE);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_parts_panic() {
        let _ = Dataset::from_parts("t", vec![Image::black()], vec![]);
    }
}
