//! A tiny anti-aliased rasteriser for generating glyphs and silhouettes.

use crate::dataset::{Image, IMAGE_SIDE};

/// A 2-D point in canvas coordinates (pixels; `(0,0)` is top-left).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f32,
    /// Vertical coordinate.
    pub y: f32,
}

/// Shorthand constructor for [`Point`].
pub fn pt(x: f32, y: f32) -> Point {
    Point { x, y }
}

/// Distance from `p` to the segment `a`-`b`.
fn segment_distance(p: Point, a: Point, b: Point) -> f32 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((p.x - a.x) * dx + (p.y - a.y) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (a.x + t * dx, a.y + t * dy);
    ((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt()
}

/// Draws a stroked segment with the given thickness; edges fall off over
/// one pixel for a soft, MNIST-like appearance.
pub fn draw_segment(img: &mut Image, a: Point, b: Point, thickness: f32, intensity: f32) {
    let half = thickness / 2.0;
    let min_x = (a.x.min(b.x) - half - 1.0).floor() as i32;
    let max_x = (a.x.max(b.x) + half + 1.0).ceil() as i32;
    let min_y = (a.y.min(b.y) - half - 1.0).floor() as i32;
    let max_y = (a.y.max(b.y) + half + 1.0).ceil() as i32;
    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let d = segment_distance(pt(x as f32, y as f32), a, b);
            if d < half + 1.0 {
                let v = intensity * (1.0 - ((d - half).max(0.0))).clamp(0.0, 1.0);
                img.blend_max(x, y, v);
            }
        }
    }
}

/// Draws a polyline through `points`.
pub fn draw_polyline(img: &mut Image, points: &[Point], thickness: f32, intensity: f32) {
    for w in points.windows(2) {
        draw_segment(img, w[0], w[1], thickness, intensity);
    }
}

/// Draws an ellipse outline centred at `c` with radii `(rx, ry)`, sweeping
/// `start_deg..end_deg` (counter-clockwise, 0° = +x axis).
#[allow(clippy::too_many_arguments)] // a drawing primitive's natural parameter list
pub fn draw_ellipse_arc(
    img: &mut Image,
    c: Point,
    rx: f32,
    ry: f32,
    start_deg: f32,
    end_deg: f32,
    thickness: f32,
    intensity: f32,
) {
    let steps = 48;
    let points: Vec<Point> = (0..=steps)
        .map(|i| {
            let t = start_deg + (end_deg - start_deg) * i as f32 / steps as f32;
            let rad = t.to_radians();
            pt(c.x + rx * rad.cos(), c.y + ry * rad.sin())
        })
        .collect();
    draw_polyline(img, &points, thickness, intensity);
}

/// Fills the convex polygon given by `points` (non-convex shapes can be
/// composed from several convex fills).
pub fn fill_polygon(img: &mut Image, points: &[Point], intensity: f32) {
    if points.len() < 3 {
        return;
    }
    let min_x = points
        .iter()
        .map(|p| p.x)
        .fold(f32::INFINITY, f32::min)
        .floor() as i32;
    let max_x = points.iter().map(|p| p.x).fold(0.0, f32::max).ceil() as i32;
    let min_y = points
        .iter()
        .map(|p| p.y)
        .fold(f32::INFINITY, f32::min)
        .floor() as i32;
    let max_y = points.iter().map(|p| p.y).fold(0.0, f32::max).ceil() as i32;
    for y in min_y..=max_y {
        for x in min_x..=max_x {
            if point_in_polygon(pt(x as f32 + 0.5, y as f32 + 0.5), points) {
                img.blend_max(x, y, intensity);
            }
        }
    }
}

/// Even-odd point-in-polygon test.
fn point_in_polygon(p: Point, poly: &[Point]) -> bool {
    let mut inside = false;
    let n = poly.len();
    let mut j = n - 1;
    for i in 0..n {
        let (pi, pj) = (poly[i], poly[j]);
        if ((pi.y > p.y) != (pj.y > p.y))
            && (p.x < (pj.x - pi.x) * (p.y - pi.y) / (pj.y - pi.y) + pi.x)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

/// Fills an axis-aligned rectangle.
pub fn fill_rect(img: &mut Image, top_left: Point, bottom_right: Point, intensity: f32) {
    fill_polygon(
        img,
        &[
            top_left,
            pt(bottom_right.x, top_left.y),
            bottom_right,
            pt(top_left.x, bottom_right.y),
        ],
        intensity,
    );
}

/// Translates the whole image by integer `(dx, dy)`, clipping at edges.
pub fn translate(img: &Image, dx: i32, dy: i32) -> Image {
    let mut out = Image::black();
    for y in 0..IMAGE_SIDE as i32 {
        for x in 0..IMAGE_SIDE as i32 {
            let v = img.get(x - dx, y - dy);
            if v > 0.0 {
                out.set(x, y, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_draws_pixels_near_line() {
        let mut img = Image::black();
        draw_segment(&mut img, pt(4.0, 14.0), pt(24.0, 14.0), 2.0, 1.0);
        assert!(img.get(14, 14) > 0.8, "centre of stroke lit");
        assert!(img.get(14, 20) == 0.0, "far from stroke dark");
    }

    #[test]
    fn ellipse_is_closed_ring() {
        let mut img = Image::black();
        draw_ellipse_arc(&mut img, pt(14.0, 14.0), 8.0, 10.0, 0.0, 360.0, 2.0, 1.0);
        // On-ring bright, centre dark.
        assert!(img.get(22, 14) > 0.5);
        assert!(img.get(14, 14) < 0.2);
    }

    #[test]
    fn fill_rect_fills_interior() {
        let mut img = Image::black();
        fill_rect(&mut img, pt(5.0, 5.0), pt(15.0, 15.0), 0.9);
        assert!(img.get(10, 10) > 0.8);
        assert_eq!(img.get(20, 20), 0.0);
    }

    #[test]
    fn polygon_triangle() {
        let mut img = Image::black();
        fill_polygon(
            &mut img,
            &[pt(14.0, 4.0), pt(24.0, 24.0), pt(4.0, 24.0)],
            1.0,
        );
        assert!(img.get(14, 18) > 0.9, "inside triangle");
        assert_eq!(img.get(2, 4), 0.0, "outside triangle");
    }

    #[test]
    fn translate_moves_content() {
        let mut img = Image::black();
        img.set(10, 10, 1.0);
        let moved = translate(&img, 3, -2);
        assert_eq!(moved.get(13, 8), 1.0);
        assert_eq!(moved.get(10, 10), 0.0);
    }

    #[test]
    fn translate_clips_at_border() {
        let mut img = Image::black();
        img.set(27, 27, 1.0);
        let moved = translate(&img, 5, 5);
        assert!(moved.pixels().iter().all(|&p| p == 0.0));
    }
}
