//! `SynthFashion`: the Fashion-MNIST substitute — filled garment
//! silhouettes with texture, higher intra-class variation and deliberate
//! inter-class similarity (shirt-like classes overlap), making it markedly
//! harder than [`SynthDigits`](crate::SynthDigits), as Fashion-MNIST is in
//! the paper (≈61% vs ≈92% for the largest network).

use crate::dataset::{Dataset, Image, SyntheticSource};
use crate::raster::{draw_ellipse_arc, fill_polygon, fill_rect, pt, translate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator of Fashion-MNIST-like garment images.
///
/// Classes (0–9): t-shirt, trouser, pullover, dress, coat, sandal, shirt,
/// sneaker, bag, ankle boot — mirroring Fashion-MNIST's label set. The four
/// upper-body classes (0, 2, 4, 6) intentionally share a silhouette and
/// differ only in sleeves/length/texture, which caps achievable accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthFashion;

impl SynthFashion {
    /// Renders the noiseless prototype of `class` with body width/sleeve
    /// parameters `w` (≈ garment half-width in pixels).
    ///
    /// # Panics
    ///
    /// Panics if `class > 9`.
    pub fn prototype(class: u8, w: f32) -> Image {
        assert!(class <= 9, "class must be 0-9");
        let mut img = Image::black();
        let cx = 14.0;
        match class {
            // T-shirt: torso + short sleeves.
            0 => {
                fill_rect(&mut img, pt(cx - w, 8.0), pt(cx + w, 23.0), 0.85);
                fill_polygon(
                    &mut img,
                    &[pt(cx - w, 8.0), pt(cx - w - 4.0, 13.0), pt(cx - w, 14.0)],
                    0.85,
                );
                fill_polygon(
                    &mut img,
                    &[pt(cx + w, 8.0), pt(cx + w + 4.0, 13.0), pt(cx + w, 14.0)],
                    0.85,
                );
            }
            // Trouser: two legs.
            1 => {
                fill_rect(&mut img, pt(cx - w, 5.0), pt(cx - 1.0, 24.0), 0.85);
                fill_rect(&mut img, pt(cx + 1.0, 5.0), pt(cx + w, 24.0), 0.85);
                fill_rect(&mut img, pt(cx - w, 5.0), pt(cx + w, 9.0), 0.85);
            }
            // Pullover: torso + long sleeves.
            2 => {
                fill_rect(&mut img, pt(cx - w, 7.0), pt(cx + w, 23.0), 0.85);
                fill_rect(&mut img, pt(cx - w - 4.0, 8.0), pt(cx - w, 22.0), 0.85);
                fill_rect(&mut img, pt(cx + w, 8.0), pt(cx + w + 4.0, 22.0), 0.85);
            }
            // Dress: flared trapezoid.
            3 => fill_polygon(
                &mut img,
                &[
                    pt(cx - w * 0.6, 5.0),
                    pt(cx + w * 0.6, 5.0),
                    pt(cx + w + 2.0, 25.0),
                    pt(cx - w - 2.0, 25.0),
                ],
                0.85,
            ),
            // Coat: long torso + long sleeves + collar notch.
            4 => {
                fill_rect(&mut img, pt(cx - w, 5.0), pt(cx + w, 25.0), 0.85);
                fill_rect(&mut img, pt(cx - w - 4.0, 6.0), pt(cx - w, 24.0), 0.85);
                fill_rect(&mut img, pt(cx + w, 6.0), pt(cx + w + 4.0, 24.0), 0.85);
                fill_polygon(
                    &mut img,
                    &[pt(cx - 2.0, 5.0), pt(cx + 2.0, 5.0), pt(cx, 10.0)],
                    0.0,
                );
            }
            // Sandal: sole + straps.
            5 => {
                fill_rect(&mut img, pt(4.0, 20.0), pt(24.0, 23.0), 0.85);
                draw_ellipse_arc(&mut img, pt(12.0, 20.0), 6.0, 6.0, 180.0, 300.0, 1.6, 0.85);
                draw_ellipse_arc(&mut img, pt(19.0, 20.0), 4.0, 5.0, 180.0, 320.0, 1.6, 0.85);
            }
            // Shirt: like t-shirt but with a button placket (dark stripe).
            6 => {
                fill_rect(&mut img, pt(cx - w, 7.0), pt(cx + w, 24.0), 0.85);
                fill_polygon(
                    &mut img,
                    &[pt(cx - w, 7.0), pt(cx - w - 4.0, 12.0), pt(cx - w, 13.0)],
                    0.85,
                );
                fill_polygon(
                    &mut img,
                    &[pt(cx + w, 7.0), pt(cx + w + 4.0, 12.0), pt(cx + w, 13.0)],
                    0.85,
                );
                fill_rect(&mut img, pt(cx - 0.5, 7.0), pt(cx + 0.5, 24.0), 0.2);
            }
            // Sneaker: low wedge.
            7 => fill_polygon(
                &mut img,
                &[
                    pt(4.0, 23.0),
                    pt(4.0, 18.0),
                    pt(12.0, 15.0),
                    pt(24.0, 19.0),
                    pt(24.0, 23.0),
                ],
                0.85,
            ),
            // Bag: body + handle arc.
            8 => {
                fill_rect(&mut img, pt(6.0, 12.0), pt(22.0, 24.0), 0.85);
                draw_ellipse_arc(&mut img, pt(14.0, 12.0), 5.0, 6.0, 180.0, 360.0, 1.8, 0.85);
            }
            // Ankle boot: L-shaped shaft + sole.
            _ => {
                fill_rect(&mut img, pt(9.0, 8.0), pt(17.0, 20.0), 0.85);
                fill_polygon(
                    &mut img,
                    &[pt(9.0, 20.0), pt(24.0, 20.0), pt(24.0, 24.0), pt(9.0, 24.0)],
                    0.85,
                );
            }
        }
        img
    }

    fn sample(&self, class: u8, rng: &mut StdRng) -> Image {
        // Wider shape variation than digits: garment width varies a lot.
        let w = rng.gen_range(4.5..7.5);
        let img = Self::prototype(class, w);
        let dx = rng.gen_range(-2i32..=2);
        let dy = rng.gen_range(-2i32..=2);
        let mut img = translate(&img, dx, dy);
        // Fabric texture: horizontal intensity ripple + heavier noise.
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let ripple: f32 = rng.gen_range(0.0..0.25);
        let scale = rng.gen_range(0.7..1.0);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            if *p > 0.0 {
                let y = (i / crate::dataset::IMAGE_SIDE) as f32;
                let tex = 1.0 - ripple * (0.9 * y + phase).sin().abs();
                *p *= scale * tex;
            }
            let noise: f32 = rng.gen_range(-0.06..0.06);
            *p = (*p + noise).clamp(0.0, 1.0);
        }
        img
    }
}

impl SyntheticSource for SynthFashion {
    fn name(&self) -> &'static str {
        "synth-fashion"
    }

    fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % 10) as u8;
            images.push(self.sample(class, &mut rng));
            labels.push(class);
        }
        Dataset::from_parts(self.name(), images, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        assert_eq!(SynthFashion.generate(20, 4), SynthFashion.generate(20, 4));
    }

    #[test]
    fn upper_body_classes_overlap_more_than_digits() {
        // T-shirt (0) vs shirt (6) should be much closer than
        // t-shirt vs trouser (1): the intended hardness property.
        let a = SynthFashion::prototype(0, 6.0);
        let b = SynthFashion::prototype(6, 6.0);
        let c = SynthFashion::prototype(1, 6.0);
        let dist = |x: &Image, y: &Image| -> f32 {
            x.pixels()
                .iter()
                .zip(y.pixels())
                .map(|(p, q)| (p - q).powi(2))
                .sum()
        };
        assert!(dist(&a, &b) < dist(&a, &c) * 0.7);
    }

    #[test]
    fn all_classes_draw_ink() {
        for class in 0..10 {
            let img = SynthFashion::prototype(class, 6.0);
            assert!(
                img.mean_intensity() > 0.02,
                "class {class} renders almost nothing"
            );
        }
    }

    #[test]
    fn fashion_is_noisier_than_digits() {
        use crate::digits::SynthDigits;
        let f = SynthFashion.generate(100, 8);
        let d = SynthDigits.generate(100, 8);
        // Background noise: mean intensity of near-zero pixels.
        let bg = |ds: &Dataset| -> f32 {
            let mut sum = 0.0;
            let mut n = 0;
            for (img, _) in ds.iter() {
                for &p in img.pixels() {
                    if p < 0.2 {
                        sum += p;
                        n += 1;
                    }
                }
            }
            sum / n as f32
        };
        assert!(bg(&f) > bg(&d));
    }

    #[test]
    #[should_panic(expected = "class must be 0-9")]
    fn out_of_range_class_panics() {
        let _ = SynthFashion::prototype(11, 6.0);
    }
}
