//! # sparkxd-error
//!
//! Probabilistic error models for approximate (reduced-voltage) DRAM,
//! following the four models of EDEN (Koppula et al., MICRO 2019) that the
//! SparkXD paper builds on (paper Section III):
//!
//! * **Model 0** — uniform random bit errors across a DRAM bank (the model
//!   the paper uses for training and evaluation);
//! * **Model 1** — errors clustered on weak *bitlines*;
//! * **Model 2** — errors clustered on weak *wordlines*;
//! * **Model 3** — data-dependent errors (cells holding `1` fail more often
//!   than cells holding `0`).
//!
//! The crate also provides:
//!
//! * the **BER-vs-voltage curve** of paper Fig. 2(c) ([`BerCurve`]),
//! * **weak-cell maps** with per-subarray error-rate variation
//!   ([`WeakCellMap`], [`ErrorProfile`]) — the input to SparkXD's
//!   safe-subarray mapping, and
//! * fast, deterministic **bit-flip injection** into weight images
//!   ([`Injector`]).
//!
//! ## Example
//!
//! ```
//! use sparkxd_error::{BerCurve, ErrorModel, Injector};
//! use sparkxd_circuit::Volt;
//!
//! let curve = BerCurve::paper_default();
//! let ber = curve.ber_at(Volt(1.025));
//! assert!(ber > 1e-4 && ber < 1e-2);
//!
//! let mut weights = vec![0.5f32; 4096];
//! let report = Injector::new(ErrorModel::Model0, 42).inject_uniform(&mut weights, 1e-3);
//! assert!(report.flips > 0);
//! ```

pub mod ecc;
pub mod inject;
pub mod models;
pub mod sampling;
pub mod voltage;
pub mod weak_cells;

pub use ecc::{DecodeOutcome, SecDed};
pub use inject::{InjectionReport, Injector, WordPlacement};
pub use models::ErrorModel;
pub use voltage::BerCurve;
pub use weak_cells::{ErrorProfile, WeakCellMap};

/// Errors reported by this crate's fallible APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectError {
    /// Placement slice shorter than the weight slice.
    PlacementLengthMismatch {
        /// Number of weight words.
        words: usize,
        /// Number of placements provided.
        placements: usize,
    },
    /// A bit-error rate outside `[0, 0.5]`.
    InvalidBer(f64),
}

impl std::fmt::Display for InjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectError::PlacementLengthMismatch { words, placements } => write!(
                f,
                "placement length {placements} does not match {words} weight words"
            ),
            InjectError::InvalidBer(ber) => write!(f, "bit error rate {ber} outside [0, 0.5]"),
        }
    }
}

impl std::error::Error for InjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = InjectError::InvalidBer(0.7);
        assert!(e.to_string().contains("0.7"));
    }
}
