//! Weak-cell maps and per-subarray error profiles.
//!
//! Reduced-voltage errors are not spatially uniform in real devices: some
//! subarrays contain more *weak cells* (cells that fail when timing/voltage
//! margins shrink) than others (Chang et al., POMACS 2017). SparkXD's
//! mapping exploits exactly this: subarrays whose error rate exceeds the
//! SNN's tolerable BER are avoided.
//!
//! A [`WeakCellMap`] assigns each subarray a deterministic, seed-derived
//! error-rate multiplier (log-normal across subarrays); an [`ErrorProfile`]
//! binds the map to a device-level base BER to give per-subarray rates.

use crate::sampling::{hash_unit, mix64};
use sparkxd_dram::{DramGeometry, SubarrayId};

/// Per-subarray error-rate variation of one physical device instance.
///
/// # Example
///
/// ```
/// use sparkxd_dram::DramGeometry;
/// use sparkxd_error::WeakCellMap;
///
/// let g = DramGeometry::lpddr3_1600_4gb();
/// let map = WeakCellMap::generate(&g, 1234);
/// // Multipliers vary across subarrays but are deterministic per seed.
/// assert_eq!(map.multipliers(), WeakCellMap::generate(&g, 1234).multipliers());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeakCellMap {
    seed: u64,
    multipliers: Vec<f64>,
}

impl WeakCellMap {
    /// Log-normal sigma of the across-subarray rate variation.
    pub const SIGMA: f64 = 0.8;

    /// Generates the map for every subarray of `geometry`, deterministically
    /// from `seed` (a device-instance identifier).
    pub fn generate(geometry: &DramGeometry, seed: u64) -> Self {
        let n = geometry.total_subarrays();
        let multipliers = (0..n)
            .map(|i| {
                // Box-Muller from two seed-derived uniforms.
                let u1 = hash_unit(seed, i as u64).max(f64::MIN_POSITIVE);
                let u2 = hash_unit(mix64(seed), i as u64);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (Self::SIGMA * z).exp().clamp(0.05, 20.0)
            })
            .collect();
        Self { seed, multipliers }
    }

    /// The seed this map was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Error-rate multipliers indexed by flat subarray id.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// Multiplier of one subarray.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the generating geometry.
    pub fn multiplier(&self, id: SubarrayId) -> f64 {
        self.multipliers[id.0]
    }

    /// Binds the map to a device-level base BER, producing per-subarray
    /// rates clamped to `[0, 0.5]`.
    pub fn profile(&self, base_ber: f64) -> ErrorProfile {
        ErrorProfile {
            base_ber,
            per_subarray_ber: self
                .multipliers
                .iter()
                .map(|m| (base_ber * m).min(0.5))
                .collect(),
        }
    }
}

/// Per-subarray bit-error rates at one operating voltage: the "DRAM error
/// profile" box of the paper's framework figure (Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorProfile {
    base_ber: f64,
    per_subarray_ber: Vec<f64>,
}

impl ErrorProfile {
    /// Builds a profile directly from explicit per-subarray rates.
    pub fn from_rates(base_ber: f64, per_subarray_ber: Vec<f64>) -> Self {
        Self {
            base_ber,
            per_subarray_ber,
        }
    }

    /// A uniform profile (every subarray at `ber`) with `n` subarrays —
    /// pure Error-Model-0 behaviour without spatial variation.
    pub fn uniform(ber: f64, n: usize) -> Self {
        Self {
            base_ber: ber,
            per_subarray_ber: vec![ber; n],
        }
    }

    /// Device-level base BER the profile was built from.
    pub fn base_ber(&self) -> f64 {
        self.base_ber
    }

    /// BER of one subarray.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ber(&self, id: SubarrayId) -> f64 {
        self.per_subarray_ber[id.0]
    }

    /// All per-subarray rates, indexed by flat subarray id.
    pub fn rates(&self) -> &[f64] {
        &self.per_subarray_ber
    }

    /// Number of subarrays covered.
    pub fn len(&self) -> usize {
        self.per_subarray_ber.len()
    }

    /// `true` if the profile covers no subarrays.
    pub fn is_empty(&self) -> bool {
        self.per_subarray_ber.is_empty()
    }

    /// Subarrays whose rate is at or below `threshold` — the *safe*
    /// subarrays of the paper's Algorithm 2 (line 7).
    pub fn safe_subarrays(&self, threshold: f64) -> Vec<SubarrayId> {
        self.per_subarray_ber
            .iter()
            .enumerate()
            .filter(|(_, &r)| r <= threshold)
            .map(|(i, _)| SubarrayId(i))
            .collect()
    }

    /// Fraction of subarrays that are safe at `threshold`.
    pub fn safe_fraction(&self, threshold: f64) -> f64 {
        if self.per_subarray_ber.is_empty() {
            return 0.0;
        }
        self.safe_subarrays(threshold).len() as f64 / self.per_subarray_ber.len() as f64
    }

    /// Mean rate across subarrays.
    pub fn mean_ber(&self) -> f64 {
        if self.per_subarray_ber.is_empty() {
            return 0.0;
        }
        self.per_subarray_ber.iter().sum::<f64>() / self.per_subarray_ber.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let g = DramGeometry::tiny();
        let a = WeakCellMap::generate(&g, 1);
        let b = WeakCellMap::generate(&g, 1);
        let c = WeakCellMap::generate(&g, 2);
        assert_eq!(a, b);
        assert_ne!(a.multipliers(), c.multipliers());
    }

    #[test]
    fn multipliers_are_bounded_and_varied() {
        let g = DramGeometry::lpddr3_1600_4gb();
        let m = WeakCellMap::generate(&g, 7);
        assert!(m.multipliers().iter().all(|&x| (0.05..=20.0).contains(&x)));
        let min = m
            .multipliers()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = m.multipliers().iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "expect meaningful spatial variation");
    }

    #[test]
    fn profile_scales_with_base_ber() {
        let g = DramGeometry::tiny();
        let map = WeakCellMap::generate(&g, 3);
        let p1 = map.profile(1e-6);
        let p2 = map.profile(1e-4);
        for (a, b) in p1.rates().iter().zip(p2.rates()) {
            assert!((b / a - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn safe_subarrays_threshold_behaviour() {
        let p = ErrorProfile::from_rates(1e-5, vec![1e-6, 1e-5, 1e-4, 1e-3]);
        let safe = p.safe_subarrays(1e-5);
        assert_eq!(safe, vec![SubarrayId(0), SubarrayId(1)]);
        assert_eq!(p.safe_fraction(1e-5), 0.5);
        assert!(p.safe_subarrays(0.0).is_empty());
        assert_eq!(p.safe_subarrays(1.0).len(), 4);
    }

    #[test]
    fn uniform_profile_is_flat() {
        let p = ErrorProfile::uniform(1e-4, 8);
        assert!(p.rates().iter().all(|&r| r == 1e-4));
        assert!((p.mean_ber() - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn profile_rates_clamped_at_half() {
        let g = DramGeometry::tiny();
        let map = WeakCellMap::generate(&g, 3);
        let p = map.profile(0.4);
        assert!(p.rates().iter().all(|&r| r <= 0.5));
    }

    proptest! {
        #[test]
        fn safe_fraction_monotone_in_threshold(t1 in 1e-9f64..1e-2, t2 in 1e-9f64..1e-2) {
            let g = DramGeometry::tiny();
            let p = WeakCellMap::generate(&g, 11).profile(1e-5);
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(p.safe_fraction(lo) <= p.safe_fraction(hi));
        }
    }
}
