//! Sampling primitives for fast, exact Bernoulli error injection.
//!
//! Injecting errors bit-by-bit is O(total bits); for an 11 MB weight image
//! that is ~10⁸ Bernoulli draws per injection. Instead we sample the *gaps*
//! between flipped bits — geometrically distributed for an i.i.d. Bernoulli
//! process — which is O(expected flips) and statistically exact.

use rand::Rng;

/// Iterator over the positions of successes of an i.i.d. Bernoulli(`p`)
/// process over `n` trials, produced by geometric gap sampling.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sparkxd_error::sampling::BernoulliPositions;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let hits: Vec<u64> = BernoulliPositions::new(1_000_000, 1e-3, &mut rng).collect();
/// // Expect about 1000 hits.
/// assert!((800..1200).contains(&hits.len()));
/// ```
#[derive(Debug)]
pub struct BernoulliPositions<'a, R: Rng> {
    n: u64,
    log_q: f64,
    next: u64,
    rng: &'a mut R,
    exhausted: bool,
}

impl<'a, R: Rng> BernoulliPositions<'a, R> {
    /// Creates the sampler over `n` trials with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1)`.
    pub fn new(n: u64, p: f64, rng: &'a mut R) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        let mut s = Self {
            n,
            log_q: (1.0 - p).ln(),
            next: 0,
            rng,
            exhausted: p == 0.0 || n == 0,
        };
        if !s.exhausted {
            s.advance(true);
        }
        s
    }

    fn advance(&mut self, first: bool) {
        // Gap to the next success: floor(ln(U)/ln(1-p)), U ~ Uniform(0,1].
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..=1.0);
        let gap = (u.ln() / self.log_q).floor() as u64;
        let base = if first { 0 } else { self.next + 1 };
        match base.checked_add(gap) {
            Some(pos) if pos < self.n => self.next = pos,
            _ => self.exhausted = true,
        }
    }
}

impl<R: Rng> Iterator for BernoulliPositions<'_, R> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.exhausted {
            return None;
        }
        let pos = self.next;
        self.advance(false);
        Some(pos)
    }
}

/// 64-bit mix (splitmix64 finaliser): deterministic hashing of structural
/// indices (bitline, wordline, subarray) into uniform u64s, independent of
/// the injection RNG stream.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic uniform `[0,1)` value derived from `(seed, index)`.
pub fn hash_unit(seed: u64, index: u64) -> f64 {
    let h = mix64(seed ^ mix64(index));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(BernoulliPositions::new(1000, 0.0, &mut rng).count(), 0);
    }

    #[test]
    fn positions_are_strictly_increasing_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let pos: Vec<u64> = BernoulliPositions::new(10_000, 0.01, &mut rng).collect();
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
        assert!(pos.iter().all(|&p| p < 10_000));
    }

    #[test]
    fn hit_count_statistics_match_binomial() {
        // n*p = 5000; std = sqrt(n*p*(1-p)) ~ 70; allow 5 sigma.
        let mut rng = StdRng::seed_from_u64(3);
        let count = BernoulliPositions::new(1_000_000, 5e-3, &mut rng).count() as f64;
        assert!((count - 5000.0).abs() < 5.0 * 70.6, "count {count}");
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            BernoulliPositions::new(100_000, 1e-3, &mut rng).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            BernoulliPositions::new(100_000, 1e-3, &mut rng).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn hash_unit_is_uniformish() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| hash_unit(42, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // Deterministic.
        assert_eq!(hash_unit(1, 2), hash_unit(1, 2));
        assert_ne!(hash_unit(1, 2), hash_unit(2, 2));
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1)")]
    fn invalid_probability_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = BernoulliPositions::new(10, 1.5, &mut rng);
    }
}
