//! The four EDEN error models (paper Section III).

/// Spatial/data distribution of voltage-induced bit errors.
///
/// The paper adopts **Model 0** (uniform random across a bank) for both
/// training-time injection and evaluation, arguing it closely approximates
/// the others; models 1–3 are provided for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ErrorModel {
    /// Uniform random errors across a DRAM bank.
    #[default]
    Model0,
    /// Errors concentrated on weak *bitlines*: a fraction
    /// `weak_fraction` of bitlines carries all the errors.
    Model1 {
        /// Fraction of bitlines that are weak, in `(0, 1]`.
        weak_fraction: f64,
    },
    /// Errors concentrated on weak *wordlines* (rows).
    Model2 {
        /// Fraction of wordlines that are weak, in `(0, 1]`.
        weak_fraction: f64,
    },
    /// Data-dependent errors: cells storing `1` fail with a different
    /// probability than cells storing `0` (true-cells discharge, so
    /// `1 → 0` dominates in practice).
    Model3 {
        /// Share of the error budget attributed to `1` cells, in `[0, 1]`.
        /// `0.5` degenerates to Model 0.
        one_bias: f64,
    },
}

impl ErrorModel {
    /// Model 1 with the default 10% weak-bitline fraction.
    pub fn model1_default() -> Self {
        ErrorModel::Model1 { weak_fraction: 0.1 }
    }

    /// Model 2 with the default 10% weak-wordline fraction.
    pub fn model2_default() -> Self {
        ErrorModel::Model2 { weak_fraction: 0.1 }
    }

    /// Model 3 with the default 80% one-bias.
    pub fn model3_default() -> Self {
        ErrorModel::Model3 { one_bias: 0.8 }
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorModel::Model0 => "model0",
            ErrorModel::Model1 { .. } => "model1",
            ErrorModel::Model2 { .. } => "model2",
            ErrorModel::Model3 { .. } => "model3",
        }
    }
}

impl std::fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorModel::Model0 => write!(f, "model0 (uniform)"),
            ErrorModel::Model1 { weak_fraction } => {
                write!(f, "model1 (bitline, weak={weak_fraction})")
            }
            ErrorModel::Model2 { weak_fraction } => {
                write!(f, "model2 (wordline, weak={weak_fraction})")
            }
            ErrorModel::Model3 { one_bias } => write!(f, "model3 (data, one_bias={one_bias})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ErrorModel::Model0.label(), "model0");
        assert_eq!(ErrorModel::model1_default().label(), "model1");
        assert_eq!(ErrorModel::model2_default().label(), "model2");
        assert_eq!(ErrorModel::model3_default().label(), "model3");
    }

    #[test]
    fn default_is_model0() {
        assert_eq!(ErrorModel::default(), ErrorModel::Model0);
    }

    #[test]
    fn display_names_parameters() {
        let s = ErrorModel::Model1 { weak_fraction: 0.2 }.to_string();
        assert!(s.contains("0.2"));
    }
}
