//! SECDED ECC substrate (extension).
//!
//! The classical alternative to SparkXD's software error tolerance is
//! hardware ECC: a Hamming(72,64) single-error-correct / double-error-
//! detect code per 64-bit word, at 12.5% storage (and hence DRAM access
//! and energy) overhead. This module implements the code bit-exactly so
//! the two mitigations can be compared: ECC fixes all single-bit errors
//! per word but breaks down when the per-word multi-bit probability grows,
//! while SparkXD's trained tolerance degrades gracefully and costs no
//! extra accesses.

/// Hamming(72,64) SECDED codec: 64 data bits, 7 Hamming parity bits and
/// one overall parity bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SecDed;

/// Result of decoding a (possibly corrupted) code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// No error detected.
    Clean(u64),
    /// A single-bit error was corrected (bit position in the 72-bit word).
    Corrected(u64, u32),
    /// A double-bit error was detected but cannot be corrected.
    DoubleError,
}

impl SecDed {
    /// Number of bits in a code word.
    pub const CODE_BITS: u32 = 72;
    /// Number of data bits per code word.
    pub const DATA_BITS: u32 = 64;

    /// Storage/access overhead fraction of the code (12.5%).
    pub fn overhead_fraction() -> f64 {
        (Self::CODE_BITS - Self::DATA_BITS) as f64 / Self::DATA_BITS as f64
    }

    /// `true` if `pos` (1-based Hamming position) holds a parity bit.
    fn is_parity_position(pos: u32) -> bool {
        pos.is_power_of_two()
    }

    /// Encodes 64 data bits into a 72-bit code word (stored in the low 72
    /// bits of the returned `u128`). Bit 0 is the overall parity; bits
    /// 1..=71 are Hamming positions 1..=71.
    pub fn encode(data: u64) -> u128 {
        let mut code: u128 = 0;
        // Scatter data bits into non-parity positions 3,5,6,7,9,...
        let mut d = 0u32;
        for pos in 1..=71u32 {
            if !Self::is_parity_position(pos) {
                if (data >> d) & 1 == 1 {
                    code |= 1u128 << pos;
                }
                d += 1;
            }
        }
        debug_assert_eq!(d, 64);
        // Hamming parity bits.
        for p in [1u32, 2, 4, 8, 16, 32, 64] {
            let mut parity = 0u128;
            for pos in 1..=71u32 {
                if pos & p != 0 && !Self::is_parity_position(pos) {
                    parity ^= (code >> pos) & 1;
                }
            }
            code |= parity << p;
        }
        // Overall parity over positions 1..=71 in bit 0.
        let mut overall = 0u128;
        for pos in 1..=71u32 {
            overall ^= (code >> pos) & 1;
        }
        code | overall
    }

    /// Decodes a 72-bit code word, correcting a single flipped bit.
    pub fn decode(mut code: u128) -> DecodeOutcome {
        let mut syndrome = 0u32;
        for p in [1u32, 2, 4, 8, 16, 32, 64] {
            let mut parity = 0u128;
            for pos in 1..=71u32 {
                if pos & p != 0 {
                    parity ^= (code >> pos) & 1;
                }
            }
            if parity == 1 {
                syndrome |= p;
            }
        }
        let mut overall = 0u128;
        for pos in 0..=71u32 {
            overall ^= (code >> pos) & 1;
        }
        let overall_bad = overall == 1;

        let corrected_bit = match (syndrome, overall_bad) {
            (0, false) => None,              // clean
            (0, true) => Some(0),            // overall parity bit flipped
            (s, true) if s <= 71 => Some(s), // single-bit error
            _ => return DecodeOutcome::DoubleError,
        };
        let data_was_clean = corrected_bit.is_none();
        if let Some(bit) = corrected_bit {
            code ^= 1u128 << bit;
        }
        let data = Self::extract(code);
        match corrected_bit {
            None if data_was_clean => DecodeOutcome::Clean(data),
            None => unreachable!(),
            Some(bit) => DecodeOutcome::Corrected(data, bit),
        }
    }

    fn extract(code: u128) -> u64 {
        let mut data = 0u64;
        let mut d = 0u32;
        for pos in 1..=71u32 {
            if !Self::is_parity_position(pos) {
                if (code >> pos) & 1 == 1 {
                    data |= 1 << d;
                }
                d += 1;
            }
        }
        data
    }

    /// Probability that a 72-bit word suffers ≥2 bit errors at `ber` —
    /// the rate at which SECDED stops correcting (and may miscorrect).
    pub fn multi_error_probability(ber: f64) -> f64 {
        let n = Self::CODE_BITS as f64;
        let p0 = (1.0 - ber).powf(n);
        let p1 = n * ber * (1.0 - ber).powf(n - 1.0);
        (1.0 - p0 - p1).max(0.0)
    }

    /// Expected fraction of weight words left corrupted after ECC at
    /// `ber`, for comparison with SparkXD's BER_th (which tolerates the
    /// errors instead of correcting them).
    pub fn residual_word_error_rate(ber: f64) -> f64 {
        Self::multi_error_probability(ber)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            let code = SecDed::encode(data);
            assert_eq!(SecDed::decode(code), DecodeOutcome::Clean(data));
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0xA5A5_5A5A_0F0F_F0F0u64;
        let code = SecDed::encode(data);
        for bit in 0..72u32 {
            let corrupted = code ^ (1u128 << bit);
            match SecDed::decode(corrupted) {
                DecodeOutcome::Corrected(d, b) => {
                    assert_eq!(d, data, "data recovered after flip at {bit}");
                    assert_eq!(b, bit, "flip position identified");
                }
                other => panic!("flip at {bit} gave {other:?}"),
            }
        }
    }

    #[test]
    fn double_bit_errors_are_detected() {
        let data = 0x0123_4567_89AB_CDEFu64;
        let code = SecDed::encode(data);
        let mut detected = 0;
        let mut total = 0;
        for a in 1..72u32 {
            for b in (a + 1)..72u32 {
                let corrupted = code ^ (1u128 << a) ^ (1u128 << b);
                total += 1;
                if SecDed::decode(corrupted) == DecodeOutcome::DoubleError {
                    detected += 1;
                }
            }
        }
        // Pairs not involving bit 0 are always detected; pairs that include
        // the overall-parity bit alias to single-bit corrections.
        assert!(
            detected as f64 / total as f64 > 0.95,
            "detected {detected}/{total}"
        );
    }

    #[test]
    fn overhead_is_one_eighth() {
        assert!((SecDed::overhead_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn multi_error_probability_shape() {
        // Negligible at 1e-6, substantial at 1e-2.
        assert!(SecDed::multi_error_probability(1e-6) < 1e-8);
        assert!(SecDed::multi_error_probability(1e-2) > 1e-2);
        // Monotone.
        assert!(SecDed::multi_error_probability(1e-3) > SecDed::multi_error_probability(1e-4));
    }

    proptest! {
        #[test]
        fn roundtrip_random_words(data in any::<u64>()) {
            prop_assert_eq!(SecDed::decode(SecDed::encode(data)), DecodeOutcome::Clean(data));
        }

        #[test]
        fn single_flip_corrects_random(data in any::<u64>(), bit in 0u32..72) {
            let code = SecDed::encode(data) ^ (1u128 << bit);
            match SecDed::decode(code) {
                DecodeOutcome::Corrected(d, _) => prop_assert_eq!(d, data),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }
}
