//! The bit-error-rate versus supply-voltage curve (paper Fig. 2c).
//!
//! Experimental characterisations of real DIMMs (Chang et al. POMACS 2017,
//! Koppula et al. MICRO 2019) show the BER rising roughly exponentially as
//! the supply voltage drops below the reliable minimum. The paper's Fig. 2(c)
//! plots BER from ~1e-8 near 1.325 V up to ~1e-2 at 1.025 V; we model
//! `log10(BER)` as linear in voltage between those anchors and zero errors
//! at or above the nominal guardbanded voltage.

use sparkxd_circuit::Volt;

/// Log-linear BER(V) model anchored to the paper's figure.
///
/// # Example
///
/// ```
/// use sparkxd_error::BerCurve;
/// use sparkxd_circuit::Volt;
///
/// let curve = BerCurve::paper_default();
/// assert_eq!(curve.ber_at(Volt(1.35)), 0.0);           // error-free at nominal
/// assert!(curve.ber_at(Volt(1.025)) > curve.ber_at(Volt(1.175)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerCurve {
    /// Voltage at (and above) which the DRAM is error-free.
    pub v_error_free: Volt,
    /// Upper anchor: voltage with BER `ber_hi_anchor`.
    pub v_hi: Volt,
    /// BER at `v_hi`.
    pub ber_at_v_hi: f64,
    /// Lower anchor: voltage with BER `ber_lo_anchor`.
    pub v_lo: Volt,
    /// BER at `v_lo`.
    pub ber_at_v_lo: f64,
}

impl BerCurve {
    /// The paper's anchors (read from Fig. 2c and the Fig. 11 BER range):
    /// error-free ≥ 1.35 V, 1e-8 at 1.325 V, 1e-3 at 1.025 V.
    pub fn paper_default() -> Self {
        Self {
            v_error_free: Volt(1.35),
            v_hi: Volt(1.325),
            ber_at_v_hi: 1e-8,
            v_lo: Volt(1.025),
            ber_at_v_lo: 1e-3,
        }
    }

    /// Bit error rate at supply voltage `v`.
    ///
    /// Returns `0` at or above `v_error_free`; clamps to `0.5` for
    /// non-physically low voltages.
    pub fn ber_at(&self, v: Volt) -> f64 {
        if v.0 >= self.v_error_free.0 {
            return 0.0;
        }
        let slope =
            (self.ber_at_v_lo.log10() - self.ber_at_v_hi.log10()) / (self.v_lo.0 - self.v_hi.0);
        let log_ber = self.ber_at_v_hi.log10() + slope * (v.0 - self.v_hi.0);
        10f64.powf(log_ber).min(0.5)
    }

    /// Inverse query: the highest supply voltage whose BER does not exceed
    /// `ber`. Returns `v_error_free` for `ber == 0`.
    pub fn voltage_for_ber(&self, ber: f64) -> Volt {
        if ber <= 0.0 {
            return self.v_error_free;
        }
        let slope =
            (self.ber_at_v_lo.log10() - self.ber_at_v_hi.log10()) / (self.v_lo.0 - self.v_hi.0);
        let v = self.v_hi.0 + (ber.log10() - self.ber_at_v_hi.log10()) / slope;
        Volt(v.min(self.v_error_free.0))
    }

    /// BERs at the paper's five approximate operating points
    /// (1.325, 1.25, 1.175, 1.10, 1.025 V), in that order.
    pub fn paper_operating_bers(&self) -> Vec<(Volt, f64)> {
        [1.325, 1.25, 1.175, 1.1, 1.025]
            .iter()
            .map(|&v| (Volt(v), self.ber_at(Volt(v))))
            .collect()
    }
}

impl Default for BerCurve {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_respected() {
        let c = BerCurve::paper_default();
        assert!((c.ber_at(Volt(1.325)).log10() + 8.0).abs() < 0.01);
        assert!((c.ber_at(Volt(1.025)).log10() + 3.0).abs() < 0.01);
    }

    #[test]
    fn error_free_at_and_above_nominal() {
        let c = BerCurve::paper_default();
        assert_eq!(c.ber_at(Volt(1.35)), 0.0);
        assert_eq!(c.ber_at(Volt(1.40)), 0.0);
    }

    #[test]
    fn monotonically_increasing_as_voltage_drops() {
        let c = BerCurve::paper_default();
        let mut prev = 0.0;
        for v in [1.325, 1.25, 1.175, 1.1, 1.025] {
            let ber = c.ber_at(Volt(v));
            assert!(ber > prev, "BER must grow as V falls");
            prev = ber;
        }
    }

    #[test]
    fn clamped_at_half() {
        let c = BerCurve::paper_default();
        assert!(c.ber_at(Volt(0.1)) <= 0.5);
    }

    #[test]
    fn inverse_roundtrip() {
        let c = BerCurve::paper_default();
        for v in [1.3, 1.2, 1.1, 1.05] {
            let ber = c.ber_at(Volt(v));
            let back = c.voltage_for_ber(ber);
            assert!(
                (back.0 - v).abs() < 1e-9,
                "roundtrip {v} -> {ber} -> {}",
                back.0
            );
        }
        assert_eq!(c.voltage_for_ber(0.0), Volt(1.35));
    }

    #[test]
    fn operating_points_count() {
        let pts = BerCurve::paper_default().paper_operating_bers();
        assert_eq!(pts.len(), 5);
        assert!(pts.windows(2).all(|w| w[0].1 < w[1].1));
    }
}
