//! Bit-error injection into weight images.
//!
//! Injection operates on weight words of a configurable width: the raw
//! FP32 image (`&mut [f32]`, 32 bits/word) or a packed quantised image
//! (`&mut [u8]` payload at 8 or 16 bits/word — see `sparkxd-snn`'s
//! `QuantizedImage`). Each word has a *placement* describing where its
//! bits physically live in DRAM (which subarray, wordline and bitline
//! range); the active [`ErrorModel`] and per-subarray [`ErrorProfile`]
//! then determine each bit's flip probability. This is the paper's
//! Section IV-B Step-1/Step-2: generate errors from the model, inject
//! them into the DRAM locations holding the weights.
//!
//! Flips always XOR the stored code — for FP32 through
//! `to_bits`/`from_bits`, for packed images directly in the byte payload —
//! so the corrupted image remains a bit-exact DRAM view.

use crate::models::ErrorModel;
use crate::sampling::{hash_unit, BernoulliPositions};
use crate::weak_cells::ErrorProfile;
use crate::InjectError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkxd_dram::SubarrayId;

/// Salt mixed into the seed when deciding weak bitlines (Model 1).
const BITLINE_SALT: u64 = 0xB17_11E5;
/// Salt mixed into the seed when deciding weak wordlines (Model 2).
const WORDLINE_SALT: u64 = 0x0DD_11E5;

/// Physical placement of one weight word in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordPlacement {
    /// Flat subarray id (selects the per-subarray error rate).
    pub subarray: SubarrayId,
    /// Global wordline (row) index across the device.
    pub global_row: u64,
    /// Bit offset of the word's first bit within its row; bit `b` of the
    /// word (`b < word_bits`) sits on bitline `bit_offset_in_row + b`.
    pub bit_offset_in_row: u32,
}

/// Outcome of one injection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionReport {
    /// Bits actually flipped.
    pub flips: u64,
    /// Candidate positions drawn before model-specific acceptance.
    pub candidates: u64,
    /// Number of weight words in the image.
    pub words: usize,
    /// Bits per weight word (32 for FP32 images, 8/16 for packed images).
    pub word_bits: u32,
}

impl InjectionReport {
    /// Empirical bit-error rate of this pass over the image's true bit
    /// count (`words × word_bits` — not a hardcoded 32 bits/word).
    pub fn empirical_ber(&self) -> f64 {
        let bits = self.words as f64 * self.word_bits as f64;
        if bits == 0.0 {
            0.0
        } else {
            self.flips as f64 / bits
        }
    }
}

/// A mutable view of a weight image as `words()` words of `word_bits()`
/// bits each — the abstraction the injector flips through, so one
/// implementation serves FP32 and packed quantised images alike.
trait BitImage {
    fn words(&self) -> usize;
    fn word_bits(&self) -> u32;
    /// Stored value of bit `bit` of word `word` (Model 3 reads this).
    fn bit(&self, word: usize, bit: u32) -> bool;
    /// XORs bit `bit` of word `word`.
    fn flip(&mut self, word: usize, bit: u32);
}

/// FP32 image: one `f32` per word, flipped through `to_bits`/`from_bits`.
struct F32Image<'a>(&'a mut [f32]);

impl BitImage for F32Image<'_> {
    fn words(&self) -> usize {
        self.0.len()
    }

    fn word_bits(&self) -> u32 {
        32
    }

    fn bit(&self, word: usize, bit: u32) -> bool {
        self.0[word].to_bits() & (1 << bit) != 0
    }

    fn flip(&mut self, word: usize, bit: u32) {
        self.0[word] = f32::from_bits(self.0[word].to_bits() ^ (1 << bit));
    }
}

/// Packed little-endian image: `word_bits / 8` bytes per word, flipped
/// directly in the payload.
struct PackedImage<'a> {
    bytes: &'a mut [u8],
    word_bits: u32,
}

impl<'a> PackedImage<'a> {
    fn new(bytes: &'a mut [u8], word_bits: u32) -> Self {
        assert!(
            matches!(word_bits, 8 | 16 | 32),
            "packed word widths are 8, 16 or 32 bits"
        );
        assert_eq!(
            bytes.len() % (word_bits as usize / 8),
            0,
            "payload length must be a whole number of words"
        );
        Self { bytes, word_bits }
    }

    #[inline]
    fn locate(&self, word: usize, bit: u32) -> (usize, u8) {
        let global = word * self.word_bits as usize + bit as usize;
        (global / 8, 1u8 << (global % 8))
    }
}

impl BitImage for PackedImage<'_> {
    fn words(&self) -> usize {
        self.bytes.len() / (self.word_bits as usize / 8)
    }

    fn word_bits(&self) -> u32 {
        self.word_bits
    }

    fn bit(&self, word: usize, bit: u32) -> bool {
        let (byte, mask) = self.locate(word, bit);
        self.bytes[byte] & mask != 0
    }

    fn flip(&mut self, word: usize, bit: u32) {
        let (byte, mask) = self.locate(word, bit);
        self.bytes[byte] ^= mask;
    }
}

/// Deterministic bit-error injector.
///
/// Each call advances an internal round counter, so repeated injections
/// (e.g. one per training epoch) produce fresh, reproducible error
/// patterns for the same constructor seed.
///
/// # Example
///
/// ```
/// use sparkxd_error::{ErrorModel, Injector};
///
/// let mut weights = vec![1.0f32; 1024];
/// let mut injector = Injector::new(ErrorModel::Model0, 7);
/// let report = injector.inject_uniform(&mut weights, 1e-3);
/// assert_eq!(report.words, 1024);
/// assert!(weights.iter().any(|w| *w != 1.0) || report.flips == 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Injector {
    model: ErrorModel,
    seed: u64,
    round: u64,
}

impl Injector {
    /// Creates an injector for `model` with deterministic `seed`.
    pub fn new(model: ErrorModel, seed: u64) -> Self {
        Self {
            model,
            seed,
            round: 0,
        }
    }

    /// The active error model.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// Number of injection rounds performed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    fn next_rng(&mut self) -> StdRng {
        let r = self.round;
        self.round += 1;
        StdRng::seed_from_u64(self.seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform (Model-0 style) injection across the entire image at rate
    /// `ber`, ignoring placements. This is the fast path used inside the
    /// fault-aware training loop, where the baseline mapping stores weights
    /// contiguously in a bank and Model 0 is uniform over the bank.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not within `[0, 0.5]`.
    pub fn inject_uniform(&mut self, weights: &mut [f32], ber: f64) -> InjectionReport {
        self.inject_uniform_tracked(weights, ber, &mut Vec::new())
    }

    /// [`inject_uniform`](Self::inject_uniform) that additionally appends
    /// the index of every weight word whose bits actually flipped to
    /// `touched_words` (ascending, deduplicated). Consumers use the list
    /// to rebuild only the corrupted rows of a derived read-side plane
    /// instead of the whole image.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not within `[0, 0.5]`.
    pub fn inject_uniform_tracked(
        &mut self,
        weights: &mut [f32],
        ber: f64,
        touched_words: &mut Vec<usize>,
    ) -> InjectionReport {
        self.uniform_tracked_impl(&mut F32Image(weights), ber, touched_words)
    }

    /// Uniform injection into a packed quantised payload at `word_bits`
    /// bits per word (8 | 16 | 32), flipping bits directly in the bytes.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not within `[0, 0.5]`, if `word_bits` is not
    /// 8/16/32, or if `payload` is not a whole number of words.
    pub fn inject_uniform_packed(
        &mut self,
        payload: &mut [u8],
        word_bits: u32,
        ber: f64,
    ) -> InjectionReport {
        self.inject_uniform_packed_tracked(payload, word_bits, ber, &mut Vec::new())
    }

    /// [`inject_uniform_packed`](Self::inject_uniform_packed) that
    /// additionally appends flipped word indices to `touched_words`
    /// (ascending, deduplicated).
    ///
    /// # Panics
    ///
    /// Same as [`inject_uniform_packed`](Self::inject_uniform_packed).
    pub fn inject_uniform_packed_tracked(
        &mut self,
        payload: &mut [u8],
        word_bits: u32,
        ber: f64,
        touched_words: &mut Vec<usize>,
    ) -> InjectionReport {
        self.uniform_tracked_impl(
            &mut PackedImage::new(payload, word_bits),
            ber,
            touched_words,
        )
    }

    fn uniform_tracked_impl<I: BitImage>(
        &mut self,
        image: &mut I,
        ber: f64,
        touched_words: &mut Vec<usize>,
    ) -> InjectionReport {
        assert!((0.0..=0.5).contains(&ber), "ber must be in [0, 0.5]");
        let before = touched_words.len();
        let mut rng = self.next_rng();
        let word_bits = image.word_bits();
        let n_bits = image.words() as u64 * word_bits as u64;
        let mut flips = 0;
        let positions: Vec<u64> = BernoulliPositions::new(n_bits, ber, &mut rng).collect();
        for pos in &positions {
            let word = (pos / word_bits as u64) as usize;
            let bit = (pos % word_bits as u64) as u32;
            image.flip(word, bit);
            touched_words.push(word);
            flips += 1;
        }
        dedup_tail(touched_words, before);
        sparkxd_telemetry::counter_add!("error.injections", 1);
        sparkxd_telemetry::counter_add!("error.flipped_bits", flips);
        sparkxd_telemetry::counter_add!("error.flipped_words", touched_words.len() - before);
        InjectionReport {
            flips,
            candidates: flips,
            words: image.words(),
            word_bits,
        }
    }

    /// Placement-aware injection: each word's bits flip according to the
    /// per-subarray rate of `profile`, spatially shaped by the error model.
    ///
    /// # Errors
    ///
    /// [`InjectError::PlacementLengthMismatch`] if `placements` is shorter
    /// than `weights`; [`InjectError::InvalidBer`] if any profile rate is
    /// outside `[0, 0.5]`.
    pub fn inject_with_placements(
        &mut self,
        weights: &mut [f32],
        placements: &[WordPlacement],
        profile: &ErrorProfile,
    ) -> Result<InjectionReport, InjectError> {
        self.inject_with_placements_tracked(weights, placements, profile, &mut Vec::new())
    }

    /// [`inject_with_placements`](Self::inject_with_placements) that
    /// additionally appends the index of every weight word whose bits
    /// actually flipped to `touched_words` (ascending, deduplicated).
    ///
    /// # Errors
    ///
    /// Same as [`inject_with_placements`](Self::inject_with_placements).
    pub fn inject_with_placements_tracked(
        &mut self,
        weights: &mut [f32],
        placements: &[WordPlacement],
        profile: &ErrorProfile,
        touched_words: &mut Vec<usize>,
    ) -> Result<InjectionReport, InjectError> {
        self.placements_tracked_impl(&mut F32Image(weights), placements, profile, touched_words)
    }

    /// Placement-aware injection into a packed quantised payload at
    /// `word_bits` bits per word. Placements describe `word_bits`-wide
    /// words (their `bit_offset_in_row` steps by `word_bits`, as produced
    /// by a mapping built for the quantised precision).
    ///
    /// # Errors
    ///
    /// Same as [`inject_with_placements`](Self::inject_with_placements).
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is not 8/16/32 or `payload` is not a whole
    /// number of words.
    pub fn inject_packed_with_placements(
        &mut self,
        payload: &mut [u8],
        word_bits: u32,
        placements: &[WordPlacement],
        profile: &ErrorProfile,
    ) -> Result<InjectionReport, InjectError> {
        self.inject_packed_with_placements_tracked(
            payload,
            word_bits,
            placements,
            profile,
            &mut Vec::new(),
        )
    }

    /// [`inject_packed_with_placements`](Self::inject_packed_with_placements)
    /// that additionally appends flipped word indices to `touched_words`
    /// (ascending, deduplicated).
    ///
    /// # Errors
    ///
    /// Same as [`inject_with_placements`](Self::inject_with_placements).
    pub fn inject_packed_with_placements_tracked(
        &mut self,
        payload: &mut [u8],
        word_bits: u32,
        placements: &[WordPlacement],
        profile: &ErrorProfile,
        touched_words: &mut Vec<usize>,
    ) -> Result<InjectionReport, InjectError> {
        self.placements_tracked_impl(
            &mut PackedImage::new(payload, word_bits),
            placements,
            profile,
            touched_words,
        )
    }

    fn placements_tracked_impl<I: BitImage>(
        &mut self,
        image: &mut I,
        placements: &[WordPlacement],
        profile: &ErrorProfile,
        touched_words: &mut Vec<usize>,
    ) -> Result<InjectionReport, InjectError> {
        let words = image.words();
        if placements.len() < words {
            return Err(InjectError::PlacementLengthMismatch {
                words,
                placements: placements.len(),
            });
        }
        for &r in profile.rates() {
            if !(0.0..=0.5).contains(&r) {
                return Err(InjectError::InvalidBer(r));
            }
        }
        let before = touched_words.len();
        let mut rng = self.next_rng();
        let mut flips = 0u64;
        let mut candidates = 0u64;

        // Process runs of consecutive words sharing a subarray so the
        // geometric-gap sampler can cover many words at once.
        let mut start = 0usize;
        while start < words {
            let sa = placements[start].subarray;
            let mut end = start + 1;
            while end < words && placements[end].subarray == sa {
                end += 1;
            }
            let ber = profile.ber(sa);
            let (run_flips, run_candidates) =
                self.inject_run(image, start..end, placements, ber, &mut rng, touched_words);
            flips += run_flips;
            candidates += run_candidates;
            start = end;
        }
        // Runs are processed in ascending word order and positions within
        // a run are ascending, so duplicates are consecutive.
        dedup_tail(touched_words, before);
        sparkxd_telemetry::counter_add!("error.injections", 1);
        sparkxd_telemetry::counter_add!("error.flipped_bits", flips);
        sparkxd_telemetry::counter_add!("error.flipped_words", touched_words.len() - before);
        Ok(InjectionReport {
            flips,
            candidates,
            words,
            word_bits: image.word_bits(),
        })
    }

    /// Injects into one same-subarray run of words `run` (global indices);
    /// flipped words are appended to `touched_words`. Returns
    /// `(flips, candidates)`.
    fn inject_run<I: BitImage>(
        &self,
        image: &mut I,
        run: std::ops::Range<usize>,
        placements: &[WordPlacement],
        ber: f64,
        rng: &mut StdRng,
        touched_words: &mut Vec<usize>,
    ) -> (u64, u64) {
        if ber <= 0.0 || run.is_empty() {
            return (0, 0);
        }
        // Candidate rate and acceptance rule per model (thinning).
        let (candidate_rate, model) = match self.model {
            ErrorModel::Model0 => (ber, self.model),
            ErrorModel::Model1 { weak_fraction } | ErrorModel::Model2 { weak_fraction } => {
                ((ber / weak_fraction).min(0.5), self.model)
            }
            ErrorModel::Model3 { one_bias } => {
                let p_max = (2.0 * ber * one_bias.max(1.0 - one_bias)).min(0.5);
                (p_max, self.model)
            }
        };
        let word_bits = image.word_bits();
        let n_bits = run.len() as u64 * word_bits as u64;
        let mut flips = 0;
        let mut candidates = 0;
        let positions: Vec<u64> = BernoulliPositions::new(n_bits, candidate_rate, rng).collect();
        for pos in positions {
            candidates += 1;
            let word = run.start + (pos / word_bits as u64) as usize;
            let bit = (pos % word_bits as u64) as u32;
            let placement = &placements[word];
            let accept = match model {
                ErrorModel::Model0 => true,
                ErrorModel::Model1 { weak_fraction } => {
                    let bitline = placement.bit_offset_in_row as u64 + bit as u64;
                    is_weak_line(self.seed ^ BITLINE_SALT, bitline, weak_fraction)
                }
                ErrorModel::Model2 { weak_fraction } => is_weak_line(
                    self.seed ^ WORDLINE_SALT,
                    placement.global_row,
                    weak_fraction,
                ),
                ErrorModel::Model3 { one_bias } => {
                    let stored_one = image.bit(word, bit);
                    let p_bit = if stored_one {
                        2.0 * ber * one_bias
                    } else {
                        2.0 * ber * (1.0 - one_bias)
                    };
                    let p_max = 2.0 * ber * one_bias.max(1.0 - one_bias);
                    rng.gen::<f64>() < p_bit / p_max
                }
            };
            if accept {
                image.flip(word, bit);
                touched_words.push(word);
                flips += 1;
            }
        }
        (flips, candidates)
    }
}

/// Removes consecutive duplicates from `words[start..]` in place. The
/// injectors emit flipped words in ascending order, so this leaves the
/// appended tail sorted and unique.
fn dedup_tail(words: &mut Vec<usize>, start: usize) {
    let mut write = start;
    for read in start..words.len() {
        if write == start || words[write - 1] != words[read] {
            words[write] = words[read];
            write += 1;
        }
    }
    words.truncate(write);
}

/// Whether structural line `index` (bitline or wordline) is weak under
/// `seed`, with `fraction` of lines weak. Deterministic; shared by the
/// injector and analysis code.
pub fn is_weak_line(seed: u64, index: u64, fraction: f64) -> bool {
    hash_unit(seed, index) < fraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flat_placements(n: usize, words_per_row: usize) -> Vec<WordPlacement> {
        placements_at_width(n, words_per_row, 32)
    }

    fn placements_at_width(n: usize, words_per_row: usize, word_bits: u32) -> Vec<WordPlacement> {
        (0..n)
            .map(|i| WordPlacement {
                subarray: SubarrayId(0),
                global_row: (i / words_per_row) as u64,
                bit_offset_in_row: ((i % words_per_row) as u32) * word_bits,
            })
            .collect()
    }

    #[test]
    fn uniform_injection_statistics() {
        let mut weights = vec![0.5f32; 100_000];
        let mut inj = Injector::new(ErrorModel::Model0, 1);
        let report = inj.inject_uniform(&mut weights, 1e-3);
        let expected = 3_200_000.0 * 1e-3;
        let sigma = (3_200_000.0f64 * 1e-3).sqrt();
        assert!(
            (report.flips as f64 - expected).abs() < 5.0 * sigma,
            "flips {} vs expected {expected}",
            report.flips
        );
        assert!((report.empirical_ber() / 1e-3 - 1.0).abs() < 0.1);
    }

    #[test]
    fn empirical_ber_uses_true_word_width() {
        // Regression: `empirical_ber` hardcoded `words * 32.0`, so a
        // packed int8 image under-reported its rate by 4×. The report now
        // carries the word width of the image it measured.
        for (word_bits, expected) in [(8u32, 1e-2), (16, 5e-3), (32, 2.5e-3)] {
            let report = InjectionReport {
                flips: 8,
                candidates: 8,
                words: 100,
                word_bits,
            };
            assert!(
                (report.empirical_ber() - expected).abs() < 1e-12,
                "{word_bits}-bit ber {}",
                report.empirical_ber()
            );
        }
        assert_eq!(InjectionReport::default().empirical_ber(), 0.0);
    }

    #[test]
    fn packed_uniform_injection_statistics_per_width() {
        for word_bits in [8u32, 16] {
            let bytes_per_word = word_bits as usize / 8;
            let n_words = 100_000;
            let mut payload = vec![0xA5u8; n_words * bytes_per_word];
            let mut inj = Injector::new(ErrorModel::Model0, 1);
            let report = inj.inject_uniform_packed(&mut payload, word_bits, 1e-3);
            assert_eq!(report.words, n_words);
            assert_eq!(report.word_bits, word_bits);
            let n_bits = (n_words as f64) * word_bits as f64;
            let expected = n_bits * 1e-3;
            let sigma = (n_bits * 1e-3).sqrt();
            assert!(
                (report.flips as f64 - expected).abs() < 5.0 * sigma,
                "{word_bits}-bit flips {} vs expected {expected}",
                report.flips
            );
            assert!((report.empirical_ber() / 1e-3 - 1.0).abs() < 0.2);
        }
    }

    #[test]
    fn packed_tracked_injection_reports_exactly_the_flipped_words() {
        let n_words = 20_000;
        let mut payload = vec![0x3Cu8; n_words * 2];
        let mut inj = Injector::new(ErrorModel::Model0, 11);
        let mut touched = Vec::new();
        let report = inj.inject_uniform_packed_tracked(&mut payload, 16, 1e-3, &mut touched);
        assert!(report.flips > 0);
        assert!(touched.windows(2).all(|p| p[0] < p[1]));
        let changed: Vec<usize> = (0..n_words)
            .filter(|&w| payload[2 * w..2 * w + 2] != [0x3C, 0x3C])
            .collect();
        assert_eq!(touched, changed);

        // Identical seed/round via the untracked API corrupts identically.
        let mut payload2 = vec![0x3Cu8; n_words * 2];
        Injector::new(ErrorModel::Model0, 11).inject_uniform_packed(&mut payload2, 16, 1e-3);
        assert_eq!(payload, payload2);
    }

    #[test]
    fn packed_placement_injection_respects_subarray_rates() {
        // Subarray 0 error-free, subarray 1 noisy — int8 words.
        let n = 20_000;
        let mut payload = vec![0xFFu8; n];
        let placements: Vec<WordPlacement> = (0..n)
            .map(|i| WordPlacement {
                subarray: SubarrayId(usize::from(i >= n / 2)),
                global_row: (i / 128) as u64,
                bit_offset_in_row: ((i % 128) * 8) as u32,
            })
            .collect();
        let profile = ErrorProfile::from_rates(1e-2, vec![0.0, 1e-2]);
        let mut inj = Injector::new(ErrorModel::Model0, 3);
        let report = inj
            .inject_packed_with_placements(&mut payload, 8, &placements, &profile)
            .unwrap();
        assert!(report.flips > 0);
        assert_eq!(report.word_bits, 8);
        assert!(
            payload[..n / 2].iter().all(|&b| b == 0xFF),
            "safe subarray must stay clean"
        );
        assert!(payload[n / 2..].iter().any(|&b| b != 0xFF));
    }

    #[test]
    fn packed_model1_only_flips_weak_bitlines() {
        let n = 50_000;
        let words_per_row = 256;
        let mut payload = vec![0u8; n];
        let placements = placements_at_width(n, words_per_row, 8);
        let profile = ErrorProfile::uniform(1e-3, 1);
        let model = ErrorModel::Model1 { weak_fraction: 0.1 };
        let report = Injector::new(model, 77)
            .inject_packed_with_placements(&mut payload, 8, &placements, &profile)
            .unwrap();
        assert!(report.flips > 0);
        for (word, &byte) in payload.iter().enumerate() {
            for bit in 0..8u32 {
                if byte & (1 << bit) != 0 {
                    let bitline = placements[word].bit_offset_in_row as u64 + bit as u64;
                    assert!(
                        is_weak_line(77 ^ BITLINE_SALT, bitline, 0.1),
                        "flip on strong bitline {bitline}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_rejects_ragged_payloads_and_odd_widths() {
        let mut inj = Injector::new(ErrorModel::Model0, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.inject_uniform_packed(&mut [0u8; 3], 16, 1e-3)
        }));
        assert!(result.is_err(), "3 bytes is not a whole number of u16s");
        let mut inj = Injector::new(ErrorModel::Model0, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.inject_uniform_packed(&mut [0u8; 4], 12, 1e-3)
        }));
        assert!(result.is_err(), "12-bit words are unsupported");
    }

    #[test]
    fn deterministic_per_seed_with_fresh_rounds() {
        let run = |seed| {
            let mut w = vec![1.0f32; 10_000];
            let mut inj = Injector::new(ErrorModel::Model0, seed);
            inj.inject_uniform(&mut w, 1e-3);
            w
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));

        // Two successive rounds of the same injector differ.
        let mut inj = Injector::new(ErrorModel::Model0, 5);
        let mut w1 = vec![1.0f32; 10_000];
        let mut w2 = vec![1.0f32; 10_000];
        inj.inject_uniform(&mut w1, 1e-3);
        inj.inject_uniform(&mut w2, 1e-3);
        assert_ne!(w1, w2);
        assert_eq!(inj.round(), 2);
    }

    #[test]
    fn tracked_injection_reports_exactly_the_flipped_words() {
        let n = 20_000;
        let mut w = vec![1.0f32; n];
        let mut inj = Injector::new(ErrorModel::Model0, 11);
        let mut touched = Vec::new();
        let report = inj.inject_uniform_tracked(&mut w, 1e-3, &mut touched);
        assert!(report.flips > 0);
        assert_eq!(report.word_bits, 32);
        // Sorted, unique, and in range.
        assert!(touched.windows(2).all(|p| p[0] < p[1]));
        // Exactly the words that differ from the clean image.
        let changed: Vec<usize> = (0..n)
            .filter(|&i| w[i].to_bits() != 1.0f32.to_bits())
            .collect();
        assert_eq!(touched, changed);

        // Identical seed/round via the untracked API corrupts identically.
        let mut w2 = vec![1.0f32; n];
        let mut inj2 = Injector::new(ErrorModel::Model0, 11);
        let report2 = inj2.inject_uniform(&mut w2, 1e-3);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&w), bits(&w2));
        assert_eq!(report.flips, report2.flips);
    }

    #[test]
    fn tracked_placement_injection_matches_untracked() {
        let n = 30_000;
        let placements = flat_placements(n, 64);
        let profile = ErrorProfile::uniform(1e-3, 1);
        let model = ErrorModel::Model1 { weak_fraction: 0.2 };
        let mut w_tracked = vec![0.5f32; n];
        let mut touched = Vec::new();
        Injector::new(model, 21)
            .inject_with_placements_tracked(&mut w_tracked, &placements, &profile, &mut touched)
            .unwrap();
        let mut w_plain = vec![0.5f32; n];
        Injector::new(model, 21)
            .inject_with_placements(&mut w_plain, &placements, &profile)
            .unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&w_tracked), bits(&w_plain));
        assert!(touched.windows(2).all(|p| p[0] < p[1]));
        let changed: Vec<usize> = (0..n)
            .filter(|&i| w_tracked[i].to_bits() != 0.5f32.to_bits())
            .collect();
        assert_eq!(touched, changed);
    }

    #[test]
    fn tracked_injection_appends_after_existing_entries() {
        let mut w = vec![1.0f32; 5_000];
        let mut inj = Injector::new(ErrorModel::Model0, 3);
        let mut touched = vec![999_999];
        inj.inject_uniform_tracked(&mut w, 1e-2, &mut touched);
        assert_eq!(touched[0], 999_999, "existing entries untouched");
        assert!(touched.len() > 1);
        assert!(touched[1..].windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn zero_ber_flips_nothing() {
        let mut w = vec![1.0f32; 1000];
        let before = w.clone();
        let mut inj = Injector::new(ErrorModel::Model0, 1);
        let report = inj.inject_uniform(&mut w, 0.0);
        assert_eq!(report.flips, 0);
        assert_eq!(w, before);
    }

    #[test]
    fn placement_mismatch_is_an_error() {
        let mut w = vec![1.0f32; 10];
        let placements = flat_placements(5, 4);
        let profile = ErrorProfile::uniform(1e-3, 1);
        let mut inj = Injector::new(ErrorModel::Model0, 1);
        let err = inj.inject_with_placements(&mut w, &placements, &profile);
        assert!(matches!(
            err,
            Err(InjectError::PlacementLengthMismatch { .. })
        ));
    }

    #[test]
    fn per_subarray_rates_are_respected() {
        // Subarray 0 error-free, subarray 1 very noisy.
        let n = 20_000;
        let mut w = vec![1.0f32; n];
        let placements: Vec<WordPlacement> = (0..n)
            .map(|i| WordPlacement {
                subarray: SubarrayId(usize::from(i >= n / 2)),
                global_row: (i / 32) as u64,
                bit_offset_in_row: ((i % 32) * 32) as u32,
            })
            .collect();
        let profile = ErrorProfile::from_rates(1e-2, vec![0.0, 1e-2]);
        let mut inj = Injector::new(ErrorModel::Model0, 3);
        let report = inj
            .inject_with_placements(&mut w, &placements, &profile)
            .unwrap();
        assert!(report.flips > 0);
        assert!(
            w[..n / 2].iter().all(|x| *x == 1.0),
            "safe subarray must stay clean"
        );
        assert!(w[n / 2..].iter().any(|x| *x != 1.0));
    }

    #[test]
    fn model1_only_flips_weak_bitlines() {
        let n = 50_000;
        let words_per_row = 64;
        let mut w = vec![1.0f32; n];
        let placements = flat_placements(n, words_per_row);
        let profile = ErrorProfile::uniform(1e-3, 1);
        let model = ErrorModel::Model1 { weak_fraction: 0.1 };
        let mut inj = Injector::new(model, 77);
        let report = inj
            .inject_with_placements(&mut w, &placements, &profile)
            .unwrap();
        assert!(report.flips > 0);
        // Every flipped bit must sit on a weak bitline.
        for (i, word) in w.iter().enumerate() {
            let flipped = word.to_bits() ^ 1.0f32.to_bits();
            for bit in 0..32 {
                if flipped & (1 << bit) != 0 {
                    let bitline = placements[i].bit_offset_in_row as u64 + bit as u64;
                    assert!(
                        is_weak_line(77 ^ BITLINE_SALT, bitline, 0.1),
                        "flip on strong bitline {bitline}"
                    );
                }
            }
        }
    }

    #[test]
    fn model2_only_flips_weak_wordlines() {
        let n = 50_000;
        let words_per_row = 64;
        let mut w = vec![1.0f32; n];
        let placements = flat_placements(n, words_per_row);
        let profile = ErrorProfile::uniform(1e-3, 1);
        let model = ErrorModel::Model2 { weak_fraction: 0.1 };
        let mut inj = Injector::new(model, 78);
        inj.inject_with_placements(&mut w, &placements, &profile)
            .unwrap();
        for (i, word) in w.iter().enumerate() {
            if word.to_bits() != 1.0f32.to_bits() {
                assert!(
                    is_weak_line(78 ^ WORDLINE_SALT, placements[i].global_row, 0.1),
                    "flip on strong wordline"
                );
            }
        }
    }

    #[test]
    fn model3_biases_towards_set_bits() {
        // Image of all-ones bit patterns: 0xFFFFFFFF words vs 0x00000000.
        let n = 40_000;
        let mut ones = vec![f32::from_bits(u32::MAX); n];
        let mut zeros = vec![f32::from_bits(0); n];
        let placements = flat_placements(n, 64);
        let profile = ErrorProfile::uniform(5e-3, 1);
        let model = ErrorModel::Model3 { one_bias: 0.9 };
        let r_ones = Injector::new(model, 9)
            .inject_with_placements(&mut ones, &placements, &profile)
            .unwrap();
        let r_zeros = Injector::new(model, 9)
            .inject_with_placements(&mut zeros, &placements, &profile)
            .unwrap();
        assert!(
            r_ones.flips > 3 * r_zeros.flips,
            "ones {} should flip far more than zeros {}",
            r_ones.flips,
            r_zeros.flips
        );
    }

    #[test]
    fn packed_model3_biases_towards_set_bits() {
        let n = 40_000;
        let mut ones = vec![0xFFu8; n];
        let mut zeros = vec![0x00u8; n];
        let placements = placements_at_width(n, 256, 8);
        let profile = ErrorProfile::uniform(5e-3, 1);
        let model = ErrorModel::Model3 { one_bias: 0.9 };
        let r_ones = Injector::new(model, 9)
            .inject_packed_with_placements(&mut ones, 8, &placements, &profile)
            .unwrap();
        let r_zeros = Injector::new(model, 9)
            .inject_packed_with_placements(&mut zeros, 8, &placements, &profile)
            .unwrap();
        assert!(
            r_ones.flips > 3 * r_zeros.flips,
            "ones {} should flip far more than zeros {}",
            r_ones.flips,
            r_zeros.flips
        );
    }

    #[test]
    fn model1_preserves_average_ber() {
        let n = 200_000;
        let mut w = vec![1.0f32; n];
        let placements = flat_placements(n, 64);
        let profile = ErrorProfile::uniform(1e-3, 1);
        let mut inj = Injector::new(
            ErrorModel::Model1 {
                weak_fraction: 0.25,
            },
            123,
        );
        let report = inj
            .inject_with_placements(&mut w, &placements, &profile)
            .unwrap();
        let ratio = report.empirical_ber() / 1e-3;
        // Weak-line selection is itself random; allow a generous band.
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn packed_32_bit_path_matches_f32_path_bit_for_bit() {
        // The same image expressed as `[f32]` and as little-endian bytes
        // must corrupt identically for the same seed: the packed view is
        // a generalisation, not a second implementation.
        let n = 10_000;
        let clean: Vec<f32> = (0..n).map(|i| (i as f32) * 0.001).collect();
        let mut as_f32 = clean.clone();
        Injector::new(ErrorModel::Model0, 42).inject_uniform(&mut as_f32, 1e-3);

        let mut as_bytes: Vec<u8> = clean.iter().flat_map(|v| v.to_le_bytes()).collect();
        let report =
            Injector::new(ErrorModel::Model0, 42).inject_uniform_packed(&mut as_bytes, 32, 1e-3);
        assert_eq!(report.word_bits, 32);
        let roundtrip: Vec<f32> = as_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&as_f32), bits(&roundtrip));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn uniform_injection_never_touches_out_of_range(
            seed in 0u64..1000, ber in 0.0f64..0.01
        ) {
            let mut w = vec![0.25f32; 512];
            let mut inj = Injector::new(ErrorModel::Model0, seed);
            let report = inj.inject_uniform(&mut w, ber);
            prop_assert!(report.flips <= 512 * 32);
            prop_assert_eq!(report.words, 512);
        }
    }
}
