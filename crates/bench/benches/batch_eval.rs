//! Serial vs parallel `BatchEvaluator` throughput at demo scale, so the
//! engine's speedup is tracked in the bench trajectory alongside the
//! per-component numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_snn::engine::BatchEvaluator;
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_eval");
    g.sample_size(10).measurement_time(Duration::from_secs(4));

    // Demo-scale evaluation workload: N100 x 100 samples x 50 timesteps.
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(100).with_timesteps(50));
    let train = SynthDigits.generate(40, 1);
    net.train_epoch(&train, 2);
    let data = SynthDigits.generate(100, 3);
    let params = net.into_params();
    let labeler = BatchEvaluator::with_threads(1).label_neurons(&params, &data, 4);

    g.bench_function("evaluate_serial_n100_s100", |b| {
        let eval = BatchEvaluator::with_threads(1);
        b.iter(|| eval.evaluate(&params, &data, &labeler, 5))
    });

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    g.bench_function(format!("evaluate_parallel{hw}_n100_s100"), |b| {
        let eval = BatchEvaluator::with_threads(hw);
        b.iter(|| eval.evaluate(&params, &data, &labeler, 5))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
