//! Execution-engine throughput: scalar vs batched read path, serial vs
//! parallel sharding, so the engine's speedups are tracked in the bench
//! trajectory alongside the per-component numbers.
//!
//! The `n400_*` group is the ROADMAP's hot-path acceptance check: the
//! batched path (`run_batch` streaming precomputed effective-weight rows
//! once per chunk) against the scalar path (`run_sample` re-applying the
//! synapse read rule to every stored weight on every access — exactly the
//! pre-split behaviour), both pinned to one worker thread. Throughput is
//! reported as samples/sec via the group's `Throughput::Elements`.
//!
//! The `n3600_*` group is the paper-scale tiling + kernel + occupancy
//! check: at N3600 the `[B × n_neurons]` drive slab outgrows L1, so the
//! batched sweep is compared untiled (one `usize::MAX`-wide tile — the
//! pre-tiling behaviour) against the default cache-sized neuron tiles,
//! and the tiled sweep is additionally run once per compute kernel
//! (portable scalar vs AVX2, when the host has it) plus once with the
//! intra-chunk tile fan-out across pool workers, so the SIMD and
//! occupancy wins are tracked in the same trajectory. The serial rows
//! pin `IntraChoice::Off` so they stay serial even when a multi-core
//! runner's `auto` would claim helpers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_snn::engine::{BatchEvaluator, DEFAULT_BATCH, DEFAULT_TILE};
use sparkxd_snn::kernels::avx2_supported;
use sparkxd_snn::{DiehlCookNetwork, IntraChoice, KernelChoice, SnnConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    // Demo-scale evaluation workload: N100 x 100 samples x 50 timesteps,
    // trained so the weight image has realistic sparsity.
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(100).with_timesteps(50));
    let train = SynthDigits.generate(40, 1);
    net.train_epoch(&train, 2);
    let data = SynthDigits.generate(100, 3);
    let params = net.into_params();
    let labeler = BatchEvaluator::with_threads(1).label_neurons(&params, &data, 4);

    let mut g = c.benchmark_group("batch_eval");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .throughput(Throughput::Elements(data.len() as u64));

    g.bench_function("evaluate_scalar_serial_n100_s100", |b| {
        let eval = BatchEvaluator::with_threads(1).with_batch(1);
        b.iter(|| eval.evaluate(&params, &data, &labeler, 5))
    });

    g.bench_function(
        format!("evaluate_batched{DEFAULT_BATCH}_serial_n100_s100"),
        |b| {
            let eval = BatchEvaluator::with_threads(1).with_batch(DEFAULT_BATCH);
            b.iter(|| eval.evaluate(&params, &data, &labeler, 5))
        },
    );

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    g.bench_function(
        format!("evaluate_batched{DEFAULT_BATCH}_parallel{hw}_n100_s100"),
        |b| {
            let eval = BatchEvaluator::with_threads(hw).with_batch(DEFAULT_BATCH);
            b.iter(|| eval.evaluate(&params, &data, &labeler, 5))
        },
    );
    g.finish();

    // Paper-scale read path: N400, single worker, scalar vs batched, on a
    // (briefly) trained model — the image the pipeline actually evaluates.
    let mut net_n400 = DiehlCookNetwork::new(SnnConfig::for_neurons(400).with_timesteps(50));
    net_n400.train_epoch(&SynthDigits.generate(48, 1), 2);
    let params_n400 = net_n400.into_params();
    let data_n400 = SynthDigits.generate(48, 7);
    let mut g = c.benchmark_group("batch_eval_n400");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Elements(data_n400.len() as u64));

    g.bench_function("spike_counts_scalar_serial_n400", |b| {
        let eval = BatchEvaluator::with_threads(1).with_batch(1);
        b.iter(|| eval.spike_counts(&params_n400, &data_n400, 9))
    });

    g.bench_function(
        format!("spike_counts_batched{DEFAULT_BATCH}_serial_n400"),
        |b| {
            let eval = BatchEvaluator::with_threads(1).with_batch(DEFAULT_BATCH);
            b.iter(|| eval.spike_counts(&params_n400, &data_n400, 9))
        },
    );
    g.finish();

    // Paper-scale drive tiling: N3600 batched, single worker, one giant
    // tile (the pre-tiling sweep) vs the default tile width.
    let mut net_n3600 = DiehlCookNetwork::new(SnnConfig::for_neurons(3600).with_timesteps(50));
    net_n3600.train_epoch(&SynthDigits.generate(24, 1), 2);
    let params_n3600 = net_n3600.into_params();
    let data_n3600 = SynthDigits.generate(16, 11);
    let mut g = c.benchmark_group("batch_eval_n3600");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(6))
        .throughput(Throughput::Elements(data_n3600.len() as u64));

    // The untiled/tiled pair stays pinned to the portable kernel so the
    // tiling win is measured on its own axis across hosts; the AVX2 row
    // (skipped off-x86_64/AVX2) isolates the SIMD win on top of tiling.
    g.bench_function(
        format!("spike_counts_untiled_batched{DEFAULT_BATCH}_serial_n3600"),
        |b| {
            let eval = BatchEvaluator::with_threads(1)
                .with_batch(DEFAULT_BATCH)
                .with_tile(usize::MAX)
                .with_kernel(KernelChoice::Scalar)
                .with_intra(IntraChoice::Off);
            b.iter(|| eval.spike_counts(&params_n3600, &data_n3600, 9))
        },
    );

    g.bench_function(
        format!("spike_counts_tiled{DEFAULT_TILE}_batched{DEFAULT_BATCH}_serial_n3600"),
        |b| {
            let eval = BatchEvaluator::with_threads(1)
                .with_batch(DEFAULT_BATCH)
                .with_tile(DEFAULT_TILE)
                .with_kernel(KernelChoice::Scalar)
                .with_intra(IntraChoice::Off);
            b.iter(|| eval.spike_counts(&params_n3600, &data_n3600, 9))
        },
    );

    if avx2_supported() {
        g.bench_function(
            format!("spike_counts_tiled{DEFAULT_TILE}_avx2_batched{DEFAULT_BATCH}_serial_n3600"),
            |b| {
                let eval = BatchEvaluator::with_threads(1)
                    .with_batch(DEFAULT_BATCH)
                    .with_tile(DEFAULT_TILE)
                    .with_kernel(KernelChoice::Avx2)
                    .with_intra(IntraChoice::Off);
                b.iter(|| eval.spike_counts(&params_n3600, &data_n3600, 9))
            },
        );
    }

    // Intra-chunk tile fan-out at min(4, host cores) pool workers,
    // pinned explicitly (an oversubscribed pin on a small host measures
    // the overhead floor, which is also worth tracking).
    let intra_workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    if intra_workers > 1 {
        g.bench_function(
            format!(
                "spike_counts_tiled{DEFAULT_TILE}_intra{intra_workers}_batched{DEFAULT_BATCH}_n3600"
            ),
            |b| {
                let eval = BatchEvaluator::with_threads(1)
                    .with_batch(DEFAULT_BATCH)
                    .with_tile(DEFAULT_TILE)
                    .with_kernel(KernelChoice::Scalar)
                    .with_intra(IntraChoice::Workers(intra_workers));
                b.iter(|| eval.spike_counts(&params_n3600, &data_n3600, 9))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
