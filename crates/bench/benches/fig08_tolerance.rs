//! Criterion bench for Fig. 8: one tolerance-curve measurement (micro net).
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_core::tolerance::analyze_tolerance;
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_error::ErrorModel;
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_tolerance");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let train = SynthDigits.generate(30, 1);
    let test = SynthDigits.generate(10, 2);
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(20));
    net.train_epoch(&train, 3);
    let labeler = net.label_neurons(&train, 4);
    g.bench_function("tolerance_curve_micro", |b| {
        b.iter(|| {
            analyze_tolerance(
                &mut net,
                &labeler,
                &test,
                &[1e-5, 1e-3],
                ErrorModel::Model0,
                1,
                7,
            )
            .points()
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
