//! Criterion bench for Fig. 2(d): one activate→precharge transient.
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_circuit::{BitlineModel, Volt};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02d_varray");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let model = BitlineModel::lpddr3();
    g.bench_function("transient_80ns", |b| {
        b.iter(|| model.activate_precharge_waveform(Volt(1.35)).last_value())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
