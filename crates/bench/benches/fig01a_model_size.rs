//! Criterion bench for Fig. 1(a): STDP training-epoch throughput, the
//! kernel whose cost scales with model size.
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01a_model_size");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let train = SynthDigits.generate(20, 1);
    for neurons in [30usize, 120] {
        g.bench_function(format!("train_epoch_n{neurons}"), |b| {
            b.iter_batched(
                || DiehlCookNetwork::new(SnnConfig::for_neurons(neurons).with_timesteps(30)),
                |mut net| net.train_epoch(&train, 2),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
