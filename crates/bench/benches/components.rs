//! Component throughput benches (ablation support): DRAM replay, SNN
//! stepping, error injection and the three mapping policies.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd_core::mapping::{
    BaselineMapping, MappingPolicy, SafeSequentialMapping, SparkXdMapping,
};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_dram::{AccessTrace, CompressedTrace, DramConfig, DramModel};
use sparkxd_error::{ErrorModel, ErrorProfile, Injector};
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    g.sample_size(10).measurement_time(Duration::from_secs(4));

    let config = DramConfig::lpddr3_1600_4gb();
    let trace = AccessTrace::sequential_reads(&config.geometry, 16_384);
    g.bench_function("dram_replay_16k", |b| {
        b.iter(|| DramModel::new(config.clone()).replay(&trace).stats.total())
    });

    // Per-access vs batch replay on the 64k sequential trace (the ISSUE 4
    // acceptance pair: compressed must be ≥ 5x the per-access line).
    let trace64 = AccessTrace::sequential_reads(&config.geometry, 65_536);
    let compressed64 = CompressedTrace::compress(&trace64);
    g.bench_function("dram_replay_64k", |b| {
        b.iter(|| {
            DramModel::new(config.clone())
                .replay(&trace64)
                .stats
                .total()
        })
    });
    g.bench_function("dram_replay_compressed_64k", |b| {
        b.iter(|| {
            DramModel::new(config.clone())
                .replay_compressed(&compressed64)
                .stats
                .total()
        })
    });

    let data = SynthDigits.generate(1, 1);
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(100).with_timesteps(50));
    g.bench_function("snn_sample_n100_t50", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            net.run_sample(data.get(0).0.pixels(), &mut rng, false)
                .unwrap()
        })
    });

    let mut weights = vec![0.5f32; 100_000];
    g.bench_function("inject_100k_words_ber1e-3", |b| {
        let mut inj = Injector::new(ErrorModel::Model0, 5);
        b.iter(|| inj.inject_uniform(&mut weights, 1e-3).flips)
    });

    let profile = ErrorProfile::uniform(1e-4, config.geometry.total_subarrays());
    g.bench_function("mapping_baseline_10k", |b| {
        b.iter(|| {
            BaselineMapping
                .map(10_000, &config.geometry, &profile, f64::MAX)
                .unwrap()
                .len()
        })
    });
    g.bench_function("mapping_sparkxd_10k", |b| {
        b.iter(|| {
            SparkXdMapping
                .map(10_000, &config.geometry, &profile, 1e-3)
                .unwrap()
                .len()
        })
    });
    g.bench_function("mapping_safe_sequential_10k", |b| {
        b.iter(|| {
            SafeSequentialMapping
                .map(10_000, &config.geometry, &profile, 1e-3)
                .unwrap()
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
