//! Criterion bench for Fig. 2(c): the BER(V) curve sweep.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparkxd_bench::experiments::fig02c;

fn bench(c: &mut Criterion) {
    c.bench_function("fig02c_ber_curve", |b| b.iter(|| black_box(fig02c::run())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
