//! Criterion bench for Fig. 12(a): energy evaluation of one N400
//! weight-streaming pass.
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_core::energy_eval::EnergyEvaluation;
use sparkxd_core::mapping::{BaselineMapping, MappingPolicy};
use sparkxd_dram::DramConfig;
use sparkxd_error::ErrorProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12a_energy");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let config = DramConfig::lpddr3_1600_4gb();
    let flat = ErrorProfile::uniform(0.0, config.geometry.total_subarrays());
    let mapping = BaselineMapping
        .map(78_400, &config.geometry, &flat, f64::MAX)
        .unwrap();
    g.bench_function("price_n400_inference", |b| {
        b.iter(|| EnergyEvaluation::evaluate(&config, &mapping).total_mj())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
