//! Criterion bench for Fig. 1(b): platform energy-breakdown evaluation.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparkxd_energy::{PlatformProfile, SnnWorkload};

fn bench(c: &mut Criterion) {
    let platforms = PlatformProfile::paper_platforms();
    let w = SnnWorkload::fully_connected(784, 900, 100, 0.05);
    c.bench_function("fig01b_breakdown", |b| {
        b.iter(|| {
            platforms
                .iter()
                .map(|p| p.breakdown(black_box(&w)).memory_fraction())
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
