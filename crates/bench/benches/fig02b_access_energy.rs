//! Criterion bench for Fig. 2(b): per-access energy computation.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparkxd_dram::DramConfig;
use sparkxd_energy::EnergyModel;

fn bench(c: &mut Criterion) {
    let nominal = DramConfig::lpddr3_1600_4gb();
    c.bench_function("fig02b_access_energy", |b| {
        b.iter(|| {
            EnergyModel::for_config(black_box(&nominal))
                .access_energy()
                .conflict_nj
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
