//! Criterion bench for Fig. 12(b): trace replay latency, sequential vs
//! bank-interleaved layouts (the multi-bank burst effect). Runs through
//! the batch replay path — identical latency numbers to per-access replay
//! (see `crates/dram/tests/replay_oracle.rs`), at a fraction of the
//! simulation cost.
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_dram::{CompressedTrace, DramConfig, DramModel};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12b_speedup");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let config = DramConfig::lpddr3_1600_4gb();
    let seq = CompressedTrace::sequential_reads(&config.geometry, 65_536);
    let inter = CompressedTrace::interleaved_reads(&config.geometry, 65_536);
    g.bench_function("replay_sequential_64k", |b| {
        b.iter(|| {
            DramModel::new(config.clone())
                .replay_compressed(&seq)
                .latency
                .total_ns
        })
    });
    g.bench_function("replay_interleaved_64k", |b| {
        b.iter(|| {
            DramModel::new(config.clone())
                .replay_compressed(&inter)
                .latency
                .total_ns
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
