//! Criterion bench for Table I: per-voltage access-energy savings
//! (includes the circuit-model timing derivations).
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_bench::experiments::table1;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_savings");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("all_voltages", |b| b.iter(|| table1::run().len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
