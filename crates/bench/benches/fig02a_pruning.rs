//! Criterion bench for Fig. 2(a): the pruning-sweep kernel — mapping plus
//! trace energy at one connectivity point (reduced size for bench speed).
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_core::energy_eval::EnergyEvaluation;
use sparkxd_core::mapping::{MappingPolicy, SparkXdMapping};
use sparkxd_dram::DramConfig;
use sparkxd_error::ErrorProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02a_pruning");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let config = DramConfig::lpddr3_1600_4gb();
    let profile = ErrorProfile::uniform(1e-4, config.geometry.total_subarrays());
    g.bench_function("map_and_price_n400_columns", |b| {
        b.iter(|| {
            let m = SparkXdMapping
                .map(78_400, &config.geometry, &profile, 1e-3)
                .unwrap();
            EnergyEvaluation::evaluate(&config, &m).total_mj()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
