//! Criterion bench for Fig. 11: corrupted-weights inference evaluation.
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_error::{ErrorModel, Injector};
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_accuracy");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let train = SynthDigits.generate(30, 1);
    let test = SynthDigits.generate(10, 2);
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(20));
    net.train_epoch(&train, 3);
    let labeler = net.label_neurons(&train, 4);
    let clean = net.weights().clone();
    g.bench_function("evaluate_under_errors", |b| {
        b.iter(|| {
            let mut corrupted = clean.clone();
            Injector::new(ErrorModel::Model0, 9).inject_uniform(corrupted.as_mut_slice(), 1e-3);
            net.set_weights(corrupted);
            net.evaluate(&test, &labeler, 11)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
