//! Criterion bench for Fig. 6: timing-parameter derivation per voltage.
use criterion::{criterion_group, criterion_main, Criterion};
use sparkxd_circuit::{BitlineModel, Volt};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_timing");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    let model = BitlineModel::lpddr3();
    g.bench_function("derive_timing_1v10", |b| {
        b.iter(|| model.derive_timing(Volt(1.10)).unwrap().t_rcd.0)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
