//! Regenerates every table and figure of the paper in one run, with the
//! experiments sharded across worker threads. Sections print
//! progressively in the paper's order as they (and their predecessors)
//! complete, so long paper-scale runs show progress.
//!
//! Usage: `cargo run -p sparkxd-bench --release --bin repro_all`
//! (set `SPARKXD_SCALE=paper` for the paper's full network sizes, and
//! `SPARKXD_THREADS=1` to force the old serial behaviour).

use sparkxd_bench::{paper_sections, run_sections_with, telemetry_summary, Scale};
use sparkxd_snn::engine::worker_count;

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    let jobs = paper_sections(&scale, 42);
    println!(
        "SparkXD reproduction — all experiments (scale: {}, {} sections on {} workers)",
        scale.label,
        jobs.len(),
        worker_count(jobs.len())
    );
    println!("==========================================================\n");

    run_sections_with(jobs, |section| {
        println!("## {}", section.title);
        println!("{}", section.body);
    });

    // Observation only (SPARKXD_TELEMETRY=counters|spans): where the run
    // spent its work — pool dispatches, tile sweeps, DRAM replays.
    if let Some(summary) = telemetry_summary() {
        println!("## Telemetry\n{summary}");
    }
    println!("total wall time: {:.1?}", t0.elapsed());
}
