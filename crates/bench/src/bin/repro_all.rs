//! Regenerates every table and figure of the paper in one run.
//!
//! Usage: `cargo run -p sparkxd-bench --release --bin repro_all`
//! (set `SPARKXD_SCALE=paper` for the paper's full network sizes).

use sparkxd_bench::experiments as ex;
use sparkxd_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    println!(
        "SparkXD reproduction — all experiments (scale: {})",
        scale.label
    );
    println!("==========================================================\n");

    println!("## Fig. 1(a) — accuracy of small vs large SNN models");
    println!("{}", ex::fig01a::print(&ex::fig01a::run(&scale, 42)));

    println!("## Fig. 1(b) — platform energy breakdowns");
    println!("{}", ex::fig01b::print(&ex::fig01b::run()));

    println!("## Fig. 2(a) — DRAM energy vs connectivity (pruning x approx DRAM, N4900)");
    println!("{}", ex::fig02a::print(&ex::fig02a::run(42)));

    println!("## Fig. 2(b) — access energy per row-buffer condition");
    let (hi, lo) = ex::fig02b::run();
    println!("{}", ex::fig02b::print(&hi, &lo));

    println!("## Fig. 2(c) — BER vs supply voltage");
    println!("{}", ex::fig02c::print(&ex::fig02c::run()));

    println!("## Fig. 2(d) — DRAM array voltage dynamics (1.35 V vs 1.025 V)");
    let (wave_hi, wave_lo) = ex::fig02d::run();
    println!("{}", ex::fig02d::print(&wave_hi, &wave_lo));

    println!("## Fig. 6 — voltage-scaled DRAM timing parameters");
    println!("{}", ex::fig06::print(&ex::fig06::run()));

    println!("## Fig. 8 — error-tolerance analysis (middle network size)");
    println!("{}", ex::fig08::print(&ex::fig08::run(&scale, 42)));

    println!("## Fig. 11 — accuracy across BERs, sizes and datasets");
    println!("{}", ex::fig11::print(&ex::fig11::run(&scale, 42)));

    println!("## Fig. 12(a) — DRAM energy per inference across voltages");
    let rows = ex::fig12::run(42);
    println!("{}", ex::fig12::print_energy(&rows));
    println!("### per-voltage savings vs accurate baseline");
    println!("{}", ex::fig12::print_savings(&rows));

    println!("## Fig. 12(b) — throughput speed-up vs baseline");
    println!("{}", ex::fig12::print_speedup(&rows));

    println!("## Table I — DRAM energy-per-access savings");
    println!("{}", ex::table1::print(&ex::table1::run()));

    println!("total wall time: {:.1?}", t0.elapsed());
}
