//! Fig. 2(c): bit error rate vs DRAM supply voltage.
use sparkxd_bench::experiments::fig02c;

fn main() {
    println!("Fig. 2(c) — BER vs supply voltage");
    println!("{}", fig02c::print(&fig02c::run()));
}
