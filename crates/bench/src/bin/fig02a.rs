//! Fig. 2(a): DRAM energy vs network connectivity, accurate vs approximate.
use sparkxd_bench::experiments::fig02a;

fn main() {
    println!(
        "Fig. 2(a) — pruning x approximate DRAM (N{})",
        fig02a::NEURONS
    );
    println!("{}", fig02a::print(&fig02a::run(42)));
}
