//! Fig. 8: error-tolerance analysis and BER_th extraction.
use sparkxd_bench::{experiments::fig08, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 8 — error-tolerance analysis (scale: {})", scale.label);
    println!("{}", fig08::print(&fig08::run(&scale, 42)));
}
