//! Fig. 12: DRAM energy per inference (a) and speed-up (b) across voltages.
use sparkxd_bench::experiments::fig12;

fn main() {
    println!("Fig. 12 — energy and throughput at paper network sizes");
    let rows = fig12::run(42);
    println!("{}", fig12::print_energy(&rows));
    println!("{}", fig12::print_savings(&rows));
    println!("{}", fig12::print_speedup(&rows));
}
