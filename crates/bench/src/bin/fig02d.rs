//! Fig. 2(d): DRAM array voltage dynamics at 1.35 V vs 1.025 V.
use sparkxd_bench::experiments::fig02d;

fn main() {
    println!("Fig. 2(d) — array voltage dynamics");
    let (hi, lo) = fig02d::run();
    println!("{}", fig02d::print(&hi, &lo));
}
