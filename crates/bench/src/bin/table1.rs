//! Table I: DRAM energy-per-access savings per reduced voltage.
use sparkxd_bench::experiments::table1;

fn main() {
    println!("Table I — energy-per-access savings vs 1.35 V");
    println!("{}", table1::print(&table1::run()));
}
