//! Fig. 2(b): DRAM access energy per row-buffer condition.
use sparkxd_bench::experiments::fig02b;

fn main() {
    println!("Fig. 2(b) — access energy per condition");
    let (hi, lo) = fig02b::run();
    println!("{}", fig02b::print(&hi, &lo));
}
