//! Nightly scale guard: one paper-scale (N400) pipeline end to end, an
//! engine-throughput measurement (scalar vs batched read path), and a
//! drive-kernel scale sweep up to the paper's largest network (N3600,
//! scalar vs untiled vs serial-tiled vs tiled+AVX2 vs
//! intra-parallel-tiled).
//!
//! The per-PR suite runs demo-sized networks; scale-dependent regressions
//! (mapping capacity at real column counts, accuracy collapse at N400,
//! runtime blow-ups, the drive slab falling out of cache at N3600) only
//! show at paper scale. The scheduled nightly workflow runs this binary;
//! it exits non-zero when a sanity bound is violated. Throughput numbers
//! are printed to stdout and, when `GITHUB_STEP_SUMMARY` is set (as in
//! GitHub Actions), appended to the job summary as a markdown table so
//! the nightly trajectory is visible without digging through logs. The
//! kernel sweep is additionally written to `BENCH_8.json`
//! (machine-readable samples/sec per configuration, at N400/N1600/N3600)
//! for the trajectory tooling, and the storage-precision sweep (fp32 vs
//! int16 vs int8 N400 weight images: columns, trace ops, pass energy) to
//! `BENCH_9.json`.
//!
//! Usage: `cargo run -p sparkxd-bench --release --bin nightly_n400`
//! (`SPARKXD_NIGHTLY_SEED` overrides the default device seed of 42).

use sparkxd_bench::{
    append_job_summary, bench_json, precision_json, telemetry_overhead_json, telemetry_summary,
    write_bench_json, BenchRow, PrecisionRow,
};
use sparkxd_core::energy_eval::EnergyEvaluation;
use sparkxd_core::mapping::{BaselineMapping, MappingPolicy};
use sparkxd_core::pipeline::{DatasetKind, PipelineConfig, SparkXdPipeline};
use sparkxd_core::trace_gen::columns_for_words;
use sparkxd_data::{SynthDigits, SyntheticSource};
use sparkxd_dram::{DramConfig, DramModel};
use sparkxd_error::ErrorProfile;
use sparkxd_snn::engine::{busy_peak, BatchEvaluator, DEFAULT_BATCH};
use sparkxd_snn::kernels::avx2_supported;
use sparkxd_snn::WeightPrecision;
use sparkxd_snn::{DiehlCookNetwork, IntraChoice, KernelChoice, SnnConfig, WorkerPool};
use sparkxd_telemetry as telemetry;

/// Samples/sec of one engine configuration on `samples` N400 inferences
/// (best of `reps` passes, first pass warms the cache).
fn samples_per_sec(
    eval: &BatchEvaluator,
    params: &sparkxd_snn::NetworkParams,
    data: &sparkxd_data::Dataset,
    reps: usize,
) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = std::time::Instant::now();
        let counts = eval.spike_counts(params, data, 0x7A);
        std::hint::black_box(counts);
        best = best.min(t.elapsed().as_secs_f64());
    }
    data.len() as f64 / best
}

/// Measures scalar vs batched (and machine-parallel batched) inference
/// throughput on a briefly trained N400 model; returns
/// `(scalar, batched, parallel)` in samples/sec.
fn measure_throughput() -> (f64, f64, f64) {
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(400).with_timesteps(50));
    net.train_epoch(&SynthDigits.generate(48, 1), 2);
    let params = net.into_params();
    let data = SynthDigits.generate(64, 7);
    let scalar = samples_per_sec(
        &BatchEvaluator::with_threads(1).with_batch(1),
        &params,
        &data,
        3,
    );
    let batched = samples_per_sec(
        &BatchEvaluator::with_threads(1).with_batch(DEFAULT_BATCH),
        &params,
        &data,
        3,
    );
    let parallel = samples_per_sec(
        &BatchEvaluator::from_env().with_batch(DEFAULT_BATCH),
        &params,
        &data,
        3,
    );
    (scalar, batched, parallel)
}

/// Measures the scalar serial reference (`run_sample`, B = 1), the
/// untiled batched sweep (one `usize::MAX` tile — the pre-tiling
/// behaviour), the serial tiled batched sweep, — on AVX2 hosts — the
/// tiled sweep on the AVX2 kernel, and — with `intra_workers > 1` — the
/// intra-parallel tiled sweep (the per-timestep tile fan-out across
/// `intra_workers` pool workers), on a briefly trained network of
/// `n_neurons`. The serial rows pin `KernelChoice::Scalar` *and*
/// `IntraChoice::Off` so they stay comparable across hosts and nights
/// regardless of what `auto` resolves to on a multi-core runner. The
/// configurations are **interleaved** round-robin (best-of per config)
/// rather than measured back to back: on a shared machine, throughput
/// drifts by tens of percent over seconds, and sequential measurement
/// folds that drift into whichever config ran last. Sample counts shrink
/// as the network grows so the sweep stays in nightly budget.
fn measure_kernels(n_neurons: usize, samples: usize, intra_workers: usize) -> BenchRow {
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(n_neurons).with_timesteps(50));
    net.train_epoch(&SynthDigits.generate(24, 1), 2);
    let params = net.into_params();
    let data = SynthDigits.generate(samples, 7);
    let mut evals = vec![
        BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar)
            .with_intra(IntraChoice::Off),
        BatchEvaluator::with_threads(1)
            .with_batch(DEFAULT_BATCH)
            .with_tile(usize::MAX)
            .with_kernel(KernelChoice::Scalar)
            .with_intra(IntraChoice::Off),
        BatchEvaluator::with_threads(1)
            .with_batch(DEFAULT_BATCH)
            .with_kernel(KernelChoice::Scalar)
            .with_intra(IntraChoice::Off),
    ];
    let avx2_slot = if avx2_supported() {
        evals.push(
            BatchEvaluator::with_threads(1)
                .with_batch(DEFAULT_BATCH)
                .with_kernel(KernelChoice::Avx2)
                .with_intra(IntraChoice::Off),
        );
        Some(evals.len() - 1)
    } else {
        None
    };
    let intra_slot = if intra_workers > 1 {
        evals.push(
            BatchEvaluator::with_threads(1)
                .with_batch(DEFAULT_BATCH)
                .with_kernel(KernelChoice::Scalar)
                .with_intra(IntraChoice::Workers(intra_workers)),
        );
        Some(evals.len() - 1)
    } else {
        None
    };
    let mut best = vec![f64::MAX; evals.len()];
    for _ in 0..4 {
        for (slot, eval) in best.iter_mut().zip(&evals) {
            let t = std::time::Instant::now();
            std::hint::black_box(eval.spike_counts(&params, &data, 0x7A));
            *slot = slot.min(t.elapsed().as_secs_f64());
        }
    }
    BenchRow {
        n_neurons,
        scalar: data.len() as f64 / best[0],
        untiled: data.len() as f64 / best[1],
        tiled: data.len() as f64 / best[2],
        tiled_avx2: avx2_slot.map(|i| data.len() as f64 / best[i]),
        tiled_intra: intra_slot.map(|i| data.len() as f64 / best[i]),
    }
}

/// Measures DRAM trace replay throughput (accesses/sec, best of `reps`)
/// on the N400 weight-image trace: per-access reference path vs the
/// compressed batch path. Returns `(per_access, compressed)`.
fn measure_replay_throughput(reps: usize) -> (f64, f64) {
    let config = DramConfig::lpddr3_1600_4gb();
    let flat = ErrorProfile::uniform(0.0, config.geometry.total_subarrays());
    let n_columns = columns_for_words(784 * 400, config.geometry.col_bytes, WeightPrecision::Fp32);
    let mapping = BaselineMapping
        .map(n_columns, &config.geometry, &flat, f64::MAX)
        .expect("device holds the N400 image");
    let compressed = mapping.read_trace();
    let expanded = compressed.expand();
    let accesses = expanded.len() as f64;

    let mut best_per_access = f64::MAX;
    let mut best_compressed = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = std::time::Instant::now();
        std::hint::black_box(DramModel::new(config.clone()).replay(&expanded).stats);
        best_per_access = best_per_access.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        std::hint::black_box(
            DramModel::new(config.clone())
                .replay_compressed(&compressed)
                .stats,
        );
        best_compressed = best_compressed.min(t.elapsed().as_secs_f64());
    }
    (accesses / best_per_access, accesses / best_compressed)
}

/// One N400 weight-image pass per storage format on the accurate-DRAM
/// baseline mapping: columns, compressed-trace ops and replay-priced
/// energy/latency. Deterministic (no timing) — this sweep measures
/// *traffic*, the kernel sweeps above measure speed.
fn measure_precision_sweep() -> Vec<PrecisionRow> {
    let config = DramConfig::lpddr3_1600_4gb();
    let flat = ErrorProfile::uniform(0.0, config.geometry.total_subarrays());
    [
        WeightPrecision::Fp32,
        WeightPrecision::Int16,
        WeightPrecision::Int8,
    ]
    .into_iter()
    .map(|precision| {
        let n_columns = columns_for_words(784 * 400, config.geometry.col_bytes, precision);
        let mapping = BaselineMapping
            .map(n_columns, &config.geometry, &flat, f64::MAX)
            .expect("device holds the packed N400 image")
            .with_precision(precision);
        let energy = EnergyEvaluation::evaluate(&config, &mapping);
        PrecisionRow {
            precision: precision.label(),
            word_bits: precision.word_bits(),
            image_bytes: 784 * 400 * precision.bytes_per_word(),
            columns: n_columns,
            trace_ops: mapping.read_trace().num_ops(),
            pass_mj: energy.total_mj(),
            pass_ns: energy.runtime_ns(),
        }
    })
    .collect()
}

/// Measures the cost of the telemetry instrumentation on the serial
/// tiled N3600 sweep: spans mode (every counter, gauge, histogram and
/// span live) against off mode (one relaxed atomic load per site).
/// Modes are interleaved per pass, best-of-`reps` each, like the kernel
/// sweep — sequential measurement would fold machine drift into one
/// side. Returns `(off, spans)` samples/sec.
fn measure_telemetry_overhead(samples: usize, reps: usize) -> (f64, f64) {
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(3600).with_timesteps(50));
    net.train_epoch(&SynthDigits.generate(24, 1), 2);
    let params = net.into_params();
    let data = SynthDigits.generate(samples, 7);
    let eval = BatchEvaluator::with_threads(1)
        .with_batch(DEFAULT_BATCH)
        .with_kernel(KernelChoice::Scalar)
        .with_intra(IntraChoice::Off);
    let mut best = [f64::MAX; 2];
    for _ in 0..reps.max(1) {
        for (slot, mode) in [telemetry::Mode::Off, telemetry::Mode::Spans]
            .into_iter()
            .enumerate()
        {
            telemetry::set_mode(mode);
            let t = std::time::Instant::now();
            std::hint::black_box(eval.spike_counts(&params, &data, 0x7A));
            best[slot] = best[slot].min(t.elapsed().as_secs_f64());
            // Drain the span-event buffer between passes so repeated
            // spans-mode passes never hit the bounded-buffer overflow.
            telemetry::reset();
        }
    }
    telemetry::set_mode(telemetry::Mode::Off);
    (data.len() as f64 / best[0], data.len() as f64 / best[1])
}

fn main() {
    let seed = std::env::var("SPARKXD_NIGHTLY_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(42);
    let config = PipelineConfig::paper_network(400, DatasetKind::Digits, seed);
    println!(
        "nightly N400 pipeline: {} train / {} test samples, {} timesteps, device seed {seed}",
        config.train_samples, config.test_samples, config.timesteps
    );
    // Spans on for the pipeline leg: the nightly uploads a Chrome trace
    // of the full N400 run (all seven stage spans plus the pool and DRAM
    // replay spans beneath them). Observation only — and switched off
    // again below before anything the perf gates time.
    telemetry::set_mode(telemetry::Mode::Spans);
    let t0 = std::time::Instant::now();
    let outcome = SparkXdPipeline::new(config)
        .run()
        .expect("N400 pipeline must complete");
    println!(
        "baseline accuracy        : {:.2}%",
        outcome.baseline_accuracy * 100.0
    );
    println!(
        "improved clean accuracy  : {:.2}%",
        outcome.improved_clean_accuracy * 100.0
    );
    println!(
        "accuracy @ operating pt  : {:.2}%",
        outcome.accuracy_at_operating_point * 100.0
    );
    println!(
        "max tolerable BER        : {:.1e} (target met: {})",
        outcome.max_tolerable_ber, outcome.target_met
    );
    println!(
        "operating point          : {:.3} V @ BER {:.1e}",
        outcome.operating_voltage.0, outcome.operating_ber
    );
    let saving = outcome.energy.saving_fraction_vs_baseline();
    println!("DRAM energy saving       : {:.1}%", saving * 100.0);
    println!(
        "throughput speed-up      : {:.3}x",
        outcome.energy.speedup()
    );
    let pipeline_wall = t0.elapsed();
    println!("wall time                : {pipeline_wall:.1?}");

    // Dump the pipeline leg's spans: a chrome://tracing-loadable file
    // (uploaded as a nightly artifact) plus the summary table.
    const TRACE_PATH: &str = "NIGHTLY_N400_trace.json";
    match telemetry::write_chrome_trace(std::path::Path::new(TRACE_PATH)) {
        Ok(n) => println!("wrote {TRACE_PATH} ({n} span events)"),
        Err(e) => eprintln!("warning: could not write {TRACE_PATH}: {e}"),
    }
    if let Some(summary) = telemetry_summary() {
        println!("telemetry (pipeline leg):\n{summary}");
        append_job_summary(&format!(
            "### Telemetry (N400 pipeline, spans mode)\n\n```\n{summary}```\n\
             Chrome trace: `NIGHTLY_N400_trace.json` artifact.\n"
        ));
    }
    // Telemetry off (and drained) for everything the perf gates time, so
    // the throughput numbers stay comparable night to night and with the
    // pre-telemetry history.
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();

    // Sanity bounds that demo scale cannot check.
    assert!(
        outcome.mapping.columns == 784 * 400 / 4,
        "N400 weight image must need {} columns, mapped {}",
        784 * 400 / 4,
        outcome.mapping.columns
    );
    assert_eq!(outcome.mapping.policy, "sparkxd");
    assert!(
        outcome.baseline_accuracy > 0.2,
        "N400 baseline accuracy collapsed: {}",
        outcome.baseline_accuracy
    );
    assert!(
        (0.05..0.60).contains(&saving),
        "energy saving {saving} left the plausible band"
    );
    assert!(
        outcome.energy.speedup() > 0.9,
        "throughput regressed: {}",
        outcome.energy.speedup()
    );

    // Engine throughput: scalar (pre-split read path, B = 1) vs batched
    // (effective-plane streaming, B = DEFAULT_BATCH), single worker, plus
    // the machine-parallel batched figure.
    let (scalar, batched, parallel) = measure_throughput();
    let ratio = batched / scalar.max(f64::MIN_POSITIVE);
    println!("inference throughput (N400, samples/sec):");
    println!("  scalar   (1 thread, B=1)          : {scalar:8.1}");
    println!(
        "  batched  (1 thread, B={DEFAULT_BATCH})          : {batched:8.1}  ({ratio:.2}x scalar)"
    );
    println!("  batched  (machine threads, B={DEFAULT_BATCH})   : {parallel:8.1}");

    // Drive-kernel scale sweep: scalar vs untiled vs serial tiled vs
    // tiled+AVX2 vs intra-parallel tiled from the pipeline's N400 up to
    // the paper's largest network. At N3600 the [B × n] drive slab is far
    // out of L1; the tiled sweep keeps each [B × tile] strip L1-resident,
    // the AVX2 kernel rides the same tiles with 8-lane bodies, and the
    // intra sweep fans the tiles of each timestep out across pool workers
    // (all bit-identical to the portable serial path by construction).
    // The intra row runs at min(4, host cores) workers — pinned
    // explicitly, so a serial-host row measures the *overhead* floor
    // rather than silently falling back — and is skipped (null) only on
    // single-core hosts where a 1-worker pin IS the serial sweep.
    use sparkxd_snn::engine::DEFAULT_TILE;
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let intra_workers = host_cores.min(4);
    let sweep: Vec<BenchRow> = [(400usize, 64usize), (1600, 32), (3600, 16)]
        .into_iter()
        .map(|(n, samples)| measure_kernels(n, samples, intra_workers))
        .collect();
    println!(
        "drive kernels (1 thread, B={DEFAULT_BATCH}, tile {DEFAULT_TILE}, \
         intra {intra_workers} workers, samples/sec):"
    );
    for row in &sweep {
        let avx2 = match row.tiled_avx2 {
            Some(v) => format!("{v:8.1}"),
            None => "     n/a".into(),
        };
        let avx2_ratio = match row.speedup_avx2() {
            Some(r) => format!(", avx2 {r:.2}x tiled"),
            None => String::new(),
        };
        let intra = match row.tiled_intra {
            Some(v) => format!("{v:8.1}"),
            None => "     n/a".into(),
        };
        let intra_ratio = match row.speedup_intra() {
            Some(r) => format!(", intra {r:.2}x tiled"),
            None => String::new(),
        };
        println!(
            "  N{:<5} scalar {:8.1}  untiled {:8.1}  tiled {:8.1}  tiled+avx2 {avx2}  \
             tiled+intra {intra}  ({:.2}x untiled, {:.2}x scalar{avx2_ratio}{intra_ratio})",
            row.n_neurons,
            row.scalar,
            row.untiled,
            row.tiled,
            row.speedup(),
            row.speedup_vs_scalar()
        );
    }
    let json = bench_json(
        8,
        "drive_kernels",
        DEFAULT_TILE,
        DEFAULT_BATCH,
        intra_workers,
        &sweep,
    );
    if write_bench_json("BENCH_8.json", &json) {
        println!("wrote BENCH_8.json");
    } else {
        eprintln!("warning: could not write BENCH_8.json");
    }

    // DRAM replay throughput: per-access reference vs compressed batch
    // path on the 78,400-column N400 weight-image trace.
    let (replay_per_access, replay_compressed) = measure_replay_throughput(3);
    let replay_ratio = replay_compressed / replay_per_access.max(f64::MIN_POSITIVE);
    println!("DRAM replay throughput (N400 trace, accesses/sec):");
    println!("  per-access                        : {replay_per_access:12.0}");
    println!(
        "  compressed                        : {replay_compressed:12.0}  ({replay_ratio:.1}x per-access)"
    );

    // Storage-precision sweep: the packed int8/int16 N400 images against
    // the FP32 image, on the accurate-DRAM baseline mapping.
    let precisions = measure_precision_sweep();
    println!("storage precision sweep (N400 image pass, accurate DRAM):");
    for row in &precisions {
        println!(
            "  {:<6} {:>9} bytes  {:>6} columns  {:>5} trace ops  {:.4} mJ  {:.0} ns",
            row.precision, row.image_bytes, row.columns, row.trace_ops, row.pass_mj, row.pass_ns
        );
    }
    let pjson = precision_json(9, "precision_sweep", 400, &precisions);
    if write_bench_json("BENCH_9.json", &pjson) {
        println!("wrote BENCH_9.json");
    } else {
        eprintln!("warning: could not write BENCH_9.json");
    }

    // Telemetry overhead: the observation-only contract says spans-mode
    // instrumentation sits only at coarse seams (per run_batch call, per
    // replay — never per timestep), so the serial tiled N3600 sweep must
    // keep essentially all of its telemetry-off throughput.
    let (telem_off, telem_spans) = measure_telemetry_overhead(16, 4);
    let telem_ratio = telem_spans / telem_off.max(f64::MIN_POSITIVE);
    println!("telemetry overhead (N3600 serial tiled, samples/sec):");
    println!("  telemetry off                     : {telem_off:8.1}");
    println!("  telemetry spans                   : {telem_spans:8.1}  ({telem_ratio:.3}x off)");
    let tjson = telemetry_overhead_json(3600, 16, telem_off, telem_spans);
    if write_bench_json("BENCH_10.json", &tjson) {
        println!("wrote BENCH_10.json");
    } else {
        eprintln!("warning: could not write BENCH_10.json");
    }

    // Pool occupancy across every leg above (the global pool serves the
    // pipeline, the machine-parallel throughput row and the intra sweep).
    let pool_peak = busy_peak();
    let pool_dispatches = WorkerPool::global().dispatches();
    println!(
        "pool occupancy             : busy peak {pool_peak} workers, {pool_dispatches} dispatches"
    );

    append_job_summary(&format!(
        "### Nightly N400\n\n\
         | metric | value |\n|---|---|\n\
         | baseline accuracy | {:.2}% |\n\
         | accuracy @ operating point | {:.2}% |\n\
         | DRAM energy saving | {:.1}% |\n\
         | wall time (pipeline) | {:.1?} |\n\
         | scalar throughput (1 thread, B=1) | {scalar:.1} samples/s |\n\
         | batched throughput (1 thread, B={DEFAULT_BATCH}) | {batched:.1} samples/s ({ratio:.2}x scalar) |\n\
         | batched throughput (machine threads, B={DEFAULT_BATCH}) | {parallel:.1} samples/s |\n\
         | DRAM replay, per-access | {replay_per_access:.0} accesses/s |\n\
         | DRAM replay, compressed | {replay_compressed:.0} accesses/s ({replay_ratio:.1}x per-access) |\n\
         | telemetry overhead (spans, N3600 tiled) | {telem_ratio:.3}x off (`BENCH_10.json` artifact) |\n\
         | pool occupancy | busy peak {pool_peak} workers, {pool_dispatches} dispatches |",
        outcome.baseline_accuracy * 100.0,
        outcome.accuracy_at_operating_point * 100.0,
        saving * 100.0,
        pipeline_wall,
    ));
    let sweep_rows: String = sweep
        .iter()
        .map(|r| {
            format!(
                "| N{} | {:.1} | {:.1} | {:.1} | {} | {} | {:.2}x | {:.2}x | {} | {} |\n",
                r.n_neurons,
                r.scalar,
                r.untiled,
                r.tiled,
                r.tiled_avx2.map_or("n/a".into(), |v| format!("{v:.1}")),
                r.tiled_intra.map_or("n/a".into(), |v| format!("{v:.1}")),
                r.speedup(),
                r.speedup_vs_scalar(),
                r.speedup_avx2()
                    .map_or("n/a".into(), |v| format!("{v:.2}x")),
                r.speedup_intra()
                    .map_or("n/a".into(), |v| format!("{v:.2}x")),
            )
        })
        .collect();
    append_job_summary(&format!(
        "### Drive kernels (1 thread, B={DEFAULT_BATCH}, tile {DEFAULT_TILE}, \
         intra {intra_workers} workers, samples/s)\n\n\
         | network | scalar | untiled | tiled | tiled+avx2 | tiled+intra | tiled/untiled | tiled/scalar | avx2/tiled | intra/tiled |\n\
         |---|---|---|---|---|---|---|---|---|---|\n{sweep_rows}\n\
         Machine-readable copy: `BENCH_8.json` artifact."
    ));
    let precision_rows: String = precisions
        .iter()
        .map(|r| {
            format!(
                "| {} | {} | {} | {} | {} | {:.4} | {:.0} |\n",
                r.precision,
                r.word_bits,
                r.image_bytes,
                r.columns,
                r.trace_ops,
                r.pass_mj,
                r.pass_ns
            )
        })
        .collect();
    append_job_summary(&format!(
        "### Storage precision sweep (N400 image pass, accurate DRAM)\n\n\
         | precision | word bits | image bytes | columns | trace ops | pass mJ | pass ns |\n\
         |---|---|---|---|---|---|---|\n{precision_rows}\n\
         Machine-readable copy: `BENCH_9.json` artifact."
    ));
    // Perf gates last, so a tripped bound never discards the summary the
    // diagnosis needs.
    assert!(
        replay_ratio > 2.0,
        "compressed replay no longer pays for itself: {replay_ratio:.2}x"
    );
    // Packed-image traffic gate: the int8 N400 image must replay in at
    // most 0.3x the FP32 trace's op count (quarter the columns, with
    // row-activation overhead bounded) and cost proportionally less.
    let by_precision = |label: &str| {
        precisions
            .iter()
            .find(|r| r.precision == label)
            .expect("sweep covers all three formats")
    };
    let (fp32, int8) = (by_precision("fp32"), by_precision("int8"));
    assert!(
        (int8.trace_ops as f64) <= 0.3 * fp32.trace_ops as f64,
        "int8 N400 replay ops {} exceed 0.3x the FP32 trace's {}",
        int8.trace_ops,
        fp32.trace_ops
    );
    assert!(
        int8.pass_mj < 0.3 * fp32.pass_mj,
        "int8 N400 pass energy {} mJ not under 0.3x FP32's {} mJ",
        int8.pass_mj,
        fp32.pass_mj
    );
    // N3600 floors. The batched tiled path sustains ~1.5-1.6x the scalar
    // read path on the reference container (interleaved best-of-4); 1.35x
    // leaves margin for runner noise while still catching a real
    // regression. Tiling itself is a wash against the untiled sweep on
    // large-L2 parts (the whole N3600 working set fits a 2 MiB L2, and
    // hardware prefetch hides the slab streaming) and only pays on
    // L1-constrained cores, so it gets a no-catastrophic-regression floor
    // rather than a speedup floor.
    let n3600 = sweep
        .iter()
        .find(|r| r.n_neurons == 3600)
        .expect("sweep covers N3600");
    assert!(
        n3600.speedup_vs_scalar() >= 1.35,
        "batched tiled N3600 no longer clearly beats the scalar baseline: {:.2}x",
        n3600.speedup_vs_scalar()
    );
    assert!(
        n3600.speedup() >= 0.8,
        "tiled N3600 sweep regressed badly vs untiled: {:.2}x",
        n3600.speedup()
    );
    // AVX2 kernel floor. On the reference container the AVX2 kernel
    // sustains ~1.15-1.26x the portable tiled sweep at N3600 (the
    // portable row also gained the cross-row prefetch this round, so the
    // in-run ratio is tighter than the ~1.3-1.4x the combined
    // kernel+prefetch path shows over the previous portable-only
    // baseline); 1.10x is the noise-margined in-run floor that still
    // catches the SIMD path silently losing its advantage.
    match n3600.speedup_avx2() {
        Some(ratio) => assert!(
            ratio >= 1.10,
            "AVX2 N3600 kernel no longer clearly beats the portable tiled sweep: {ratio:.2}x"
        ),
        None => println!("AVX2 gate skipped: host reports no AVX2"),
    }
    // Intra-parallel floor. At 4 workers the per-timestep tile fan-out
    // must clearly beat the serial tiled sweep at N3600 (the occupancy
    // headroom this sweep exists to claim); 1.4x leaves ~2.8x of the
    // ideal 4x on the table for barrier cost and the serial
    // commit/inhibition tail. The gate only means something when the
    // host actually has 4 cores — an oversubscribed pin measures context
    // switching, not occupancy — so, like the AVX2 gate, it is skipped
    // (with the measured rows still recorded in BENCH_8.json) on smaller
    // hosts.
    match n3600.speedup_intra() {
        Some(ratio) if intra_workers >= 4 => assert!(
            ratio >= 1.4,
            "intra-parallel tiled N3600 no longer clearly beats the serial tiled sweep \
             at {intra_workers} workers: {ratio:.2}x"
        ),
        Some(ratio) => println!(
            "intra gate skipped: host has {host_cores} cores, need 4 \
             (measured {ratio:.2}x at {intra_workers} workers)"
        ),
        None => println!("intra gate skipped: single-core host"),
    }
    // Telemetry overhead gate: spans mode must keep >= 0.97x of the
    // telemetry-off tiled N3600 throughput — the "zero overhead when you
    // aren't looking, negligible when you are" contract, enforced.
    assert!(
        telem_ratio >= 0.97,
        "spans-mode telemetry costs too much at N3600: {telem_ratio:.3}x off-mode throughput"
    );
    println!("nightly N400-N3600 check: OK");
}
