//! Nightly scale guard: one paper-scale (N400) pipeline end to end.
//!
//! The per-PR suite runs demo-sized networks; scale-dependent regressions
//! (mapping capacity at real column counts, accuracy collapse at N400,
//! runtime blow-ups) only show at paper scale. The scheduled nightly
//! workflow runs this binary; it exits non-zero when a sanity bound is
//! violated.
//!
//! Usage: `cargo run -p sparkxd-bench --release --bin nightly_n400`
//! (`SPARKXD_NIGHTLY_SEED` overrides the default device seed of 42).

use sparkxd_core::pipeline::{DatasetKind, PipelineConfig, SparkXdPipeline};

fn main() {
    let seed = std::env::var("SPARKXD_NIGHTLY_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(42);
    let config = PipelineConfig::paper_network(400, DatasetKind::Digits, seed);
    println!(
        "nightly N400 pipeline: {} train / {} test samples, {} timesteps, device seed {seed}",
        config.train_samples, config.test_samples, config.timesteps
    );
    let t0 = std::time::Instant::now();
    let outcome = SparkXdPipeline::new(config)
        .run()
        .expect("N400 pipeline must complete");
    println!(
        "baseline accuracy        : {:.2}%",
        outcome.baseline_accuracy * 100.0
    );
    println!(
        "improved clean accuracy  : {:.2}%",
        outcome.improved_clean_accuracy * 100.0
    );
    println!(
        "accuracy @ operating pt  : {:.2}%",
        outcome.accuracy_at_operating_point * 100.0
    );
    println!(
        "max tolerable BER        : {:.1e} (target met: {})",
        outcome.max_tolerable_ber, outcome.target_met
    );
    println!(
        "operating point          : {:.3} V @ BER {:.1e}",
        outcome.operating_voltage.0, outcome.operating_ber
    );
    let saving = outcome.energy.saving_fraction_vs_baseline();
    println!("DRAM energy saving       : {:.1}%", saving * 100.0);
    println!(
        "throughput speed-up      : {:.3}x",
        outcome.energy.speedup()
    );
    println!("wall time                : {:.1?}", t0.elapsed());

    // Sanity bounds that demo scale cannot check.
    assert!(
        outcome.mapping.columns == 784 * 400 / 4,
        "N400 weight image must need {} columns, mapped {}",
        784 * 400 / 4,
        outcome.mapping.columns
    );
    assert_eq!(outcome.mapping.policy, "sparkxd");
    assert!(
        outcome.baseline_accuracy > 0.2,
        "N400 baseline accuracy collapsed: {}",
        outcome.baseline_accuracy
    );
    assert!(
        (0.05..0.60).contains(&saving),
        "energy saving {saving} left the plausible band"
    );
    assert!(
        outcome.energy.speedup() > 0.9,
        "throughput regressed: {}",
        outcome.energy.speedup()
    );
    println!("nightly N400 check: OK");
}
