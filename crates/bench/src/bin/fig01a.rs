//! Fig. 1(a): accuracy of small vs large SNN models on the digits dataset.
use sparkxd_bench::{experiments::fig01a, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 1(a) — accuracy vs model size (scale: {})",
        scale.label
    );
    println!("{}", fig01a::print(&fig01a::run(&scale, 42)));
}
