//! Fig. 11: accuracy across BERs, network sizes and datasets.
use sparkxd_bench::{experiments::fig11, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 11 — accuracy grid (scale: {})", scale.label);
    println!("{}", fig11::print(&fig11::run(&scale, 42)));
}
