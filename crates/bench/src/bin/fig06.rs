//! Fig. 6: voltage-scaled DRAM timing parameters from the circuit model.
use sparkxd_bench::experiments::fig06;

fn main() {
    println!("Fig. 6 — derived tRCD/tRAS/tRP per supply voltage");
    println!("{}", fig06::print(&fig06::run()));
}
