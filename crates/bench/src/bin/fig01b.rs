//! Fig. 1(b): energy breakdown of SNN processing on three platforms.
use sparkxd_bench::experiments::fig01b;

fn main() {
    println!("Fig. 1(b) — platform energy breakdowns");
    println!("{}", fig01b::print(&fig01b::run()));
}
