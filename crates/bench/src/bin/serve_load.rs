//! Deterministic open-loop load generator for the serving layer.
//!
//! Builds a voltage-tier ladder, starts a [`SparkXdService`] and drives
//! it through two phases of a seeded arrival trace:
//!
//! 1. **paced** — a Poisson arrival stream at ~60% of the offline batched
//!    capacity, for honest p50/p95/p99 queueing latency;
//! 2. **saturation** — the whole request set submitted as a burst, for
//!    peak serving throughput, compared against the offline
//!    [`BatchEvaluator`] on the same model.
//!
//! The serving path rides the same `run_batch` fast path as the offline
//! engine, so saturation throughput must stay within 20% of offline —
//! the binary exits non-zero when it does not (the CI sanity floor), and
//! appends a report row to `$GITHUB_STEP_SUMMARY` when running in
//! Actions.
//!
//! Usage: `cargo run --release -p sparkxd-bench --bin serve_load`
//!
//! | env | meaning | default |
//! |---|---|---|
//! | `SPARKXD_SERVE_SCALE` | `demo` or `n400` | `demo` |
//! | `SPARKXD_SERVE_REQUESTS` | requests per phase | 400 (demo) / 256 (n400) |
//! | `SPARKXD_SERVE_SEED` | trace + device seed | 42 |

use sparkxd_bench::{append_job_summary, telemetry_summary, TextTable};
use sparkxd_core::pipeline::{DatasetKind, PipelineConfig};
use sparkxd_core::{TierBuilder, TierSet};
use sparkxd_data::{Dataset, SynthDigits, SyntheticSource};
use sparkxd_serve::{
    arrival_trace, replay_open_loop, LoadSpec, MetricsSnapshot, RoutePolicy, ServiceConfig,
    SparkXdService,
};
use sparkxd_snn::engine::{busy_peak, env_usize_override, BatchEvaluator, DEFAULT_BATCH};
use sparkxd_snn::{DiehlCookNetwork, SnnConfig, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which model scale the soak runs at.
#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Demo,
    N400,
}

impl Scale {
    /// Unset means demo; anything other than `demo`/`n400` is a hard
    /// error — a CI typo must fail the job, not silently soak the wrong
    /// scale under a correct-looking green check.
    fn from_env() -> Self {
        match std::env::var("SPARKXD_SERVE_SCALE").as_deref() {
            Err(_) | Ok("demo") => Scale::Demo,
            Ok("n400") => Scale::N400,
            Ok(other) => {
                eprintln!(
                    "serve_load: unknown SPARKXD_SERVE_SCALE={other:?} \
                     (expected \"demo\" or \"n400\")"
                );
                std::process::exit(2);
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            Scale::Demo => "demo",
            Scale::N400 => "n400",
        }
    }
}

/// Builds the tier ladder for the chosen scale.
///
/// Demo runs the full flow (baseline + Algorithm 1) on a small network;
/// N400 trains briefly (the nightly recipe) and builds tiers around the
/// pre-trained model at the paper's typical `BER_th` of 1e-4 — this is a
/// serving soak, not an accuracy experiment.
fn build_tiers(scale: Scale, seed: u64) -> TierSet {
    match scale {
        Scale::Demo => {
            let config = PipelineConfig {
                neurons: 40,
                timesteps: 40,
                train_samples: 120,
                test_samples: 60,
                baseline_epochs: 2,
                ..PipelineConfig::small_demo(seed)
            };
            TierBuilder::new(config).build().expect("demo tier ladder")
        }
        Scale::N400 => {
            let config = PipelineConfig {
                train_samples: 48,
                test_samples: 32,
                timesteps: 50,
                ..PipelineConfig::paper_network(400, DatasetKind::Digits, seed)
            };
            let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(400).with_timesteps(50));
            net.train_epoch(&SynthDigits.generate(48, seed ^ 0xDA7A), 2);
            TierBuilder::new(config)
                .build_from_model(&net, 1e-4)
                .expect("n400 tier ladder")
        }
    }
}

/// Offline batched throughput (samples/sec, best of `reps`) of `tier`'s
/// model on `data` — the comparator the serving path must track.
fn offline_samples_per_sec(tiers: &TierSet, data: &Dataset, reps: usize) -> f64 {
    let params = &tiers.tiers[0].params;
    let eval = BatchEvaluator::from_env().with_batch(DEFAULT_BATCH);
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        std::hint::black_box(eval.spike_counts(params, data, 0x0FF));
        best = best.min(t.elapsed().as_secs_f64());
    }
    data.len() as f64 / best
}

/// Runs one phase: fresh service, replay, drain, shutdown. Returns the
/// final snapshot and the completion throughput (completed / wall from
/// first submit to last response).
fn run_phase(
    tiers: &TierSet,
    config: ServiceConfig,
    data: &Dataset,
    spec: &LoadSpec,
) -> (MetricsSnapshot, f64) {
    let (service, responses) = SparkXdService::start(tiers.tiers.clone(), config);
    let t0 = Instant::now();
    let outcome = replay_open_loop(&service, data, arrival_trace(spec, data.len()).as_slice());
    let snapshot = service.shutdown();
    let wall = t0.elapsed();
    let drained = responses.iter().count() as u64;
    assert_eq!(drained, snapshot.completed, "every completion is delivered");
    assert_eq!(
        outcome.accepted, snapshot.completed,
        "admitted requests must all be answered"
    );
    let throughput = snapshot.completed as f64 / wall.as_secs_f64();
    (snapshot, throughput)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Median dispatch-to-first-kernel latency (ns) of a 4-way fan-out: the
/// time from initiating the dispatch to the first *helper* thread (the
/// caller excluded — it enters its own share immediately in both modes)
/// beginning a job body. `use_pool: false` measures the pre-pool
/// behaviour — fresh `thread::scope` spawns per dispatch, the tax the
/// serve layer used to pay once per dispatched batch; `true` dispatches
/// onto the warm process-global [`WorkerPool`], where a dispatch is a
/// queue push + condvar wake. Job bodies sleep briefly so helpers get
/// scheduled (and observed) even on a single-core host.
fn dispatch_first_kernel_ns(use_pool: bool, reps: usize) -> u64 {
    let caller = std::thread::current().id();
    let mut samples = Vec::with_capacity(reps);
    // Warm-up dispatches: fault in the pool's threads (first pool use
    // spawns them — steady-state serving is what the number is for).
    for rep in 0..reps + 2 {
        let first = AtomicU64::new(u64::MAX);
        let t0 = Instant::now();
        let job = |_: usize| {
            if std::thread::current().id() != caller {
                let ns = t0.elapsed().as_nanos() as u64;
                first.fetch_min(ns, Ordering::Relaxed);
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        if use_pool {
            WorkerPool::global().run(4, 3, &job);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| job(0));
                }
                job(0);
            });
        }
        let observed = first.load(Ordering::Relaxed);
        if rep >= 2 && observed != u64::MAX {
            samples.push(observed);
        }
    }
    samples.sort_unstable();
    samples.get(samples.len() / 2).copied().unwrap_or(0)
}

fn main() {
    let scale = Scale::from_env();
    // Same policy as Scale::from_env: an unparsable knob is a hard error,
    // never a silent fallback to a correct-looking default.
    let seed = match std::env::var("SPARKXD_SERVE_SEED") {
        Err(_) => 42,
        Ok(raw) => raw.trim().parse::<u64>().unwrap_or_else(|_| {
            eprintln!("serve_load: unparsable SPARKXD_SERVE_SEED={raw:?} (expected a u64)");
            std::process::exit(2);
        }),
    };
    let requests = env_usize_override("SPARKXD_SERVE_REQUESTS").unwrap_or(match scale {
        Scale::Demo => 400,
        Scale::N400 => 256,
    });

    println!(
        "serve_load: scale {}, seed {seed}, {requests} requests/phase",
        scale.label()
    );
    let t0 = Instant::now();
    let tiers = build_tiers(scale, seed);
    println!(
        "tier ladder built in {:.1?} ({} tiers, {} skipped, BER_th {:.0e})",
        t0.elapsed(),
        tiers.tiers.len(),
        tiers.skipped.len(),
        tiers.ber_th
    );
    let mut tier_table = TextTable::new(vec![
        "tier".into(),
        "Vdd".into(),
        "device BER".into(),
        "est. accuracy".into(),
        "DRAM pass".into(),
        "pass latency".into(),
    ]);
    for (i, tier) in tiers.tiers.iter().enumerate() {
        tier_table.row(vec![
            format!("{i}"),
            format!("{:.3} V", tier.v_supply.0),
            format!("{:.1e}", tier.operating_ber),
            format!("{:.1}%", tier.accuracy_estimate * 100.0),
            format!("{:.4} mJ", tier.dram_pass_mj),
            format!("{:.1} us", tier.dram_pass_ns / 1e3),
        ]);
    }
    println!("{}", tier_table.render());

    let data = SynthDigits.generate(64, seed ^ 0x10AD);
    let offline = offline_samples_per_sec(&tiers, &data, 3);
    println!("offline batched comparator : {offline:8.1} samples/s");

    // Fan-out dispatch latency, before/after the persistent pool: fresh
    // scoped-thread spawns (the pre-pool engine, paid once per dispatched
    // batch) vs a queue push onto the warm worker pool.
    let spawn_ns = dispatch_first_kernel_ns(false, 25);
    let pool_ns = dispatch_first_kernel_ns(true, 25);
    let dispatch_gain = spawn_ns as f64 / (pool_ns.max(1)) as f64;
    println!(
        "dispatch-to-first-kernel   : scoped spawn {:8.1} us -> warm pool {:8.1} us ({:.1}x)",
        spawn_ns as f64 / 1e3,
        pool_ns as f64 / 1e3,
        dispatch_gain
    );

    let policy_mix = vec![
        RoutePolicy::AccuracyFloor(0.5),
        RoutePolicy::EnergyBudget(tiers.tiers[0].dram_pass_mj * 1.2),
        RoutePolicy::DeadlineSlack(tiers.tiers[tiers.tiers.len() - 1].dram_pass_ns),
        RoutePolicy::AccuracyFloor(0.0),
    ];
    let service_config = ServiceConfig::from_env()
        .with_max_wait(Duration::from_millis(2))
        .with_queue_bound(requests.max(1024))
        .with_spike_seed(seed ^ 0x5E7E);

    // Phase 1: paced at ~60% of offline capacity — queueing latency.
    let paced_spec = LoadSpec {
        requests,
        rate_per_sec: (offline * 0.6).max(1.0),
        seed: seed ^ 0xACE1,
        policy_mix: policy_mix.clone(),
    };
    let (paced, paced_rps) = run_phase(&tiers, service_config, &data, &paced_spec);
    println!(
        "paced    ({:7.1} req/s): p50 {:7.2} ms  p95 {:7.2} ms  p99 {:7.2} ms  ({} done, {} rejected)",
        paced_spec.rate_per_sec,
        ms(paced.p50_ns),
        ms(paced.p95_ns),
        ms(paced.p99_ns),
        paced.completed,
        paced.rejected
    );

    // Phase 2: saturation burst — peak completion throughput.
    let burst_spec = LoadSpec {
        requests,
        rate_per_sec: f64::INFINITY,
        seed: seed ^ 0xB57,
        policy_mix,
    };
    let (burst, burst_rps) = run_phase(&tiers, service_config, &data, &burst_spec);
    let ratio = burst_rps / offline.max(f64::MIN_POSITIVE);
    println!(
        "saturate ({paced_rps:7.1} paced): {burst_rps:8.1} samples/s  ({ratio:.2}x offline batched)"
    );

    let mut phase_table = TextTable::new(vec![
        "tier".into(),
        "paced hits".into(),
        "burst hits".into(),
        "burst batches".into(),
        "burst DRAM energy".into(),
    ]);
    for i in 0..tiers.tiers.len() {
        phase_table.row(vec![
            format!("{i} ({:.3} V)", tiers.tiers[i].v_supply.0),
            format!("{}", paced.per_tier[i].hits),
            format!("{}", burst.per_tier[i].hits),
            format!("{}", burst.per_tier[i].batches),
            format!("{:.4} mJ", burst.tier_energy_mj[i]),
        ]);
    }
    println!("{}", phase_table.render());
    println!(
        "burst DRAM energy/request  : {:.4} mJ (one pass amortised per chunk)",
        burst.energy_per_request_mj()
    );

    // Pool occupancy over the whole soak: peak concurrently-busy engine
    // workers and total pooled dispatches (the global pool serves both
    // phases plus the comparator, so these are run-wide numbers).
    let pool_peak = busy_peak();
    let pool_dispatches = WorkerPool::global().dispatches();
    println!(
        "pool occupancy             : busy peak {pool_peak} workers, {pool_dispatches} dispatches"
    );

    let per_tier_energy = tiers
        .tiers
        .iter()
        .enumerate()
        .map(|(i, t)| {
            format!(
                "{:.3}V: {} hits / {:.3} mJ",
                t.v_supply.0, burst.per_tier[i].hits, burst.tier_energy_mj[i]
            )
        })
        .collect::<Vec<_>>()
        .join(" · ");
    append_job_summary(&format!(
        "### Serving soak ({})\n\n\
         | metric | value |\n|---|---|\n\
         | paced p50 / p95 / p99 | {:.2} / {:.2} / {:.2} ms |\n\
         | saturation throughput | {burst_rps:.1} samples/s ({ratio:.2}x offline batched {offline:.1}) |\n\
         | dispatch-to-first-kernel | scoped spawn {:.1} us → warm pool {:.1} us ({dispatch_gain:.1}x) |\n\
         | per-tier energy (burst) | {per_tier_energy} |\n\
         | pool occupancy | busy peak {pool_peak} workers, {pool_dispatches} dispatches |\n\
         | rejected (paced / burst) | {} / {} |",
        scale.label(),
        ms(paced.p50_ns),
        ms(paced.p95_ns),
        ms(paced.p99_ns),
        spawn_ns as f64 / 1e3,
        pool_ns as f64 / 1e3,
        paced.rejected,
        burst.rejected,
    ));

    // Observation only (SPARKXD_TELEMETRY=counters|spans): routing and
    // engine counters for the soak, appended to the job summary too.
    if let Some(summary) = telemetry_summary() {
        println!("telemetry:\n{summary}");
        append_job_summary(&format!("\n```\n{summary}```\n"));
    }

    // Sanity floor last, so a tripped bound never discards the report the
    // diagnosis needs: serving rides the same run_batch fast path, so at
    // saturation it must stay within 20% of the offline batched engine.
    assert!(
        ratio >= 0.8,
        "serving throughput fell out of band: {burst_rps:.1} vs offline {offline:.1} ({ratio:.2}x < 0.8x)"
    );
    println!("serve_load check: OK");
}
