//! Rendering of a [`TelemetrySnapshot`] as the bench harness's
//! [`TextTable`], for the `repro_all` / `nightly_n400` / `serve_load`
//! job summaries. Lives here rather than in `sparkxd-telemetry` because
//! the telemetry crate is a leaf (everything depends on it) and must not
//! pull the bench table type in.

use crate::table::TextTable;
use sparkxd_telemetry::TelemetrySnapshot;

/// Renders `snapshot` as one combined counters/gauges/histograms/spans
/// table, or `None` when nothing was recorded (telemetry off).
pub fn telemetry_table(snapshot: &TelemetrySnapshot) -> Option<String> {
    if snapshot.is_empty() {
        return None;
    }
    let mut table = TextTable::new(vec![
        "metric".to_string(),
        "kind".to_string(),
        "count".to_string(),
        "total".to_string(),
        "p50".to_string(),
        "max".to_string(),
    ]);
    for (name, value) in &snapshot.counters {
        table.row(vec![
            name.clone(),
            "counter".to_string(),
            value.to_string(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    for (name, value) in &snapshot.gauges {
        table.row(vec![
            name.clone(),
            "gauge".to_string(),
            String::new(),
            value.to_string(),
            String::new(),
            String::new(),
        ]);
    }
    for h in &snapshot.histograms {
        table.row(vec![
            h.name.clone(),
            "hist".to_string(),
            h.count.to_string(),
            h.sum.to_string(),
            h.p50.to_string(),
            h.max.to_string(),
        ]);
    }
    for s in &snapshot.spans {
        table.row(vec![
            s.name.clone(),
            "span".to_string(),
            s.count.to_string(),
            format!("{:.3}ms", s.total_ns as f64 / 1e6),
            format!("{:.3}ms", s.p50_ns as f64 / 1e6),
            format!("{:.3}ms", s.max_ns as f64 / 1e6),
        ]);
    }
    Some(table.render())
}

/// Captures the live registry and renders it; `None` when telemetry is
/// off or nothing has been recorded. The one-call form the repro/serve
/// binaries append to their summaries.
pub fn telemetry_summary() -> Option<String> {
    telemetry_table(&TelemetrySnapshot::capture())
}

/// Renders the nightly telemetry-overhead measurement as the
/// machine-readable `BENCH_10.json` document. Hand-formatted like
/// [`crate::bench_json`] — the workspace carries no serialisation
/// dependency — with the shape locked by a test below.
pub fn telemetry_overhead_json(
    n_neurons: usize,
    samples: usize,
    off_samples_per_sec: f64,
    spans_samples_per_sec: f64,
) -> String {
    let ratio = if off_samples_per_sec > 0.0 {
        spans_samples_per_sec / off_samples_per_sec
    } else {
        0.0
    };
    format!(
        "{{\n  \"issue\": 10,\n  \"bench\": \"telemetry_overhead\",\n  \
         \"unit\": \"samples_per_sec\",\n  \"n_neurons\": {n_neurons},\n  \
         \"samples\": {samples},\n  \"rows\": [\n    \
         {{\"mode\": \"off\", \"samples_per_sec\": {off_samples_per_sec:.1}}},\n    \
         {{\"mode\": \"spans\", \"samples_per_sec\": {spans_samples_per_sec:.1}, \
         \"ratio_vs_off\": {ratio:.3}}}\n  ]\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_telemetry::{HistogramSnapshot, SpanSnapshot};

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            mode: "spans".to_string(),
            counters: vec![("pool.dispatches".to_string(), 12)],
            gauges: vec![("pool.busy_peak".to_string(), 4)],
            histograms: vec![HistogramSnapshot {
                name: "dram.bus_busy_ns".to_string(),
                count: 3,
                sum: 120,
                p50: 40,
                p99: 60,
                max: 60,
            }],
            spans: vec![SpanSnapshot {
                name: "pipeline.data".to_string(),
                count: 1,
                total_ns: 2_500_000,
                p50_ns: 2_500_000,
                max_ns: 2_500_000,
            }],
            dropped_events: 0,
        }
    }

    #[test]
    fn table_lists_every_metric_kind() {
        let rendered = telemetry_table(&sample()).expect("non-empty snapshot renders");
        for needle in [
            "pool.dispatches",
            "counter",
            "pool.busy_peak",
            "gauge",
            "dram.bus_busy_ns",
            "hist",
            "pipeline.data",
            "span",
            "2.500ms",
        ] {
            assert!(
                rendered.contains(needle),
                "missing {needle} in:\n{rendered}"
            );
        }
    }

    #[test]
    fn overhead_json_has_the_locked_shape() {
        let json = telemetry_overhead_json(3600, 16, 100.0, 98.5);
        for needle in [
            "\"issue\": 10",
            "\"bench\": \"telemetry_overhead\"",
            "\"unit\": \"samples_per_sec\"",
            "\"n_neurons\": 3600",
            "\"samples\": 16",
            "\"mode\": \"off\", \"samples_per_sec\": 100.0",
            "\"mode\": \"spans\", \"samples_per_sec\": 98.5",
            "\"ratio_vs_off\": 0.985",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn overhead_json_survives_a_broken_baseline() {
        assert!(telemetry_overhead_json(3600, 16, 0.0, 50.0).contains("\"ratio_vs_off\": 0.000"));
    }

    #[test]
    fn empty_snapshot_renders_nothing() {
        let empty = TelemetrySnapshot {
            mode: "off".to_string(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            dropped_events: 0,
        };
        assert!(telemetry_table(&empty).is_none());
    }
}
