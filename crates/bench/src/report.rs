//! Parallel figure/table reproduction: every experiment section as an
//! independent job, sharded across scoped worker threads and emitted in
//! the paper's order as results come in.
//!
//! Experiments are heterogeneous (fig. 11 trains networks for minutes,
//! table I replays traces in milliseconds), so jobs are pulled from a
//! shared queue rather than statically chunked, and each completed
//! section is handed to the caller as soon as every earlier section is
//! also done — a long paper-scale run prints progressively instead of
//! going silent until the slowest experiment finishes. Each section's
//! `run(...)` is deterministic per seed and emission order is fixed by
//! the job list, so the report is byte-identical for any worker count.

use crate::experiments as ex;
use crate::scale::Scale;
use sparkxd_snn::engine::{worker_count, WorkerReservation};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One rendered report section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Heading, e.g. `"Fig. 8 — error-tolerance analysis"`.
    pub title: &'static str,
    /// Rendered body (tables/series).
    pub body: String,
}

/// A titled unit of report work.
pub type SectionJob = (&'static str, Box<dyn Fn() -> String + Send + Sync>);

/// Renders `jobs` on the worker pool, calling `emit` for each section in
/// job order as soon as it and all its predecessors are complete, and
/// returning the full ordered list.
pub fn run_sections_with<F>(jobs: Vec<SectionJob>, emit: F) -> Vec<Section>
where
    F: FnMut(&Section),
{
    let threads = worker_count(jobs.len());
    run_sections_on(jobs, threads, emit)
}

fn run_sections_on<F>(jobs: Vec<SectionJob>, threads: usize, mut emit: F) -> Vec<Section>
where
    F: FnMut(&Section),
{
    let render = |(title, f): &SectionJob| Section { title, body: f() };
    if threads <= 1 {
        return jobs
            .iter()
            .map(|job| {
                let section = render(job);
                emit(&section);
                section
            })
            .collect();
    }
    let _reservation = WorkerReservation::for_pool(threads);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Section)>();
    let mut done: Vec<Option<Section>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(|| {
                let tx = tx;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let sent = tx.send((i, render(&jobs[i]))).is_ok();
                    debug_assert!(sent, "receiver outlives the scope");
                }
            });
        }
        drop(tx);
        // Emit in job order: hold completed sections until every earlier
        // one has arrived.
        let mut pending = BTreeMap::new();
        let mut next = 0;
        for (i, section) in rx {
            pending.insert(i, section);
            while let Some(section) = pending.remove(&next) {
                emit(&section);
                done[next] = Some(section);
                next += 1;
            }
        }
    });
    done.into_iter()
        .map(|slot| slot.expect("every job rendered exactly once"))
        .collect()
}

/// Renders `jobs` on the worker pool, preserving job order in the output.
pub fn run_sections(jobs: Vec<SectionJob>) -> Vec<Section> {
    run_sections_with(jobs, |_| {})
}

/// One (network size, scalar, untiled, tiled, tiled+AVX2, intra-tiled)
/// throughput measurement of a bench sweep, in samples/sec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchRow {
    /// Excitatory-layer size the row was measured at.
    pub n_neurons: usize,
    /// Samples/sec of the scalar serial reference (`run_sample`, B = 1 —
    /// the pre-batching read path).
    pub scalar: f64,
    /// Samples/sec of the untiled batched sweep (one `usize::MAX` tile —
    /// the pre-tiling behaviour), portable kernel.
    pub untiled: f64,
    /// Samples/sec of the tiled batched sweep, portable kernel, serial
    /// (intra off).
    pub tiled: f64,
    /// Samples/sec of the tiled batched sweep on the AVX2 kernel; `None`
    /// when the host has no AVX2 (the sweep skips the configuration).
    pub tiled_avx2: Option<f64>,
    /// Samples/sec of the intra-parallel tiled sweep (the per-timestep
    /// tile fan-out across pool workers), portable kernel; `None` when
    /// the sweep skips the configuration.
    pub tiled_intra: Option<f64>,
}

impl BenchRow {
    /// Tiled-over-untiled speedup (portable kernel on both sides). A
    /// non-positive (broken) baseline reports 0 — finite, and guaranteed
    /// to trip any speedup floor.
    pub fn speedup(&self) -> f64 {
        Self::ratio(self.tiled, self.untiled)
    }

    /// Tiled-over-scalar speedup, with the same broken-baseline rule.
    pub fn speedup_vs_scalar(&self) -> f64 {
        Self::ratio(self.tiled, self.scalar)
    }

    /// AVX2-tiled-over-portable-tiled speedup; `None` off AVX2 hosts.
    pub fn speedup_avx2(&self) -> Option<f64> {
        self.tiled_avx2.map(|avx2| Self::ratio(avx2, self.tiled))
    }

    /// Intra-parallel-over-serial tiled speedup (portable kernel on both
    /// sides); `None` when the intra row was not measured.
    pub fn speedup_intra(&self) -> Option<f64> {
        self.tiled_intra.map(|intra| Self::ratio(intra, self.tiled))
    }

    fn ratio(num: f64, den: f64) -> f64 {
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

/// Renders a bench sweep as the machine-readable `BENCH_<issue>.json`
/// document consumed by the nightly trajectory tooling. Hand-formatted —
/// the workspace deliberately carries no serialisation dependency — so
/// the shape is locked by tests instead of a schema.
pub fn bench_json(
    issue: u32,
    bench: &str,
    tile_width: usize,
    batch: usize,
    intra_workers: usize,
    rows: &[BenchRow],
) -> String {
    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            let avx2 = match r.tiled_avx2 {
                Some(v) => format!("{v:.1}"),
                None => "null".into(),
            };
            let speedup_avx2 = match r.speedup_avx2() {
                Some(v) => format!("{v:.3}"),
                None => "null".into(),
            };
            let intra = match r.tiled_intra {
                Some(v) => format!("{v:.1}"),
                None => "null".into(),
            };
            let speedup_intra = match r.speedup_intra() {
                Some(v) => format!("{v:.3}"),
                None => "null".into(),
            };
            format!(
                "    {{\"n_neurons\": {}, \"scalar\": {:.1}, \"untiled\": {:.1}, \"tiled\": {:.1}, \
                 \"tiled_avx2\": {avx2}, \"tiled_intra\": {intra}, \"speedup\": {:.3}, \
                 \"speedup_vs_scalar\": {:.3}, \"speedup_avx2\": {speedup_avx2}, \
                 \"speedup_intra\": {speedup_intra}}}",
                r.n_neurons,
                r.scalar,
                r.untiled,
                r.tiled,
                r.speedup(),
                r.speedup_vs_scalar()
            )
        })
        .collect();
    format!(
        "{{\n  \"issue\": {issue},\n  \"bench\": \"{bench}\",\n  \"unit\": \"samples_per_sec\",\n  \
         \"tile_width\": {tile_width},\n  \"batch\": {batch},\n  \
         \"intra_workers\": {intra_workers},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    )
}

/// One storage format's N400 weight-image measurements for the precision
/// sweep artifact (`BENCH_9.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRow {
    /// Storage-format label (`"fp32"`, `"int8"`, `"int16"`).
    pub precision: &'static str,
    /// Bits per stored weight word.
    pub word_bits: u32,
    /// DRAM image size in bytes.
    pub image_bytes: usize,
    /// Burst columns the image maps to.
    pub columns: usize,
    /// Compressed-trace op count of one image pass.
    pub trace_ops: usize,
    /// DRAM energy (mJ) of one image pass.
    pub pass_mj: f64,
    /// DRAM latency (ns) of one image pass.
    pub pass_ns: f64,
}

/// Renders the precision sweep as the machine-readable `BENCH_9.json`
/// document, in the same hand-formatted house style as
/// [`bench_json`] (no serialisation dependency; shape locked by tests).
pub fn precision_json(issue: u32, bench: &str, neurons: usize, rows: &[PrecisionRow]) -> String {
    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"precision\": \"{}\", \"word_bits\": {}, \"image_bytes\": {}, \
                 \"columns\": {}, \"trace_ops\": {}, \"pass_mj\": {:.6}, \"pass_ns\": {:.1}}}",
                r.precision,
                r.word_bits,
                r.image_bytes,
                r.columns,
                r.trace_ops,
                r.pass_mj,
                r.pass_ns
            )
        })
        .collect();
    format!(
        "{{\n  \"issue\": {issue},\n  \"bench\": \"{bench}\",\n  \"neurons\": {neurons},\n  \
         \"unit\": \"dram_pass\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows_json.join(",\n")
    )
}

/// Writes `json` to `path`, returning whether the write succeeded (the
/// nightly binaries treat a failed artifact write as a warning, not a
/// failed run).
pub fn write_bench_json(path: &str, json: &str) -> bool {
    std::fs::write(path, json).is_ok()
}

/// Appends `markdown` to the GitHub Actions job summary when running in
/// CI (`$GITHUB_STEP_SUMMARY` set, as the nightly binaries are); silently
/// does nothing elsewhere.
pub fn append_job_summary(markdown: &str) {
    use std::io::Write;
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
    {
        let _ = writeln!(file, "{markdown}");
    }
}

/// The full figure/table job list of the paper, in presentation order.
pub fn paper_sections(scale: &Scale, seed: u64) -> Vec<SectionJob> {
    let s1 = scale.clone();
    let s8 = scale.clone();
    let s11 = scale.clone();
    vec![
        (
            "Fig. 1(a) — accuracy of small vs large SNN models",
            Box::new(move || ex::fig01a::print(&ex::fig01a::run(&s1, seed))),
        ),
        (
            "Fig. 1(b) — platform energy breakdowns",
            Box::new(|| ex::fig01b::print(&ex::fig01b::run())),
        ),
        (
            "Fig. 2(a) — DRAM energy vs connectivity (pruning x approx DRAM, N4900)",
            Box::new(move || ex::fig02a::print(&ex::fig02a::run(seed))),
        ),
        (
            "Fig. 2(b) — access energy per row-buffer condition",
            Box::new(|| {
                let (hi, lo) = ex::fig02b::run();
                ex::fig02b::print(&hi, &lo)
            }),
        ),
        (
            "Fig. 2(c) — BER vs supply voltage",
            Box::new(|| ex::fig02c::print(&ex::fig02c::run())),
        ),
        (
            "Fig. 2(d) — DRAM array voltage dynamics (1.35 V vs 1.025 V)",
            Box::new(|| {
                let (wave_hi, wave_lo) = ex::fig02d::run();
                ex::fig02d::print(&wave_hi, &wave_lo)
            }),
        ),
        (
            "Fig. 6 — voltage-scaled DRAM timing parameters",
            Box::new(|| ex::fig06::print(&ex::fig06::run())),
        ),
        (
            "Fig. 8 — error-tolerance analysis (middle network size)",
            Box::new(move || ex::fig08::print(&ex::fig08::run(&s8, seed))),
        ),
        (
            "Fig. 11 — accuracy across BERs, sizes and datasets",
            Box::new(move || ex::fig11::print(&ex::fig11::run(&s11, seed))),
        ),
        (
            "Fig. 12 — DRAM energy per inference and throughput across voltages",
            Box::new(move || {
                let rows = ex::fig12::run(seed);
                format!(
                    "{}### per-voltage savings vs accurate baseline\n{}### throughput speed-up vs baseline\n{}",
                    ex::fig12::print_energy(&rows),
                    ex::fig12::print_savings(&rows),
                    ex::fig12::print_speedup(&rows)
                )
            }),
        ),
        (
            "Table I — DRAM energy-per-access savings",
            Box::new(move || {
                format!(
                    "{}### storage-format analogue: N400 pass saving (voltage x packing)\n{}",
                    ex::table1::print(&ex::table1::run()),
                    ex::table1::print_storage(&ex::table1::run_storage(seed))
                )
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_jobs() -> Vec<SectionJob> {
        vec![
            ("alpha", Box::new(|| "a".into())),
            ("beta", Box::new(|| "b".into())),
            ("gamma", Box::new(|| "c".into())),
            ("delta", Box::new(|| "d".into())),
            ("epsilon", Box::new(|| "e".into())),
        ]
    }

    #[test]
    fn sections_come_back_in_job_order() {
        let sections = run_sections(dummy_jobs());
        let titles: Vec<_> = sections.iter().map(|s| s.title).collect();
        assert_eq!(titles, ["alpha", "beta", "gamma", "delta", "epsilon"]);
        let bodies: Vec<_> = sections.iter().map(|s| s.body.as_str()).collect();
        assert_eq!(bodies, ["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn parallel_emission_streams_in_job_order() {
        // Make the first job the slowest: on a multi-worker pool, later
        // sections complete first and must be held back until "alpha"
        // lands, whatever the machine's core count.
        for threads in [2, 3, 8] {
            let mut jobs = dummy_jobs();
            jobs[0].1 = Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(50));
                "a".into()
            });
            let mut emitted = Vec::new();
            let sections = run_sections_on(jobs, threads, |s| emitted.push(s.title));
            assert_eq!(
                emitted,
                ["alpha", "beta", "gamma", "delta", "epsilon"],
                "threads={threads}"
            );
            assert_eq!(sections.len(), 5);
        }
    }

    #[test]
    fn bench_json_is_well_formed_and_complete() {
        let rows = [
            BenchRow {
                n_neurons: 400,
                scalar: 50.0,
                untiled: 100.0,
                tiled: 150.0,
                tiled_avx2: Some(300.0),
                tiled_intra: Some(225.0),
            },
            BenchRow {
                n_neurons: 3600,
                scalar: 8.2,
                untiled: 10.0,
                tiled: 20.5,
                tiled_avx2: None,
                tiled_intra: None,
            },
        ];
        let json = bench_json(8, "drive_kernels", 512, 4, 4, &rows);
        // Shape is locked here in lieu of a schema: balanced braces and
        // brackets, every field present, rows in order, and a null (not
        // an absent key) for the AVX2/intra columns on hosts that skip
        // those configurations.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"issue\": 8",
            "\"bench\": \"drive_kernels\"",
            "\"unit\": \"samples_per_sec\"",
            "\"tile_width\": 512",
            "\"batch\": 4",
            "\"intra_workers\": 4",
            "\"n_neurons\": 400",
            "\"n_neurons\": 3600",
            "\"scalar\": 8.2",
            "\"untiled\": 10.0",
            "\"tiled\": 20.5",
            "\"tiled_avx2\": 300.0",
            "\"tiled_avx2\": null",
            "\"tiled_intra\": 225.0",
            "\"tiled_intra\": null",
            "\"speedup\": 2.050",
            "\"speedup_vs_scalar\": 2.500",
            "\"speedup_avx2\": 2.000",
            "\"speedup_avx2\": null",
            "\"speedup_intra\": 1.500",
            "\"speedup_intra\": null",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(
            json.find("400").unwrap() < json.find("3600").unwrap(),
            "rows must keep sweep order"
        );
    }

    #[test]
    fn precision_json_is_well_formed_and_complete() {
        let rows = [
            PrecisionRow {
                precision: "fp32",
                word_bits: 32,
                image_bytes: 1_254_400,
                columns: 78_400,
                trace_ops: 613,
                pass_mj: 1.25,
                pass_ns: 98_000.0,
            },
            PrecisionRow {
                precision: "int8",
                word_bits: 8,
                image_bytes: 313_600,
                columns: 19_600,
                trace_ops: 154,
                pass_mj: 0.31,
                pass_ns: 24_500.0,
            },
        ];
        let json = precision_json(9, "precision_sweep", 400, &rows);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"issue\": 9",
            "\"bench\": \"precision_sweep\"",
            "\"neurons\": 400",
            "\"unit\": \"dram_pass\"",
            "\"precision\": \"fp32\"",
            "\"precision\": \"int8\"",
            "\"word_bits\": 32",
            "\"word_bits\": 8",
            "\"image_bytes\": 313600",
            "\"columns\": 19600",
            "\"trace_ops\": 154",
            "\"pass_mj\": 0.310000",
            "\"pass_ns\": 24500.0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(
            json.find("fp32").unwrap() < json.find("int8").unwrap(),
            "rows must keep sweep order"
        );
    }

    #[test]
    fn bench_row_speedup_survives_a_zero_baseline() {
        let row = BenchRow {
            n_neurons: 400,
            scalar: 0.0,
            untiled: 0.0,
            tiled: 10.0,
            tiled_avx2: Some(20.0),
            tiled_intra: Some(15.0),
        };
        assert_eq!(row.speedup(), 0.0);
        assert_eq!(row.speedup_vs_scalar(), 0.0);
        // A zero *tiled* baseline must also trip the AVX2/intra floors,
        // not divide by zero.
        let broken = BenchRow { tiled: 0.0, ..row };
        assert_eq!(broken.speedup_avx2(), Some(0.0));
        assert_eq!(broken.speedup_intra(), Some(0.0));
        assert_eq!(
            BenchRow {
                tiled_avx2: None,
                tiled_intra: None,
                ..row
            }
            .speedup_avx2(),
            None
        );
        assert_eq!(
            BenchRow {
                tiled_intra: None,
                ..row
            }
            .speedup_intra(),
            None
        );
    }

    #[test]
    fn paper_job_list_covers_every_figure_and_table() {
        let jobs = paper_sections(&Scale::demo(), 42);
        assert_eq!(jobs.len(), 11);
        assert!(jobs[0].0.contains("Fig. 1(a)"));
        assert!(jobs.last().unwrap().0.contains("Table I"));
    }
}
