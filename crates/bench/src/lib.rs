//! # sparkxd-bench
//!
//! The benchmark harness of the SparkXD reproduction: one module per paper
//! table/figure, each with a `run(...)` function returning structured data
//! and a `print(...)` helper emitting the same rows/series the paper
//! reports. The `src/bin/` binaries wrap these modules (`fig02b`, `fig11`,
//! `repro_all`, …) and the Criterion benches in `benches/` time their
//! computational kernels.
//!
//! Accuracy experiments accept an [`Scale`]: the default
//! [`Scale::demo`] runs CPU-sized networks (N50–N200, hundreds of samples)
//! so the whole suite regenerates in minutes; [`Scale::paper`] switches to
//! the paper's N400–N3600 at full sample counts (hours of CPU). Energy
//! experiments always use the paper's exact network sizes — they replay
//! weight-streaming traces and need no training.

pub mod experiments;
pub mod report;
pub mod scale;
pub mod table;
pub mod telemetry_report;

pub use report::{
    append_job_summary, bench_json, paper_sections, precision_json, run_sections,
    run_sections_with, write_bench_json, BenchRow, PrecisionRow, Section,
};
pub use scale::Scale;
pub use table::TextTable;
pub use telemetry_report::{telemetry_overhead_json, telemetry_summary, telemetry_table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_distinct_sizes() {
        assert_ne!(Scale::demo().network_sizes, Scale::paper().network_sizes);
    }
}
