//! Minimal aligned-text table printer for experiment reports.

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use sparkxd_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["V".into(), "saving".into()]);
/// t.row(vec!["1.025V".into(), "42.4%".into()]);
/// let s = t.render();
/// assert!(s.contains("1.025V"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    bb"));
        assert!(lines[2].starts_with("xxx  y"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }
}
