//! Experiment scaling: demo (CPU-minutes) vs paper (paper-faithful sizes).

/// Knobs shared by the accuracy experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Label printed in reports.
    pub label: &'static str,
    /// Excitatory neuron counts standing in for the paper's
    /// N400/N900/N1600/N2500/N3600.
    pub network_sizes: Vec<usize>,
    /// Training samples per epoch.
    pub train_samples: usize,
    /// Test samples.
    pub test_samples: usize,
    /// Error-free epochs for the baseline model.
    pub baseline_epochs: usize,
    /// Epochs per BER step in Algorithm 1.
    pub epochs_per_rate: usize,
    /// Presentation window (timesteps).
    pub timesteps: usize,
    /// Injection trials per BER point when measuring tolerance curves.
    pub eval_trials: usize,
}

impl Scale {
    /// CPU-friendly scale used by default: same code, smaller networks.
    /// The baseline is trained to (near) convergence so that Algorithm 1's
    /// additional epochs measure error tolerance rather than leftover
    /// learning headroom.
    pub fn demo() -> Self {
        Self {
            label: "demo",
            network_sizes: vec![50, 100, 200],
            train_samples: 600,
            test_samples: 100,
            baseline_epochs: 5,
            epochs_per_rate: 1,
            timesteps: 60,
            eval_trials: 1,
        }
    }

    /// The paper's five network sizes at fuller sample counts. Expect hours
    /// of CPU for the accuracy figures at this scale.
    pub fn paper() -> Self {
        Self {
            label: "paper",
            network_sizes: vec![400, 900, 1600, 2500, 3600],
            train_samples: 1000,
            test_samples: 300,
            baseline_epochs: 3,
            epochs_per_rate: 1,
            timesteps: 100,
            eval_trials: 2,
        }
    }

    /// Reads `SPARKXD_SCALE` (`demo` default, `paper` for full size).
    pub fn from_env() -> Self {
        match std::env::var("SPARKXD_SCALE").as_deref() {
            Ok("paper") => Self::paper(),
            _ => Self::demo(),
        }
    }

    /// The BER points of the paper's Figs. 8/11 x-axis (1e-9 … 1e-3).
    pub fn ber_points(&self) -> Vec<f64> {
        vec![1e-9, 1e-7, 1e-5, 1e-4, 1e-3]
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::demo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_small_paper_is_paper() {
        assert!(Scale::demo().network_sizes.iter().all(|&n| n <= 400));
        assert_eq!(
            Scale::paper().network_sizes,
            vec![400, 900, 1600, 2500, 3600]
        );
    }

    #[test]
    fn ber_points_span_paper_axis() {
        let pts = Scale::demo().ber_points();
        assert_eq!(*pts.first().unwrap(), 1e-9);
        assert_eq!(*pts.last().unwrap(), 1e-3);
    }
}
