//! Fig. 12: (a) DRAM access energy per inference for the baseline SNN with
//! accurate DRAM vs the SparkXD-improved SNN with approximate DRAM across
//! supply voltages and network sizes; (b) throughput speed-up vs baseline.
//!
//! These are pure trace/energy experiments, so they run at the paper's
//! exact network sizes (N400–N3600).

use crate::experiments::{APPROX_VOLTAGES, NOMINAL_VOLTAGE};
use crate::table::TextTable;
use sparkxd_circuit::Volt;
use sparkxd_core::energy_eval::EnergyEvaluation;
use sparkxd_core::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
use sparkxd_core::trace_gen::columns_for_words;
use sparkxd_dram::DramConfig;
use sparkxd_error::{BerCurve, WeakCellMap};

/// Energy at one approximate operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltagePoint {
    /// Supply voltage.
    pub v_supply: f64,
    /// DRAM access energy of one inference (mJ).
    pub energy_mj: f64,
    /// Saving vs the accurate baseline.
    pub saving: f64,
    /// Speed-up vs the accurate baseline (Fig. 12b).
    pub speedup: f64,
}

/// One network size's row of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRow {
    /// Excitatory neuron count (N400…N3600).
    pub neurons: usize,
    /// Baseline (accurate DRAM @1.35 V) energy per inference (mJ).
    pub baseline_mj: f64,
    /// The five approximate operating points.
    pub points: Vec<VoltagePoint>,
}

/// The paper's five network sizes.
pub const PAPER_SIZES: [usize; 5] = [400, 900, 1600, 2500, 3600];

/// Runs the full energy/speedup sweep.
pub fn run(device_seed: u64) -> Vec<SizeRow> {
    let ber_curve = BerCurve::paper_default();
    let baseline_config = DramConfig::lpddr3_1600_4gb();
    // Timing derivations are shared across sizes.
    let approx_configs: Vec<DramConfig> = APPROX_VOLTAGES
        .iter()
        .map(|&v| DramConfig::approximate(Volt(v)).expect("modelled voltage"))
        .collect();
    let weak_cells = WeakCellMap::generate(&baseline_config.geometry, device_seed);

    PAPER_SIZES
        .iter()
        .map(|&neurons| {
            let n_words = 784 * neurons;
            let n_columns = columns_for_words(
                n_words,
                baseline_config.geometry.col_bytes,
                sparkxd_snn::WeightPrecision::Fp32,
            );
            // Baseline: accurate DRAM, sequential mapping.
            let flat = sparkxd_error::ErrorProfile::uniform(
                0.0,
                baseline_config.geometry.total_subarrays(),
            );
            let baseline_map = BaselineMapping
                .map(n_columns, &baseline_config.geometry, &flat, f64::MAX)
                .expect("device holds every paper model");
            let baseline = EnergyEvaluation::evaluate(&baseline_config, &baseline_map);

            let points = approx_configs
                .iter()
                .map(|config| {
                    // SparkXD operates each voltage with BER_th equal to the
                    // device BER there (Fig. 11 shows the improved model
                    // tolerates the full range), mapping into subarrays at
                    // or below that rate.
                    let ber = ber_curve.ber_at(config.v_supply);
                    let profile = weak_cells.profile(ber);
                    let mapping = SparkXdMapping
                        .map(n_columns, &config.geometry, &profile, ber.max(1e-12))
                        .expect("half the subarrays sit at or below the base rate");
                    let eval = EnergyEvaluation::evaluate(config, &mapping);
                    VoltagePoint {
                        v_supply: config.v_supply.0,
                        energy_mj: eval.total_mj(),
                        saving: 1.0 - eval.total_mj() / baseline.total_mj(),
                        speedup: baseline.runtime_ns() / eval.runtime_ns(),
                    }
                })
                .collect();

            SizeRow {
                neurons,
                baseline_mj: baseline.total_mj(),
                points,
            }
        })
        .collect()
}

/// Renders Fig. 12(a): energy per voltage and size.
pub fn print_energy(rows: &[SizeRow]) -> String {
    let mut t = TextTable::new(vec![
        "network".into(),
        format!("{NOMINAL_VOLTAGE:.3}V (acc) [mJ]"),
        "1.325V".into(),
        "1.250V".into(),
        "1.175V".into(),
        "1.100V".into(),
        "1.025V".into(),
    ]);
    for r in rows {
        let mut cells = vec![format!("N{}", r.neurons), format!("{:.3}", r.baseline_mj)];
        cells.extend(r.points.iter().map(|p| format!("{:.3}", p.energy_mj)));
        t.row(cells);
    }
    t.render()
}

/// Renders the per-voltage savings (the paper's Sec. VI-B labelled lists).
pub fn print_savings(rows: &[SizeRow]) -> String {
    let mut t = TextTable::new(vec![
        "network".into(),
        "1.325V".into(),
        "1.250V".into(),
        "1.175V".into(),
        "1.100V".into(),
        "1.025V".into(),
    ]);
    for r in rows {
        let mut cells = vec![format!("N{}", r.neurons)];
        cells.extend(r.points.iter().map(|p| format!("{:.2}%", p.saving * 100.0)));
        t.row(cells);
    }
    // Averages across sizes, as the paper reports.
    let n_v = rows[0].points.len();
    let mut cells = vec!["average".to_string()];
    for k in 0..n_v {
        let avg: f64 = rows.iter().map(|r| r.points[k].saving).sum::<f64>() / rows.len() as f64;
        cells.push(format!("{:.2}%", avg * 100.0));
    }
    t.row(cells);
    t.render()
}

/// Renders Fig. 12(b): speed-up vs baseline per size (mean over voltages).
pub fn print_speedup(rows: &[SizeRow]) -> String {
    let mut t = TextTable::new(vec!["network".into(), "speed-up vs baseline".into()]);
    for r in rows {
        let mean: f64 = r.points.iter().map(|p| p.speedup).sum::<f64>() / r.points.len() as f64;
        t.row(vec![format!("N{}", r.neurons), format!("{mean:.3}x")]);
    }
    let overall: f64 = rows
        .iter()
        .flat_map(|r| r.points.iter().map(|p| p.speedup))
        .sum::<f64>()
        / (rows.len() * rows[0].points.len()) as f64;
    t.row(vec!["average".into(), format!("{overall:.3}x")]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_track_paper_magnitudes() {
        let rows = run(7);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.points.len(), 5);
            // Saving grows monotonically as voltage falls.
            for w in r.points.windows(2) {
                assert!(w[1].saving > w[0].saving);
            }
            // Paper: ~3.8% at 1.325 V up to ~39.5% at 1.025 V.
            assert!(
                (0.005..0.12).contains(&r.points[0].saving),
                "{}",
                r.points[0].saving
            );
            let last = r.points.last().unwrap().saving;
            assert!((0.30..0.47).contains(&last), "{last}");
            // Throughput maintained (paper: ~1.02x average).
            for p in &r.points {
                assert!(p.speedup > 0.95, "speedup {}", p.speedup);
            }
        }
        // Larger networks cost more energy.
        assert!(rows[4].baseline_mj > rows[0].baseline_mj * 5.0);
    }

    #[test]
    fn render_helpers_produce_rows() {
        let rows = run(3);
        assert!(print_energy(&rows).contains("N3600"));
        assert!(print_savings(&rows).contains("average"));
        assert!(print_speedup(&rows).contains('x'));
    }
}
