//! Fig. 6: DRAM array-voltage dynamics and the derived timing parameters
//! (tRCD / tRAS / tRP) across supply voltages 1.10–1.35 V.

use crate::table::TextTable;
use sparkxd_circuit::{BitlineModel, DerivedTiming, Volt};

/// Derives the timing parameters at the figure's six voltages.
pub fn run() -> Vec<DerivedTiming> {
    let model = BitlineModel::lpddr3();
    [1.35, 1.30, 1.25, 1.20, 1.15, 1.10]
        .iter()
        .map(|&v| model.derive_timing(Volt(v)).expect("modelled voltage"))
        .collect()
}

/// Renders the per-voltage timing rows.
pub fn print(timings: &[DerivedTiming]) -> String {
    let mut t = TextTable::new(vec![
        "V_supply".into(),
        "tRCD [ns]".into(),
        "tRAS [ns]".into(),
        "tRP [ns]".into(),
    ]);
    for d in timings {
        t.row(vec![
            d.v_supply.to_string(),
            format!("{:.2}", d.t_rcd.0),
            format!("{:.2}", d.t_ras.0),
            format!("{:.2}", d.t_rp.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_grow_as_voltage_falls() {
        let ts = run();
        assert_eq!(ts.len(), 6);
        for w in ts.windows(2) {
            assert!(w[1].t_rcd.0 > w[0].t_rcd.0);
            assert!(w[1].t_ras.0 > w[0].t_ras.0);
            assert!(w[1].t_rp.0 > w[0].t_rp.0);
        }
        assert!(print(&ts).contains("tRCD"));
    }
}
