//! Fig. 8: error-tolerance analysis of one network (paper: N900) — the
//! accuracy-vs-BER curves of the baseline and improved models, the minimum
//! target accuracy line, and the maximum tolerable BER (`BER_th`).

use crate::experiments::common::{train_pair, TrainedPair};
use crate::scale::Scale;
use crate::table::TextTable;
use sparkxd_core::pipeline::DatasetKind;
use sparkxd_core::tolerance::{analyze_tolerance, ToleranceCurve};
use sparkxd_error::ErrorModel;

/// Result of the tolerance analysis for one network size.
#[derive(Debug, Clone)]
pub struct ToleranceAnalysis {
    /// Network size used (the scale's middle entry; N900 in the paper).
    pub neurons: usize,
    /// Error-free baseline accuracy.
    pub baseline_accuracy: f64,
    /// Minimum target accuracy (baseline − 1%).
    pub target_accuracy: f64,
    /// Baseline model's accuracy-vs-BER curve.
    pub baseline_curve: ToleranceCurve,
    /// Improved model's accuracy-vs-BER curve.
    pub improved_curve: ToleranceCurve,
    /// Maximum tolerable BER of the improved model at the target.
    pub max_tolerable_ber: Option<f64>,
}

/// Runs the Fig. 8 analysis at the scale's middle network size.
pub fn run(scale: &Scale, seed: u64) -> ToleranceAnalysis {
    let neurons = scale.network_sizes[scale.network_sizes.len() / 2];
    let TrainedPair {
        mut baseline,
        baseline_labeler,
        mut improved,
        outcome,
        test,
        ..
    } = train_pair(DatasetKind::Digits, neurons, scale, seed);
    let bers = scale.ber_points();
    let baseline_curve = analyze_tolerance(
        &mut baseline,
        &baseline_labeler,
        &test,
        &bers,
        ErrorModel::Model0,
        scale.eval_trials,
        seed ^ 0xF18,
    );
    let improved_curve = analyze_tolerance(
        &mut improved,
        &outcome.labeler,
        &test,
        &bers,
        ErrorModel::Model0,
        scale.eval_trials,
        seed ^ 0xF19,
    );
    let target_accuracy = outcome.baseline_accuracy - 0.01;
    ToleranceAnalysis {
        neurons,
        baseline_accuracy: outcome.baseline_accuracy,
        target_accuracy,
        max_tolerable_ber: improved_curve.max_tolerable_ber(target_accuracy),
        baseline_curve,
        improved_curve,
    }
}

/// Renders the two curves plus the derived `BER_th`.
pub fn print(a: &ToleranceAnalysis) -> String {
    let mut t = TextTable::new(vec![
        "BER".into(),
        "baseline+approx".into(),
        "improved+approx".into(),
    ]);
    for ((ber, base), (_, improved)) in a
        .baseline_curve
        .points()
        .iter()
        .zip(a.improved_curve.points())
    {
        t.row(vec![
            format!("{ber:.0e}"),
            format!("{:.1}%", base * 100.0),
            format!("{:.1}%", improved * 100.0),
        ]);
    }
    let mut out = format!(
        "N{} | baseline accurate-DRAM accuracy {:.1}% | min target {:.1}%\n",
        a.neurons,
        a.baseline_accuracy * 100.0,
        a.target_accuracy * 100.0
    );
    out.push_str(&t.render());
    out.push_str(&match a.max_tolerable_ber {
        Some(b) => format!("maximum tolerable BER (BER_th) = {b:.0e}\n"),
        None => "maximum tolerable BER: none met the target\n".to_string(),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_produces_full_curves() {
        let scale = Scale {
            label: "micro",
            network_sizes: vec![20],
            train_samples: 40,
            test_samples: 20,
            baseline_epochs: 1,
            epochs_per_rate: 1,
            timesteps: 30,
            eval_trials: 1,
        };
        let a = run(&scale, 2);
        assert_eq!(a.baseline_curve.points().len(), 5);
        assert_eq!(a.improved_curve.points().len(), 5);
        assert!(print(&a).contains("BER_th") || print(&a).contains("none met"));
    }
}
