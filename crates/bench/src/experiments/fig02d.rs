//! Fig. 2(d): DRAM array voltage dynamics at 1.35 V vs 1.025 V over an
//! activate→precharge cycle (the array charges more slowly and to a lower
//! level at reduced supply).

use crate::table::TextTable;
use sparkxd_circuit::{BitlineModel, Volt, Waveform};

/// Simulates the two waveforms of the figure (80 ns window, PRE at 45 ns).
pub fn run() -> (Waveform, Waveform) {
    let model = BitlineModel::lpddr3();
    (
        model.activate_precharge_waveform(Volt(1.35)),
        model.activate_precharge_waveform(Volt(1.025)),
    )
}

/// Renders both waveforms sampled every ~5 ns, as in the figure's x-axis.
pub fn print(nominal: &Waveform, reduced: &Waveform) -> String {
    let mut t = TextTable::new(vec![
        "time [ns]".into(),
        "V_array @1.350V".into(),
        "V_array @1.025V".into(),
    ]);
    for k in 0..=16 {
        let t_ns = k as f64 * 5.0;
        let ts = t_ns * 1e-9;
        t.row(vec![
            format!("{t_ns:.0}"),
            format!("{:.3}", nominal.value_at(ts)),
            format!("{:.3}", reduced.value_at(ts)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_voltage_trace_sits_below_nominal() {
        let (hi, lo) = run();
        for t_ns in [10.0, 20.0, 40.0] {
            assert!(lo.value_at(t_ns * 1e-9) < hi.value_at(t_ns * 1e-9));
        }
        // Both return near VDD/2 after precharge.
        assert!((hi.last_value() - 0.675).abs() < 0.05);
        assert!((lo.last_value() - 0.5125).abs() < 0.05);
        assert!(print(&hi, &lo).lines().count() > 10);
    }
}
