//! Shared helpers for the accuracy experiments (Figs. 1a, 8, 11).

use crate::scale::Scale;
use sparkxd_core::pipeline::DatasetKind;
use sparkxd_core::training::{FaultAwareOutcome, FaultAwareTrainer, TrainingConfig};
use sparkxd_data::Dataset;
use sparkxd_error::ErrorModel;
use sparkxd_snn::{DiehlCookNetwork, NeuronLabeler, SnnConfig};

/// A baseline model and its fault-aware-improved counterpart, trained on
/// the same data.
#[derive(Debug, Clone)]
pub struct TrainedPair {
    /// Error-free-trained baseline (`model0`).
    pub baseline: DiehlCookNetwork,
    /// Labeler of the baseline model.
    pub baseline_labeler: NeuronLabeler,
    /// Fault-aware-trained improved model (`model1`).
    pub improved: DiehlCookNetwork,
    /// Algorithm 1 outcome (curve, `BER_th`, accuracies).
    pub outcome: FaultAwareOutcome,
    /// Training set used.
    pub train: Dataset,
    /// Test set used.
    pub test: Dataset,
}

/// Algorithm 1 configuration derived from an experiment scale.
pub fn training_config(scale: &Scale, seed: u64) -> TrainingConfig {
    TrainingConfig {
        ber_schedule: scale.ber_points(),
        epochs_per_rate: scale.epochs_per_rate,
        accuracy_bound: 0.01,
        error_model: ErrorModel::Model0,
        injection_seed: seed ^ 0x5EED,
        spike_seed: seed ^ 0x51_4B,
        eval_trials: scale.eval_trials,
    }
}

/// Trains the baseline error-free, then derives the improved model with
/// Algorithm 1.
pub fn train_pair(kind: DatasetKind, neurons: usize, scale: &Scale, seed: u64) -> TrainedPair {
    let train = kind.generate(scale.train_samples, seed ^ 0xDA7A);
    let test = kind.generate(scale.test_samples, seed ^ 0x7E57);
    let config = SnnConfig::for_neurons(neurons)
        .with_timesteps(scale.timesteps)
        .with_weight_seed(seed ^ 0x11);
    let mut baseline = DiehlCookNetwork::new(config);
    for epoch in 0..scale.baseline_epochs {
        baseline.train_epoch(&train, seed ^ (0x100 + epoch as u64));
    }
    let baseline_labeler = baseline.label_neurons(&train, seed ^ 0xABCD);

    let mut improved = baseline.clone();
    let trainer = FaultAwareTrainer::new(training_config(scale, seed));
    let outcome = trainer
        .improve(&mut improved, &train, &test)
        .expect("algorithm 1 is infallible on in-memory data");

    TrainedPair {
        baseline,
        baseline_labeler,
        improved,
        outcome,
        train,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_scale() -> Scale {
        Scale {
            label: "micro",
            network_sizes: vec![20],
            train_samples: 40,
            test_samples: 20,
            baseline_epochs: 1,
            epochs_per_rate: 1,
            timesteps: 30,
            eval_trials: 1,
        }
    }

    #[test]
    fn train_pair_produces_both_models() {
        let pair = train_pair(DatasetKind::Digits, 20, &micro_scale(), 1);
        assert_eq!(pair.outcome.curve.len(), 5);
        assert_ne!(
            pair.baseline.weights().as_slice(),
            pair.improved.weights().as_slice(),
            "fault-aware training must change the weights"
        );
    }
}
