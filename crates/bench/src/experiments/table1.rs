//! Table I: DRAM energy-per-access savings over the accurate baseline at
//! each reduced voltage (paper: 3.92 / 14.29 / 24.33 / 33.59 / 42.40 %).

use crate::experiments::APPROX_VOLTAGES;
use crate::table::TextTable;
use sparkxd_circuit::Volt;
use sparkxd_dram::DramConfig;
use sparkxd_energy::EnergyModel;

/// `(voltage, saving_fraction)` pairs across the paper's operating points.
pub fn run() -> Vec<(f64, f64)> {
    let nominal = EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb()).access_energy();
    APPROX_VOLTAGES
        .iter()
        .map(|&v| {
            let reduced = EnergyModel::for_config(
                &DramConfig::approximate(Volt(v)).expect("modelled voltage"),
            )
            .access_energy();
            (v, reduced.saving_vs(&nominal))
        })
        .collect()
}

/// Renders the table's single row.
pub fn print(savings: &[(f64, f64)]) -> String {
    let mut t = TextTable::new(
        std::iter::once("type of energy saving".to_string())
            .chain(savings.iter().map(|(v, _)| format!("{v:.3}V")))
            .collect(),
    );
    t.row(
        std::iter::once("DRAM energy-per-access".to_string())
            .chain(savings.iter().map(|(_, s)| format!("{:.2}%", s * 100.0)))
            .collect(),
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_match_paper_row_within_tolerance() {
        let paper = [0.0392, 0.1429, 0.2433, 0.3359, 0.4240];
        let ours = run();
        for ((_, s), p) in ours.iter().zip(paper) {
            assert!(
                (s - p).abs() < 0.01,
                "saving {s:.4} deviates from paper {p:.4} by more than 1pp"
            );
        }
        assert!(print(&ours).contains("energy-per-access"));
    }
}
