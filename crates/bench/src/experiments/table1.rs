//! Table I: DRAM energy-per-access savings over the accurate baseline at
//! each reduced voltage (paper: 3.92 / 14.29 / 24.33 / 33.59 / 42.40 %),
//! plus the storage-format analogue: per-inference N400 pass savings when
//! the weight image is packed to int8/int16 instead of FP32 (voltage ×
//! traffic combined).

use crate::experiments::APPROX_VOLTAGES;
use crate::table::TextTable;
use sparkxd_circuit::Volt;
use sparkxd_core::energy_eval::EnergyEvaluation;
use sparkxd_core::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
use sparkxd_core::trace_gen::columns_for_words;
use sparkxd_dram::DramConfig;
use sparkxd_energy::EnergyModel;
use sparkxd_error::{BerCurve, ErrorProfile, WeakCellMap};
use sparkxd_snn::WeightPrecision;

/// `(voltage, saving_fraction)` pairs across the paper's operating points.
pub fn run() -> Vec<(f64, f64)> {
    let nominal = EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb()).access_energy();
    APPROX_VOLTAGES
        .iter()
        .map(|&v| {
            let reduced = EnergyModel::for_config(
                &DramConfig::approximate(Volt(v)).expect("modelled voltage"),
            )
            .access_energy();
            (v, reduced.saving_vs(&nominal))
        })
        .collect()
}

/// One storage format's per-inference pass savings across the ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageRow {
    /// Storage format of the DRAM weight image.
    pub precision: WeightPrecision,
    /// `(voltage, saving_fraction)` of one N400 image pass vs the accurate
    /// FP32 baseline pass at nominal voltage.
    pub savings: Vec<(f64, f64)>,
}

/// The quantised-vs-FP32 analogue of Table I: one N400 weight-image pass
/// per `(storage format, voltage)` cell, priced by trace replay through
/// the error-aware mapping, against the accurate-DRAM FP32 baseline pass.
/// Packing shrinks the column count (4×/2×), voltage shrinks the
/// per-access energy; the cell shows the combined effect.
pub fn run_storage(device_seed: u64) -> Vec<StorageRow> {
    const N_WORDS: usize = 784 * 400;
    let baseline_config = DramConfig::lpddr3_1600_4gb();
    let ber_curve = BerCurve::paper_default();
    let weak_cells = WeakCellMap::generate(&baseline_config.geometry, device_seed);
    let flat = ErrorProfile::uniform(0.0, baseline_config.geometry.total_subarrays());
    let baseline_columns = columns_for_words(
        N_WORDS,
        baseline_config.geometry.col_bytes,
        WeightPrecision::Fp32,
    );
    let baseline_map = BaselineMapping
        .map(baseline_columns, &baseline_config.geometry, &flat, f64::MAX)
        .expect("device holds the N400 image");
    let baseline_mj = EnergyEvaluation::evaluate(&baseline_config, &baseline_map).total_mj();

    [
        WeightPrecision::Fp32,
        WeightPrecision::Int16,
        WeightPrecision::Int8,
    ]
    .into_iter()
    .map(|precision| {
        let savings = APPROX_VOLTAGES
            .iter()
            .map(|&v| {
                let config = DramConfig::approximate(Volt(v)).expect("modelled voltage");
                let ber = ber_curve.ber_at(Volt(v));
                let profile = weak_cells.profile(ber);
                let n_columns = columns_for_words(N_WORDS, config.geometry.col_bytes, precision);
                let mapping = SparkXdMapping
                    .map(n_columns, &config.geometry, &profile, ber)
                    .expect("device holds the packed N400 image")
                    .with_precision(precision);
                let mj = EnergyEvaluation::evaluate(&config, &mapping).total_mj();
                (v, 1.0 - mj / baseline_mj)
            })
            .collect();
        StorageRow { precision, savings }
    })
    .collect()
}

/// Renders the table's single row.
pub fn print(savings: &[(f64, f64)]) -> String {
    let mut t = TextTable::new(
        std::iter::once("type of energy saving".to_string())
            .chain(savings.iter().map(|(v, _)| format!("{v:.3}V")))
            .collect(),
    );
    t.row(
        std::iter::once("DRAM energy-per-access".to_string())
            .chain(savings.iter().map(|(_, s)| format!("{:.2}%", s * 100.0)))
            .collect(),
    );
    t.render()
}

/// Renders the storage-format rows (one per precision).
pub fn print_storage(rows: &[StorageRow]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut t = TextTable::new(
        std::iter::once("N400 pass saving vs accurate FP32".to_string())
            .chain(first.savings.iter().map(|(v, _)| format!("{v:.3}V")))
            .collect(),
    );
    for row in rows {
        t.row(
            std::iter::once(row.precision.label().to_string())
                .chain(
                    row.savings
                        .iter()
                        .map(|(_, s)| format!("{:.2}%", s * 100.0)),
                )
                .collect(),
        );
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_rows_compound_the_voltage_saving() {
        let rows = run_storage(11);
        assert_eq!(rows.len(), 3);
        let by_precision = |p: WeightPrecision| {
            rows.iter()
                .find(|r| r.precision == p)
                .expect("all three formats present")
        };
        let fp32 = by_precision(WeightPrecision::Fp32);
        let int16 = by_precision(WeightPrecision::Int16);
        let int8 = by_precision(WeightPrecision::Int8);
        for ((v, s32), ((_, s16), (_, s8))) in fp32
            .savings
            .iter()
            .zip(int16.savings.iter().zip(&int8.savings))
        {
            // Narrower image, strictly larger saving, at every voltage.
            assert!(s8 > s16 && s16 > s32, "ordering broken at {v}V");
            assert!((0.0..1.0).contains(s8), "saving out of range at {v}V");
            // Int8 streams a quarter of the columns, so its pass cost is
            // about a quarter of the FP32 pass at the same voltage:
            // 1 - s8 ≈ (1 - s32) / 4.
            assert!(
                ((1.0 - s8) - (1.0 - s32) / 4.0).abs() < 0.05,
                "int8 pass cost at {v}V not ~quarter of FP32: s8={s8}, s32={s32}"
            );
        }
        let rendered = print_storage(&rows);
        assert!(rendered.contains("int8") && rendered.contains("fp32"));
    }

    #[test]
    fn savings_match_paper_row_within_tolerance() {
        let paper = [0.0392, 0.1429, 0.2433, 0.3359, 0.4240];
        let ours = run();
        for ((_, s), p) in ours.iter().zip(paper) {
            assert!(
                (s - p).abs() < 0.01,
                "saving {s:.4} deviates from paper {p:.4} by more than 1pp"
            );
        }
        assert!(print(&ours).contains("energy-per-access"));
    }
}
