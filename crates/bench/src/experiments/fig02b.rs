//! Fig. 2(b): DRAM access energy per row-buffer condition at 1.35 V vs
//! 1.025 V (hit < miss < conflict; 31–42% saving per access).

use crate::table::TextTable;
use sparkxd_circuit::Volt;
use sparkxd_dram::DramConfig;
use sparkxd_energy::{AccessEnergy, EnergyModel};

/// Per-access energies at the two voltages of the figure.
pub fn run() -> (AccessEnergy, AccessEnergy) {
    let nominal = EnergyModel::for_config(&DramConfig::lpddr3_1600_4gb()).access_energy();
    let reduced = EnergyModel::for_config(
        &DramConfig::approximate(Volt(1.025)).expect("1.025 V is modelled"),
    )
    .access_energy();
    (nominal, reduced)
}

/// Renders the grouped-bar rows of the figure.
pub fn print(nominal: &AccessEnergy, reduced: &AccessEnergy) -> String {
    let mut t = TextTable::new(vec![
        "condition".into(),
        "1.350V [nJ]".into(),
        "1.025V [nJ]".into(),
        "saving".into(),
    ]);
    for (name, hi, lo) in [
        ("hit", nominal.hit_nj, reduced.hit_nj),
        ("miss", nominal.miss_nj, reduced.miss_nj),
        ("conflict", nominal.conflict_nj, reduced.conflict_nj),
    ] {
        t.row(vec![
            name.into(),
            format!("{hi:.2}"),
            format!("{lo:.2}"),
            format!("{:.1}%", (1.0 - lo / hi) * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_in_paper_band() {
        let (hi, lo) = run();
        for (a, b) in [
            (hi.hit_nj, lo.hit_nj),
            (hi.miss_nj, lo.miss_nj),
            (hi.conflict_nj, lo.conflict_nj),
        ] {
            let saving = 1.0 - b / a;
            // Paper: 31-42% energy saving per access across conditions.
            assert!((0.30..0.46).contains(&saving), "saving {saving}");
        }
        assert!(print(&hi, &lo).contains("conflict"));
    }

    #[test]
    fn hit_cheapest_conflict_most_expensive() {
        let (hi, _) = run();
        assert!(hi.hit_nj < hi.miss_nj && hi.miss_nj < hi.conflict_nj);
    }
}
