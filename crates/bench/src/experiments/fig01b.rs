//! Fig. 1(b): energy breakdown of SNN processing on TrueNorth, PEASE and
//! SNNAP — memory accesses dominate (≈50–75%).

use crate::table::TextTable;
use sparkxd_energy::{PlatformEnergyBreakdown, PlatformProfile, SnnWorkload};

/// Computes the three platform breakdowns for a reference fully-connected
/// inference workload (the paper's motivating scenario).
pub fn run() -> Vec<PlatformEnergyBreakdown> {
    let workload = SnnWorkload::fully_connected(784, 900, 100, 0.05);
    PlatformProfile::paper_platforms()
        .iter()
        .map(|p| p.breakdown(&workload))
        .collect()
}

/// Renders the stacked-percentage rows of the figure.
pub fn print(breakdowns: &[PlatformEnergyBreakdown]) -> String {
    let mut t = TextTable::new(vec![
        "platform".into(),
        "computation".into(),
        "communication".into(),
        "memory accesses".into(),
    ]);
    for b in breakdowns {
        t.row(vec![
            b.platform.clone(),
            format!("{:.0}%", b.compute_fraction() * 100.0),
            format!("{:.0}%", b.communication_fraction() * 100.0),
            format!("{:.0}%", b.memory_fraction() * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_share_in_paper_band_for_all_platforms() {
        let b = run();
        assert_eq!(b.len(), 3);
        for x in &b {
            let frac = x.memory_fraction();
            assert!((0.50..=0.80).contains(&frac), "{}: {frac}", x.platform);
        }
        assert!(print(&b).contains("TrueNorth"));
    }
}
