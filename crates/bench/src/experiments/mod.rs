//! One module per paper table/figure (see `DESIGN.md` §5 for the index).

pub mod common;
pub mod fig01a;
pub mod fig01b;
pub mod fig02a;
pub mod fig02b;
pub mod fig02c;
pub mod fig02d;
pub mod fig06;
pub mod fig08;
pub mod fig11;
pub mod fig12;
pub mod table1;

/// The paper's approximate-DRAM operating voltages (Fig. 12 / Table I).
pub const APPROX_VOLTAGES: [f64; 5] = [1.325, 1.250, 1.175, 1.100, 1.025];

/// The paper's nominal (accurate DRAM) voltage.
pub const NOMINAL_VOLTAGE: f64 = 1.350;
