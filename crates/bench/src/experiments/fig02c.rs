//! Fig. 2(c): bit error rate versus DRAM supply voltage.

use crate::table::TextTable;
use sparkxd_circuit::Volt;
use sparkxd_error::BerCurve;

/// Sweeps the BER curve over the figure's voltage range (1.025–1.35 V).
pub fn run() -> Vec<(f64, f64)> {
    let curve = BerCurve::paper_default();
    (0..=13)
        .map(|k| {
            // Integer millivolts, so the endpoint is exactly 1.35 V.
            let v = (1025 + k * 25) as f64 / 1000.0;
            (v, curve.ber_at(Volt(v)))
        })
        .collect()
}

/// Renders the curve as voltage/BER rows.
pub fn print(points: &[(f64, f64)]) -> String {
    let mut t = TextTable::new(vec!["V_supply".into(), "BER".into()]);
    for (v, ber) in points {
        t.row(vec![
            format!("{v:.3}V"),
            if *ber == 0.0 {
                "0".into()
            } else {
                format!("{ber:.2e}")
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_monotone_and_anchored() {
        let pts = run();
        assert!(pts.len() > 10);
        // Monotone non-increasing BER as voltage rises.
        for w in pts.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        // Error-free at nominal, substantial at the floor voltage.
        assert_eq!(pts.last().unwrap().1, 0.0);
        assert!(pts[0].1 >= 1e-4);
        assert!(print(&pts).contains("1.025V"));
    }
}
