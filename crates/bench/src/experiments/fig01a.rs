//! Fig. 1(a): accuracy of small vs large SNN models.
//!
//! Paper: a 200-neuron (~1 MB) SNN reaches ~75% on MNIST while a
//! 9800-neuron (~200 MB) model reaches ~92% — motivating large models and
//! hence heavy DRAM traffic. We reproduce the *shape* (bigger is better)
//! across the scale's network sizes.

use crate::scale::Scale;
use crate::table::TextTable;
use sparkxd_core::pipeline::DatasetKind;
use sparkxd_snn::{DiehlCookNetwork, SnnConfig};

/// One size's result.
#[derive(Debug, Clone, PartialEq)]
pub struct SizePoint {
    /// Excitatory neurons.
    pub neurons: usize,
    /// Model size in megabytes (FP32 weights).
    pub model_mb: f64,
    /// Test accuracy.
    pub accuracy: f64,
}

/// Trains one error-free model per network size and measures accuracy.
pub fn run(scale: &Scale, seed: u64) -> Vec<SizePoint> {
    let train = DatasetKind::Digits.generate(scale.train_samples, seed ^ 0xDA7A);
    let test = DatasetKind::Digits.generate(scale.test_samples, seed ^ 0x7E57);
    scale
        .network_sizes
        .iter()
        .map(|&neurons| {
            let config = SnnConfig::for_neurons(neurons)
                .with_timesteps(scale.timesteps)
                .with_weight_seed(seed ^ 0x11);
            let mut net = DiehlCookNetwork::new(config);
            for epoch in 0..scale.baseline_epochs {
                net.train_epoch(&train, seed ^ (0x100 + epoch as u64));
            }
            let labeler = net.label_neurons(&train, seed ^ 0xABCD);
            let accuracy = net.evaluate(&test, &labeler, seed ^ 0xEF01);
            SizePoint {
                neurons,
                model_mb: (784 * neurons * 4) as f64 / 1e6,
                accuracy,
            }
        })
        .collect()
}

/// Renders the paper-style rows.
pub fn print(points: &[SizePoint]) -> String {
    let mut t = TextTable::new(vec![
        "neurons".into(),
        "model size".into(),
        "accuracy".into(),
    ]);
    for p in points {
        t.row(vec![
            format!("{}", p.neurons),
            format!("{:.1} MB", p.model_mb),
            format!("{:.1}%", p.accuracy * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_models_do_not_get_worse_at_micro_scale() {
        let scale = Scale {
            label: "micro",
            network_sizes: vec![10, 60],
            train_samples: 100,
            test_samples: 50,
            baseline_epochs: 2,
            epochs_per_rate: 1,
            timesteps: 40,
            eval_trials: 1,
        };
        let pts = run(&scale, 3);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].accuracy >= pts[0].accuracy - 0.05,
            "large ({:.2}) must not trail small ({:.2}) meaningfully",
            pts[1].accuracy,
            pts[0].accuracy
        );
        assert!(print(&pts).contains("MB"));
    }
}
