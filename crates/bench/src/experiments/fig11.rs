//! Fig. 11: accuracy of the baseline SNN with accurate DRAM, the baseline
//! SNN with approximate DRAM, and the improved SNN with approximate DRAM,
//! across BER values, network sizes and both datasets.

use crate::experiments::common::{train_pair, TrainedPair};
use crate::scale::Scale;
use crate::table::TextTable;
use sparkxd_core::pipeline::DatasetKind;
use sparkxd_core::tolerance::{analyze_tolerance, analyze_tolerance_quantized, ToleranceCurve};
use sparkxd_error::ErrorModel;
use sparkxd_snn::WeightPrecision;

/// One panel of the figure: a (dataset, size) pair's three configurations.
#[derive(Debug, Clone)]
pub struct Fig11Panel {
    /// Dataset of this panel.
    pub dataset: DatasetKind,
    /// Network size of this panel.
    pub neurons: usize,
    /// Baseline SNN with accurate DRAM (flat reference line).
    pub baseline_accurate: f64,
    /// Baseline SNN with approximate DRAM across BERs.
    pub baseline_curve: ToleranceCurve,
    /// Improved SNN with approximate DRAM across BERs.
    pub improved_curve: ToleranceCurve,
    /// Improved SNN streamed as a packed int8 DRAM image across BERs —
    /// flips hit the 8-bit codes at the native word width.
    pub improved_int8_curve: ToleranceCurve,
    /// Whether the improved model stayed within 1% of the baseline at
    /// every measured BER (the paper's headline accuracy claim).
    pub within_one_percent_everywhere: bool,
}

/// Runs every panel of the figure at the given scale.
pub fn run(scale: &Scale, seed: u64) -> Vec<Fig11Panel> {
    let mut panels = Vec::new();
    for kind in [DatasetKind::Digits, DatasetKind::Fashion] {
        for &neurons in &scale.network_sizes {
            let TrainedPair {
                mut baseline,
                baseline_labeler,
                mut improved,
                outcome,
                test,
                ..
            } = train_pair(kind, neurons, scale, seed);
            let bers = scale.ber_points();
            let baseline_curve = analyze_tolerance(
                &mut baseline,
                &baseline_labeler,
                &test,
                &bers,
                ErrorModel::Model0,
                scale.eval_trials,
                seed ^ 0x1101,
            );
            let improved_curve = analyze_tolerance(
                &mut improved,
                &outcome.labeler,
                &test,
                &bers,
                ErrorModel::Model0,
                scale.eval_trials,
                seed ^ 0x1102,
            );
            let improved_int8_curve = analyze_tolerance_quantized(
                &mut improved,
                &outcome.labeler,
                &test,
                &bers,
                ErrorModel::Model0,
                scale.eval_trials,
                seed ^ 0x1103,
                WeightPrecision::Int8,
            );
            let target = outcome.baseline_accuracy - 0.01;
            let within = improved_curve
                .points()
                .iter()
                .all(|(_, acc)| *acc >= target);
            panels.push(Fig11Panel {
                dataset: kind,
                neurons,
                baseline_accurate: outcome.baseline_accuracy,
                baseline_curve,
                improved_curve,
                improved_int8_curve,
                within_one_percent_everywhere: within,
            });
        }
    }
    panels
}

/// Renders one panel in the figure's series layout.
pub fn print_panel(p: &Fig11Panel) -> String {
    let mut out = format!(
        "[{} N{}] baseline accurate DRAM: {:.1}%\n",
        p.dataset.label(),
        p.neurons,
        p.baseline_accurate * 100.0
    );
    let mut t = TextTable::new(vec![
        "BER".into(),
        "baseline+approx".into(),
        "improved+approx (SparkXD)".into(),
        "improved+approx int8".into(),
    ]);
    for (((ber, b), (_, i)), (_, q)) in p
        .baseline_curve
        .points()
        .iter()
        .zip(p.improved_curve.points())
        .zip(p.improved_int8_curve.points())
    {
        t.row(vec![
            format!("{ber:.0e}"),
            format!("{:.1}%", b * 100.0),
            format!("{:.1}%", i * 100.0),
            format!("{:.1}%", q * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "improved model within 1% of accurate baseline everywhere: {}\n",
        if p.within_one_percent_everywhere {
            "yes"
        } else {
            "no"
        }
    ));
    out
}

/// Renders all panels.
pub fn print(panels: &[Fig11Panel]) -> String {
    panels
        .iter()
        .map(print_panel)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_run_produces_all_panels() {
        let scale = Scale {
            label: "micro",
            network_sizes: vec![20],
            train_samples: 40,
            test_samples: 20,
            baseline_epochs: 1,
            epochs_per_rate: 1,
            timesteps: 30,
            eval_trials: 1,
        };
        let panels = run(&scale, 4);
        assert_eq!(panels.len(), 2); // 1 size x 2 datasets
        assert_eq!(panels[0].dataset, DatasetKind::Digits);
        assert_eq!(panels[1].dataset, DatasetKind::Fashion);
        for p in &panels {
            assert_eq!(
                p.improved_int8_curve.points().len(),
                p.improved_curve.points().len()
            );
        }
        assert!(print(&panels).contains("SparkXD"));
        assert!(print(&panels).contains("int8"));
    }
}
