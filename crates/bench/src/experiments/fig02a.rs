//! Fig. 2(a): DRAM energy vs network connectivity — approximate DRAM
//! composes with weight pruning (a 4900-neuron network in the paper),
//! normalised to the accurate DRAM at 100% connectivity.

use crate::table::TextTable;
use sparkxd_circuit::Volt;
use sparkxd_core::energy_eval::EnergyEvaluation;
use sparkxd_core::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
use sparkxd_core::trace_gen::columns_for_words;
use sparkxd_dram::DramConfig;
use sparkxd_error::{BerCurve, ErrorProfile, WeakCellMap};
use sparkxd_snn::prune::stored_weights_at_connectivity;
use sparkxd_snn::WeightPrecision;

/// One connectivity level's normalised energies.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityPoint {
    /// Fraction of synapses kept.
    pub connectivity: f64,
    /// Accurate DRAM (1.35 V) energy, normalised to 100% connectivity.
    pub accurate: f64,
    /// Approximate DRAM (1.025 V, SparkXD mapping) energy, normalised the
    /// same way.
    pub approximate: f64,
}

/// The paper's 4900-neuron network.
pub const NEURONS: usize = 4900;

/// Sweeps connectivity 100%→50% at the two voltages of the figure.
pub fn run(device_seed: u64) -> Vec<ConnectivityPoint> {
    let total_weights = 784 * NEURONS;
    let accurate_config = DramConfig::lpddr3_1600_4gb();
    let approx_config = DramConfig::approximate(Volt(1.025)).expect("modelled voltage");
    let ber = BerCurve::paper_default().ber_at(Volt(1.025));
    let weak_cells = WeakCellMap::generate(&accurate_config.geometry, device_seed);
    let profile = weak_cells.profile(ber);
    let flat = ErrorProfile::uniform(0.0, accurate_config.geometry.total_subarrays());

    let energy_at = |connectivity: f64| -> (f64, f64) {
        let stored = stored_weights_at_connectivity(total_weights, connectivity);
        let n_columns = columns_for_words(
            stored,
            accurate_config.geometry.col_bytes,
            WeightPrecision::Fp32,
        );
        let acc_map = BaselineMapping
            .map(n_columns, &accurate_config.geometry, &flat, f64::MAX)
            .expect("fits");
        let app_map = SparkXdMapping
            .map(n_columns, &approx_config.geometry, &profile, ber)
            .expect("fits");
        (
            EnergyEvaluation::evaluate(&accurate_config, &acc_map).total_mj(),
            EnergyEvaluation::evaluate(&approx_config, &app_map).total_mj(),
        )
    };

    let (norm, _) = energy_at(1.0);
    [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
        .iter()
        .map(|&connectivity| {
            let (acc, app) = energy_at(connectivity);
            ConnectivityPoint {
                connectivity,
                accurate: acc / norm,
                approximate: app / norm,
            }
        })
        .collect()
}

/// Renders the figure's two bar series.
pub fn print(points: &[ConnectivityPoint]) -> String {
    let mut t = TextTable::new(vec![
        "connectivity".into(),
        "accurate DRAM (1.35V)".into(),
        "approximate DRAM (1.025V)".into(),
    ]);
    for p in points {
        t.row(vec![
            format!("{:.0}%", p.connectivity * 100.0),
            format!("{:.3}", p.accurate),
            format!("{:.3}", p.approximate),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_and_voltage_compose() {
        let pts = run(5);
        assert_eq!(pts.len(), 6);
        // 100% accurate is the normalisation reference.
        assert!((pts[0].accurate - 1.0).abs() < 1e-9);
        // Approximate is cheaper than accurate at every connectivity.
        for p in &pts {
            assert!(p.approximate < p.accurate);
        }
        // Energy falls with connectivity for both series.
        for w in pts.windows(2) {
            assert!(w[1].accurate < w[0].accurate);
            assert!(w[1].approximate < w[0].approximate);
        }
        // Combined: 50% connectivity at 1.025 V ≈ 0.5 * 0.6 ≈ 0.3.
        let last = pts.last().unwrap();
        assert!(
            (0.22..0.40).contains(&last.approximate),
            "{}",
            last.approximate
        );
        assert!(print(&pts).contains("50%"));
    }
}
