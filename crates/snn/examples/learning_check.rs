//! Training-quality check: trains the unsupervised network on the
//! synthetic digits, reports accuracy across sizes, and renders one
//! learned receptive field as ASCII art.
//!
//! ```sh
//! cargo run --release -p sparkxd-snn --example learning_check
//! ```

fn main() {
    use sparkxd_data::{Image, SynthDigits, SyntheticSource};
    use sparkxd_snn::{DiehlCookNetwork, SnnConfig};

    let train = SynthDigits.generate(600, 1);
    let test = SynthDigits.generate(200, 2);
    for neurons in [50usize, 100] {
        let t0 = std::time::Instant::now();
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(neurons));
        for epoch in 0..6 {
            net.train_epoch(&train, 100 + epoch);
        }
        let labeler = net.label_neurons(&train, 7);
        let accuracy = net.evaluate(&test, &labeler, 8);
        println!(
            "N{neurons}: accuracy {:.1}% (trained in {:.1?})",
            accuracy * 100.0,
            t0.elapsed()
        );
        if neurons == 100 {
            // Show what neuron 0 learned.
            let w = net.weights();
            let max = (0..784).map(|i| w.raw(i, 0)).fold(0.0f32, f32::max);
            let pixels: Vec<f32> = (0..784).map(|i| w.raw(i, 0) / max.max(1e-6)).collect();
            println!(
                "receptive field of neuron 0 (assigned {:?}):\n{}",
                labeler.assignments()[0],
                Image::from_pixels(pixels).to_ascii()
            );
        }
    }
}
