//! The unsupervised SNN architecture of paper Fig. 4(a): a Poisson-coded
//! input layer fully connected to an excitatory LIF layer with lateral
//! inhibition (winner-take-all competition) and STDP learning.
//!
//! The execution core is split into two halves so inference can run on many
//! threads at once:
//!
//! * [`NetworkParams`] — everything that is *frozen* during inference:
//!   configuration, the synaptic [`StoredWeights`] (the DRAM image), the
//!   derived [`EffectivePlane`] (the read-side view, rebuilt once per
//!   corruption instance) and the adaptive thresholds. Shared by reference
//!   across worker threads.
//! * [`RunState`] / [`BatchState`] — per-run scratch (membrane potentials,
//!   refractory timers, drive/fired buffers). Each worker owns one and
//!   reuses it across samples.
//!
//! Two inference entry points exist: [`NetworkParams::run_sample`], the
//! scalar reference path that reads [`StoredWeights`] through the synapse
//! rule on every access (exactly the pre-split behaviour), and
//! [`NetworkParams::run_batch`], which presents B samples together and
//! streams each [`EffectivePlane`] row once per batch into a
//! `[B × n_neurons]` drive matrix, swept in cache-sized neuron tiles
//! (`SPARKXD_TILE`) so the resident working set stays L1-sized at the
//! paper's N3600. Per-sample RNG streams keep the two **bit-identical**
//! for any batch size and tile width.
//!
//! Both paths execute their hot inner loops (drive accumulation, LIF lane
//! integration, the inhibition sweep) through the runtime-dispatched
//! [`Kernel`](crate::kernels::Kernel) layer — portable scalar or x86_64
//! AVX2, selected by `SPARKXD_KERNEL` / [`BatchState::with_kernel`] /
//! [`RunState::with_kernel`] — whose lanes compute the exact scalar IEEE
//! sequence, so the kernel choice never changes results either.
//!
//! [`DiehlCookNetwork`] composes the parameters with the STDP learning
//! state and keeps the training-facing API (`train_epoch`, `run_sample`
//! with `learn = true`); its inference entry points (`evaluate`,
//! `label_neurons`) delegate to the
//! [`BatchEvaluator`](crate::engine::BatchEvaluator).

use crate::coding::PoissonEncoder;
use crate::engine::{BatchEvaluator, IntraChoice};
use crate::eval::NeuronLabeler;
use crate::kernels::{Kernel, KernelChoice, LifLanes};
use crate::neuron::{LifConfig, LifState};
use crate::stdp::{StdpConfig, StdpState};
use crate::synapse::{EffectivePlane, StoredWeights};
use crate::SnnError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd_data::Dataset;
use std::ops::Range;

/// Complete configuration of a [`DiehlCookNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnnConfig {
    /// Number of input lines (pixels); 784 for 28×28 images.
    pub n_inputs: usize,
    /// Number of excitatory neurons (the paper's N400…N3600).
    pub n_neurons: usize,
    /// Timesteps each sample is presented for.
    pub timesteps: usize,
    /// Simulation timestep (ms).
    pub dt_ms: f32,
    /// Neuron parameters.
    pub lif: LifConfig,
    /// Plasticity parameters.
    pub stdp: StdpConfig,
    /// Input spike encoder.
    pub encoder: PoissonEncoder,
    /// Lateral inhibition strength (mV per competing spike).
    pub inhibition_mv: f32,
    /// Per-neuron input-weight normalisation target.
    pub norm_target: f32,
    /// Maximum synaptic weight.
    pub w_max: f32,
    /// Clamp weight reads to `[0, w_max]` (bounded hardware synapse).
    /// Disabling exposes raw FP32 corruption (paper's MSB observation).
    pub clamp_reads: bool,
    /// Hard winner-take-all: at most one neuron (the one with the largest
    /// threshold margin) fires per timestep, sharpening specialisation.
    pub hard_wta: bool,
    /// Seed for weight initialisation.
    pub weight_seed: u64,
}

impl SnnConfig {
    /// Configuration for a network with `n_neurons` excitatory neurons and
    /// 784 inputs, with Diehl & Cook style defaults.
    pub fn for_neurons(n_neurons: usize) -> Self {
        Self {
            n_inputs: sparkxd_data::IMAGE_PIXELS,
            n_neurons,
            timesteps: 100,
            dt_ms: 1.0,
            lif: LifConfig::excitatory(),
            stdp: StdpConfig::standard(),
            encoder: PoissonEncoder::standard(),
            inhibition_mv: 50.0,
            norm_target: 78.0,
            w_max: 1.0,
            clamp_reads: true,
            hard_wta: false,
            weight_seed: 0xD1EC,
        }
    }

    /// Sets the presentation window (builder style).
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        self.timesteps = timesteps;
        self
    }

    /// Sets the weight-initialisation seed (builder style).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// Enables or disables clamped weight reads (builder style).
    pub fn with_clamp_reads(mut self, clamp: bool) -> Self {
        self.clamp_reads = clamp;
        self
    }
}

/// The immutable half of a network during inference: configuration,
/// synaptic storage plus its derived read plane, and the adaptive
/// thresholds learned during training.
///
/// Inference is a pure function of `(params, sample, rng)` — see
/// [`NetworkParams::run_sample`] / [`NetworkParams::run_batch`] — so a
/// `&NetworkParams` can be shared by any number of worker threads, each
/// driving its own scratch.
///
/// Every mutation path ([`set_weights`](Self::set_weights),
/// [`swap_weights_rows`](Self::swap_weights_rows),
/// [`with_weights_mut`](Self::with_weights_mut)) restores the invariant
/// that the plane is a fresh derivation of the store, so readers never see
/// a stale plane.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkParams {
    config: SnnConfig,
    weights: StoredWeights,
    plane: EffectivePlane,
    thetas: Vec<f32>,
}

impl NetworkParams {
    /// Fresh parameters with randomly initialised weights and zeroed
    /// adaptive thresholds.
    pub fn new(config: SnnConfig) -> Self {
        let weights = StoredWeights::random(
            config.n_inputs,
            config.n_neurons,
            config.w_max,
            config.weight_seed,
        );
        let plane = EffectivePlane::build(&weights, config.clamp_reads);
        let thetas = vec![0.0; config.n_neurons];
        Self {
            config,
            weights,
            plane,
            thetas,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.config
    }

    /// The stored synaptic weights (the data SparkXD maps into DRAM).
    pub fn weights(&self) -> &StoredWeights {
        &self.weights
    }

    /// The derived read-side plane the batched hot path consumes.
    pub fn effective_plane(&self) -> &EffectivePlane {
        &self.plane
    }

    /// Replaces the weight matrix (e.g. with a corrupted copy), rebuilding
    /// the whole effective plane.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the configuration.
    pub fn set_weights(&mut self, weights: StoredWeights) {
        assert_eq!(weights.inputs(), self.config.n_inputs, "input count");
        assert_eq!(weights.neurons(), self.config.n_neurons, "neuron count");
        self.weights = weights;
        self.rebuild_plane();
    }

    /// Swaps the stored image with `other` and re-derives only the given
    /// plane rows — the corrupt-and-swap fast path: the caller guarantees
    /// the two images differ in no rows other than `rows` (extra rows are
    /// merely wasted work). Swapping back with the same row set restores
    /// both the store and the plane exactly.
    ///
    /// # Panics
    ///
    /// Panics if `other`'s shape does not match the configuration.
    pub fn swap_weights_rows(&mut self, other: &mut StoredWeights, rows: &[usize]) {
        assert_eq!(other.inputs(), self.config.n_inputs, "input count");
        assert_eq!(other.neurons(), self.config.n_neurons, "neuron count");
        std::mem::swap(&mut self.weights, other);
        self.plane.rebuild_rows(&self.weights, rows);
        debug_assert!(
            self.plane.is_consistent_with(&self.weights),
            "swap_weights_rows caller listed too few touched rows"
        );
    }

    /// Runs `mutate` on the raw DRAM image (e.g. an in-place error
    /// injection), then rebuilds the whole effective plane.
    pub fn with_weights_mut<R>(&mut self, mutate: impl FnOnce(&mut StoredWeights) -> R) -> R {
        let out = mutate(&mut self.weights);
        self.rebuild_plane();
        out
    }

    /// Re-derives the full plane from the store (training mutates storage
    /// directly and calls this once per sample/epoch boundary).
    fn rebuild_plane(&mut self) {
        self.plane = EffectivePlane::build(&self.weights, self.config.clamp_reads);
    }

    /// Adaptive-threshold values per neuron.
    pub fn thetas(&self) -> &[f32] {
        &self.thetas
    }

    /// Presents one image for `config.timesteps` steps without learning.
    ///
    /// This is the scalar reference path: it reads the stored weights
    /// through the synapse rule on every access. `state` is reset at
    /// entry, so any (correctly sized) scratch can be reused across
    /// samples and threads; `self` is untouched. Returns the per-neuron
    /// spike counts.
    ///
    /// # Errors
    ///
    /// [`SnnError::InputSizeMismatch`] if `pixels` does not match the
    /// configured input size.
    pub fn run_sample(
        &self,
        state: &mut RunState,
        pixels: &[f32],
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, SnnError> {
        if pixels.len() != self.config.n_inputs {
            return Err(SnnError::InputSizeMismatch {
                provided: pixels.len(),
                expected: self.config.n_inputs,
            });
        }
        let mut counts = vec![0u32; self.config.n_neurons];
        state.begin_sample(&self.config, &self.thetas);
        let kernel = state.kernel.unwrap_or_else(crate::engine::kernel);
        for _ in 0..self.config.timesteps {
            self.config
                .encoder
                .encode_step(pixels, rng, &mut state.active);
            state.accumulate_drive(&self.config, &self.weights, kernel);
            state.resolve_firing(&self.config, &mut counts);
            state.apply_inhibition(&self.config);
        }
        Ok(counts)
    }

    /// Presents a chunk of `samples` together for `config.timesteps`
    /// steps without learning, one RNG stream per sample.
    ///
    /// Drive accumulation is batched **and neuron-tiled**: each timestep
    /// records a k-way merge of the samples' sorted active lists once
    /// (each distinct active row in ascending order, with the batch
    /// members that spiked on it; rows whose effective fan-out is all
    /// zero are skipped), then sweeps the `[B × n_neurons]` drive matrix
    /// in neuron tiles. Within a tile, every merged row's tile slice is
    /// streamed into the `[B × tile]` drive tile and the tile's membrane
    /// lanes are integrated immediately while the drive is hot — so the
    /// resident working set is the tile, not the full slab, and N3600
    /// runs as cache-friendly as N400. Firing resolution and lateral
    /// inhibition then run per sample over the full population (hard WTA
    /// and inhibition strength are global decisions).
    ///
    /// The tile width comes from [`BatchState::with_tile`] if pinned, else
    /// the `SPARKXD_TILE` override / [`DEFAULT_TILE`](crate::engine::DEFAULT_TILE)
    /// (via [`tile_width`](crate::engine::tile_width)), clamped into
    /// `[1, n_neurons]`; any width ≥ `n_neurons` is exactly the untiled
    /// single-sweep path.
    ///
    /// The per-timestep tile sweep can additionally fan out across the
    /// persistent [`WorkerPool`](crate::engine::WorkerPool)
    /// ([`BatchState::with_intra`] / `SPARKXD_INTRA`): contiguous tile
    /// ranges are assigned to range-jobs that write disjoint neuron
    /// lanes of every `[B × n]` slab, with a barrier before the
    /// (unchanged, global-per-sample) firing-commit/inhibition pass.
    /// The sweep stays serial when fewer than two tiles exist or the
    /// global thread budget is exhausted.
    ///
    /// Because sample `b` only ever consumes `rngs[b]`, per-sample
    /// accumulation visits rows in the same ascending order as the scalar
    /// path within every tile, and each membrane lane's arithmetic is
    /// independent of the tile partition, the returned spike counts are
    /// **bit-identical to [`run_sample`](Self::run_sample)** with the
    /// same RNG, for any batch size and any tile width.
    ///
    /// # Errors
    ///
    /// [`SnnError::InputSizeMismatch`] if any sample does not match the
    /// configured input size.
    ///
    /// # Panics
    ///
    /// Panics if `samples` and `rngs` have different lengths.
    pub fn run_batch(
        &self,
        state: &mut BatchState,
        samples: &[&[f32]],
        rngs: &mut [StdRng],
    ) -> Result<Vec<Vec<u32>>, SnnError> {
        assert_eq!(samples.len(), rngs.len(), "one RNG stream per sample");
        for pixels in samples {
            if pixels.len() != self.config.n_inputs {
                return Err(SnnError::InputSizeMismatch {
                    provided: pixels.len(),
                    expected: self.config.n_inputs,
                });
            }
        }
        let b_count = samples.len();
        let n = self.config.n_neurons;
        let mut counts = vec![vec![0u32; n]; b_count];
        if b_count == 0 {
            return Ok(counts);
        }
        state.begin_batch(&self.config, &self.thetas, b_count);
        let tile = state
            .tile
            .unwrap_or_else(crate::engine::tile_width)
            .min(n.max(1))
            .max(1);
        let kernel = state.kernel.unwrap_or_else(crate::engine::kernel);
        // Resolve the intra-chunk sweep mode once per presented chunk: the
        // worker count claims its share of the global thread budget for
        // the duration of the call (released on return), and the tile list
        // is pre-split into contiguous ranges — one deterministic
        // range-job per worker slot, no work stealing across the
        // reduction. Fewer than two tiles, `off`, or an exhausted budget
        // all leave `tile_jobs` empty and the sweep serial.
        let n_tiles = n.div_ceil(tile);
        let intra = state.intra.unwrap_or_else(crate::engine::intra_choice);
        let (intra_workers, _intra_budget) = crate::engine::intra_workers_for(intra, n_tiles);
        let tile_jobs: Vec<Range<usize>> = if intra_workers > 1 {
            crate::engine::chunk_ranges(n_tiles, intra_workers)
        } else {
            Vec::new()
        };
        // Observation only, and counter-cheap on purpose: one span and
        // a handful of adds per presented chunk (never per timestep —
        // the tile total is `timesteps × n_tiles` computed up front).
        let _span = sparkxd_telemetry::span!("engine.run_batch");
        sparkxd_telemetry::counter_add!("engine.batch_calls", 1);
        sparkxd_telemetry::counter_add!("engine.samples", b_count);
        sparkxd_telemetry::counter_add!("engine.timesteps", self.config.timesteps);
        sparkxd_telemetry::counter_add!("engine.tiles_swept", self.config.timesteps * n_tiles);
        if !tile_jobs.is_empty() {
            sparkxd_telemetry::counter_add!("engine.intra_fanouts", 1);
            sparkxd_telemetry::gauge_max!("engine.intra_workers", tile_jobs.len());
        }
        // Per-pixel spike thresholds are a pure function of the sample:
        // compute them once per presentation instead of once per timestep.
        for (b, pixels) in samples.iter().enumerate() {
            self.config.encoder.plan(pixels, &mut state.plans[b]);
        }
        // Disjoint borrows of the scratch fields, so the tile sweep can
        // read the recorded merge while writing the drive/membrane slabs.
        let BatchState {
            v,
            theta,
            refractory,
            drive,
            active,
            plans,
            cursor,
            heads,
            merged_rows,
            member_starts,
            members_flat,
            crossed,
            any_crossed,
            fired,
            intra_any,
            tile: _,
            kernel: _,
            intra: _,
        } = state;
        for _ in 0..self.config.timesteps {
            for (b, rng) in rngs.iter_mut().enumerate() {
                self.config
                    .encoder
                    .encode_planned_step(&plans[b], rng, &mut active[b]);
                cursor[b] = 0;
                heads[b] = active[b].first().copied().unwrap_or(usize::MAX);
            }
            // Record the k-way merge once per timestep: a min-scan over
            // the samples' cached head rows visits each distinct active
            // row in ascending order; live rows are pushed with the batch
            // members that spiked on them (dead rows are consumed from
            // every member's list but not recorded).
            merged_rows.clear();
            member_starts.clear();
            members_flat.clear();
            loop {
                let mut next = usize::MAX;
                for &head in &heads[..b_count] {
                    next = next.min(head);
                }
                if next == usize::MAX {
                    break;
                }
                let live = self.plane.row_live(next);
                if live {
                    merged_rows.push(next);
                    member_starts.push(members_flat.len());
                }
                for b in 0..b_count {
                    if heads[b] == next {
                        let pos = cursor[b] + 1;
                        cursor[b] = pos;
                        heads[b] = active[b].get(pos).copied().unwrap_or(usize::MAX);
                        if live {
                            members_flat.push(b);
                        }
                    }
                }
            }
            member_starts.push(members_flat.len());
            // Neuron-tile sweep: zero, accumulate and integrate one
            // `[B × tile]` drive tile at a time. Each merged row's tile
            // slice is loaded once — the fused multi-member kernel pass
            // keeps it in registers across every member of the batch that
            // spiked on it (the multi-bank burst analogue) — and the
            // tile's lanes are integrated before the sweep moves on.
            any_crossed[..b_count].fill(false);
            if tile_jobs.len() > 1 {
                // Intra-chunk parallel sweep: each range-job owns a
                // contiguous, tile-aligned neuron-lane range of every
                // slab — disjoint writes by construction — and records
                // its crossing flags in its own `intra_any` slot (per
                // *job*, not per thread, so the OR-reduction below is
                // deterministic). The pool call is the barrier: firing
                // commit / inhibition below never observes a partial
                // sweep, so results are bit-identical to the serial
                // sweep for any split (see tests/intra_invariance.rs).
                intra_any.clear();
                intra_any.resize(tile_jobs.len() * b_count, false);
                let slabs = IntraSlabs {
                    v: v.as_mut_ptr(),
                    theta: theta.as_mut_ptr(),
                    refractory: refractory.as_mut_ptr(),
                    drive: drive.as_mut_ptr(),
                    crossed: crossed.as_mut_ptr(),
                    any: intra_any.as_mut_ptr(),
                };
                let merged: &[usize] = merged_rows;
                let starts: &[usize] = member_starts;
                let flat: &[usize] = members_flat;
                let sweep = |part: usize| {
                    let tiles = &tile_jobs[part];
                    let lanes = tiles.start * tile..(tiles.end * tile).min(n);
                    // SAFETY: `tile_jobs` ranges are disjoint and
                    // tile-aligned, so concurrent jobs touch disjoint
                    // `[b*n + lane]` elements; the slab pointers cover
                    // `b_count * n` lanes (`any`: jobs × b_count) and
                    // outlive the pool barrier below.
                    unsafe {
                        sweep_lane_range(
                            self, kernel, slabs, n, b_count, tile, lanes, part, merged, starts,
                            flat,
                        );
                    }
                };
                crate::engine::WorkerPool::global().run(
                    tile_jobs.len(),
                    tile_jobs.len() - 1,
                    &sweep,
                );
                for (b, any) in any_crossed.iter_mut().enumerate().take(b_count) {
                    *any = (0..tile_jobs.len()).any(|p| intra_any[p * b_count + b]);
                }
            } else {
                let mut t0 = 0;
                while t0 < n {
                    let t1 = (t0 + tile).min(n);
                    for b in 0..b_count {
                        drive[b * n + t0..b * n + t1].fill(0.0);
                    }
                    for (ri, &row) in merged_rows.iter().enumerate() {
                        if let Some(&next) = merged_rows.get(ri + 1) {
                            crate::kernels::prefetch_lanes(&self.plane.row(next)[t0..t1]);
                        }
                        let row_tile = &self.plane.row(row)[t0..t1];
                        let members = &members_flat[member_starts[ri]..member_starts[ri + 1]];
                        kernel.accumulate_members(drive, n, t0, members, row_tile);
                    }
                    for (b, any) in any_crossed.iter_mut().enumerate().take(b_count) {
                        let lanes = b * n + t0..b * n + t1;
                        *any |= kernel.integrate_lanes(
                            &self.config.lif,
                            self.config.dt_ms,
                            LifLanes {
                                v: &mut v[lanes.clone()],
                                theta: &mut theta[lanes.clone()],
                                refractory: &mut refractory[lanes.clone()],
                                drive: &drive[lanes.clone()],
                                crossed: &mut crossed[lanes],
                            },
                        );
                    }
                    t0 = t1;
                }
            }
            for (b, sample_counts) in counts.iter_mut().enumerate() {
                if !any_crossed[b] {
                    // No lane reached threshold: nothing fires and
                    // inhibition is a no-op for this sample this step.
                    continue;
                }
                let slab = b * n..(b + 1) * n;
                commit_firing_slab(
                    &self.config,
                    &mut v[slab.clone()],
                    &mut theta[slab.clone()],
                    &mut refractory[slab.clone()],
                    &crossed[slab.clone()],
                    fired,
                    sample_counts,
                );
                inhibit_slab(&self.config, kernel, &mut v[slab], fired);
            }
        }
        Ok(counts)
    }
}

/// Raw slab pointers of the intra-parallel sweep, `Copy` so every
/// range-job captures the same view without borrowing the scratch.
///
/// Safety rests on the partition: jobs write only their own disjoint,
/// tile-aligned lane ranges (and their own `any` slot), enforced by
/// [`sweep_lane_range`]'s contract.
#[derive(Clone, Copy)]
struct IntraSlabs {
    v: *mut f32,
    theta: *mut f32,
    refractory: *mut f32,
    drive: *mut f32,
    crossed: *mut bool,
    any: *mut bool,
}

// SAFETY: the pointers target `BatchState` slabs that outlive the pool
// barrier in `run_batch`, and concurrent jobs dereference disjoint lane
// ranges only (see `sweep_lane_range`).
unsafe impl Send for IntraSlabs {}
unsafe impl Sync for IntraSlabs {}

/// One range-job of the intra-parallel tile sweep: zero → accumulate →
/// integrate over `lanes` (a tile-aligned neuron-lane range), recording
/// this job's per-sample crossing flags in `any[part * b_count + b]`.
///
/// The job replays the exact serial sweep over its tiles — identical tile
/// boundaries (`lanes` starts and ends on global tile multiples), the
/// same ascending merged-row order per lane, the same kernel ops — so the
/// result is bit-identical to the serial path for any range split.
///
/// # Safety
///
/// Every concurrent call must receive a distinct `part` and a disjoint
/// `lanes` range; the slab pointers must cover `b_count * n` elements
/// (`any`: `parts * b_count`) and stay valid for the duration of the
/// call.
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_lane_range(
    params: &NetworkParams,
    kernel: Kernel,
    slabs: IntraSlabs,
    n: usize,
    b_count: usize,
    tile: usize,
    lanes: Range<usize>,
    part: usize,
    merged_rows: &[usize],
    member_starts: &[usize],
    members_flat: &[usize],
) {
    // Disjoint-slice reconstruction: each call builds `&mut` slices only
    // for `[b*n + t0, b*n + t1)` with `[t0, t1) ⊆ lanes`, so no two live
    // `&mut` ever alias across jobs.
    let lane_mut = |ptr: *mut f32, base: usize, len: usize| unsafe {
        std::slice::from_raw_parts_mut(ptr.add(base), len)
    };
    let mut t0 = lanes.start;
    while t0 < lanes.end {
        let t1 = (t0 + tile).min(lanes.end);
        let len = t1 - t0;
        for b in 0..b_count {
            lane_mut(slabs.drive, b * n + t0, len).fill(0.0);
        }
        for (ri, &row) in merged_rows.iter().enumerate() {
            if let Some(&next) = merged_rows.get(ri + 1) {
                // Prefetch is per-worker now: each job hints only its own
                // tile slice of the next row, keeping the hints inside
                // the lanes this thread will actually stream.
                crate::kernels::prefetch_lanes(&params.plane.row(next)[t0..t1]);
            }
            let row_tile = &params.plane.row(row)[t0..t1];
            let members = &members_flat[member_starts[ri]..member_starts[ri + 1]];
            for &b in members {
                // Single-destination accumulate: stride 0 with the one
                // member at offset 0 is exactly `dst += row_tile` — the
                // same per-lane adds, in the same ascending-row order,
                // that the fused serial call makes for this member.
                kernel.accumulate_members(
                    lane_mut(slabs.drive, b * n + t0, len),
                    0,
                    0,
                    &[0],
                    row_tile,
                );
            }
        }
        for b in 0..b_count {
            let base = b * n + t0;
            let any = kernel.integrate_lanes(
                &params.config.lif,
                params.config.dt_ms,
                LifLanes {
                    v: lane_mut(slabs.v, base, len),
                    theta: lane_mut(slabs.theta, base, len),
                    refractory: lane_mut(slabs.refractory, base, len),
                    drive: lane_mut(slabs.drive, base, len),
                    crossed: unsafe {
                        std::slice::from_raw_parts_mut(slabs.crossed.add(base), len)
                    },
                },
            );
            if any {
                // One flag slot per (job, sample): only this job writes it.
                unsafe { *slabs.any.add(part * b_count + b) = true };
            }
        }
        t0 = t1;
    }
}

/// Commits this timestep's spikes for one sample slab: under soft WTA
/// every crossing lane fires; under hard WTA only the lane with the
/// largest threshold margin does (ties keep the lowest index, as in the
/// scalar path). Firing lanes reset, raise theta and enter refractory —
/// exactly [`LifState::fire`].
fn commit_firing_slab(
    config: &SnnConfig,
    v: &mut [f32],
    theta: &mut [f32],
    refractory: &mut [f32],
    crossed: &[bool],
    fired: &mut Vec<usize>,
    counts: &mut [u32],
) {
    fired.clear();
    let lif = &config.lif;
    let mut fire =
        |j: usize, v: &mut [f32], theta: &mut [f32], refractory: &mut [f32], counts: &mut [u32]| {
            v[j] = lif.v_reset;
            theta[j] += lif.theta_plus;
            refractory[j] = lif.refractory_ms;
            fired.push(j);
            counts[j] += 1;
        };
    if config.hard_wta {
        let mut winner: Option<(usize, f32)> = None;
        for (j, &c) in crossed.iter().enumerate() {
            if c {
                // Same expression as LifState::threshold_margin on the
                // post-integration state.
                let margin = v[j] - (lif.v_thresh + theta[j]);
                if winner.is_none_or(|(_, best)| margin > best) {
                    winner = Some((j, margin));
                }
            }
        }
        if let Some((j, _)) = winner {
            fire(j, v, theta, refractory, counts);
        }
    } else {
        for (j, &c) in crossed.iter().enumerate() {
            if c {
                fire(j, v, theta, refractory, counts);
            }
        }
    }
}

/// Lateral inhibition over one sample slab — exactly
/// [`LifState::inhibit`] applied to every non-firing lane.
///
/// `fired` is sorted ascending and deduplicated (it comes from
/// [`commit_firing_slab`]'s index walk), so instead of building a dense
/// mask the sweep hands the kernel the contiguous gaps *between* winners
/// — no per-lane branch, and the kernel runs full-width on each gap.
fn inhibit_slab(config: &SnnConfig, kernel: Kernel, v: &mut [f32], fired: &[usize]) {
    if fired.is_empty() {
        return;
    }
    debug_assert!(
        fired.windows(2).all(|w| w[0] < w[1]),
        "fired list must be sorted and unique"
    );
    let strength = config.inhibition_mv * fired.len() as f32;
    let floor = config.lif.inhibition_floor();
    let mut start = 0;
    for &j in fired {
        kernel.inhibit_lanes(&mut v[start..j], strength, floor);
        start = j + 1;
    }
    kernel.inhibit_lanes(&mut v[start..], strength, floor);
}

/// Integrates one sample's drive and resolves who fires (soft or hard
/// WTA), recording spikes into `fired` (cleared first) and `counts` — the
/// scalar (AoS) reference implementation driven by [`RunState`].
fn resolve_firing_step(
    config: &SnnConfig,
    neurons: &mut [LifState],
    drive: &[f32],
    fired: &mut Vec<usize>,
    counts: &mut [u32],
) {
    fired.clear();
    if config.hard_wta {
        let mut winner: Option<(usize, f32)> = None;
        for (j, neuron) in neurons.iter_mut().enumerate() {
            if neuron.integrate(&config.lif, drive[j], config.dt_ms) {
                let margin = neuron.threshold_margin(&config.lif);
                if winner.is_none_or(|(_, best)| margin > best) {
                    winner = Some((j, margin));
                }
            }
        }
        if let Some((j, _)) = winner {
            neurons[j].fire(&config.lif);
            fired.push(j);
            counts[j] += 1;
        }
    } else {
        for (j, neuron) in neurons.iter_mut().enumerate() {
            if neuron.step(&config.lif, drive[j], config.dt_ms) {
                fired.push(j);
                counts[j] += 1;
            }
        }
    }
}

/// Lateral inhibition: every spike hyperpolarises all other neurons,
/// enforcing competition. `is_fired` is scratch sized to the population.
fn apply_inhibition_step(
    config: &SnnConfig,
    neurons: &mut [LifState],
    fired: &[usize],
    is_fired: &mut [bool],
) {
    if fired.is_empty() {
        return;
    }
    let strength = config.inhibition_mv * fired.len() as f32;
    is_fired.fill(false);
    for &j in fired {
        is_fired[j] = true;
    }
    for (j, neuron) in neurons.iter_mut().enumerate() {
        if !is_fired[j] {
            neuron.inhibit(&config.lif, strength);
        }
    }
}

/// Per-run mutable scratch of one simulation worker: membrane state,
/// synaptic drive and spike buffers. Reused across samples — every buffer
/// is reset by `begin_sample` — so the hot loop allocates nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunState {
    /// Membrane state; `theta` holds a per-sample working copy of the
    /// frozen thresholds (they decay/grow *within* a presentation window,
    /// which must not leak back into the parameters at inference).
    neurons: Vec<LifState>,
    /// Synaptic drive accumulated this timestep (mV per neuron).
    drive: Vec<f32>,
    /// Input lines that spiked this timestep.
    active: Vec<usize>,
    /// Neurons that fired this timestep.
    fired: Vec<usize>,
    /// Dense mask of `fired` (inhibition pass).
    is_fired: Vec<bool>,
    /// Pinned kernel; `None` resolves from `SPARKXD_KERNEL` /
    /// auto-detection on every [`NetworkParams::run_sample`] call.
    kernel: Option<Kernel>,
}

impl RunState {
    /// Scratch sized for `params`.
    pub fn for_params(params: &NetworkParams) -> Self {
        let mut state = Self::default();
        state.begin_sample(&params.config, &params.thetas);
        state
    }

    /// Pins the hot-loop kernel (ignores `SPARKXD_KERNEL`); the request
    /// resolves through runtime feature detection, so an unsupported
    /// request degrades to the portable kernel. Builder style; never
    /// changes results, only wall time.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = Some(kernel.resolve());
        self
    }

    /// The neurons that fired in the most recent timestep.
    pub fn last_fired(&self) -> &[usize] {
        &self.fired
    }

    /// Resets membrane state for a fresh sample: potentials to rest,
    /// refractory timers cleared, thresholds copied from `thetas`.
    fn begin_sample(&mut self, config: &SnnConfig, thetas: &[f32]) {
        let n = thetas.len();
        self.neurons.resize(n, LifState::default());
        self.drive.resize(n, 0.0);
        self.is_fired.resize(n, false);
        for (neuron, &theta) in self.neurons.iter_mut().zip(thetas) {
            *neuron = LifState {
                v: config.lif.v_rest,
                theta,
                refractory_left: 0.0,
            };
        }
        self.active.clear();
        self.fired.clear();
    }

    /// Accumulates this timestep's synaptic drive from the active inputs,
    /// reading the stored weights through the synapse rule on every access
    /// (the scalar reference path). The per-lane transform runs through
    /// the same [`Kernel`] entry points as the batched path, so the two
    /// stay op-for-op comparable under any dispatch choice.
    fn accumulate_drive(&mut self, config: &SnnConfig, weights: &StoredWeights, kernel: Kernel) {
        self.drive.fill(0.0);
        let w_max = weights.w_max();
        for &i in &self.active {
            let row = weights.fan_out(i);
            if config.clamp_reads {
                kernel.accumulate_effective(&mut self.drive, row, w_max);
            } else {
                kernel.accumulate_finite(&mut self.drive, row);
            }
        }
    }

    /// Integrates the drive and resolves who fires (soft or hard WTA),
    /// recording spikes into `fired` and `counts`.
    fn resolve_firing(&mut self, config: &SnnConfig, counts: &mut [u32]) {
        resolve_firing_step(
            config,
            &mut self.neurons,
            &self.drive,
            &mut self.fired,
            counts,
        );
    }

    /// Lateral inhibition: every spike hyperpolarises all other neurons,
    /// enforcing competition.
    fn apply_inhibition(&mut self, config: &SnnConfig) {
        apply_inhibition_step(config, &mut self.neurons, &self.fired, &mut self.is_fired);
    }
}

/// Per-worker scratch of the batched inference path: SoA membrane and
/// drive matrices over `[B × n_neurons]`, plus per-sample spike lists.
/// Reused across batches; `run_batch` resizes it to the presented batch,
/// so the final (short) chunk of a dataset needs no separate state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchState {
    /// Membrane potentials, sample-major (`[b * n_neurons + j]`).
    v: Vec<f32>,
    /// Adaptive-threshold working copies, sample-major.
    theta: Vec<f32>,
    /// Remaining refractory times, sample-major.
    refractory: Vec<f32>,
    /// Synaptic drive matrix, sample-major.
    drive: Vec<f32>,
    /// Per-sample active input lines this timestep (sorted ascending).
    active: Vec<Vec<usize>>,
    /// Per-sample precomputed spike plans (non-zero pixels + thresholds).
    plans: Vec<Vec<(u32, u32)>>,
    /// Per-sample cursor into `active` for the row-merge sweep.
    cursor: Vec<usize>,
    /// Per-sample head row of `active` (`usize::MAX` when exhausted),
    /// cached flat so the merge's min-scan stays in one cache line.
    heads: Vec<usize>,
    /// The timestep's recorded merge: each distinct live active row, in
    /// ascending order, visited once per neuron tile.
    merged_rows: Vec<usize>,
    /// Offsets into `members_flat` per merged row (one trailing sentinel).
    member_starts: Vec<usize>,
    /// Flattened batch-member lists of the merged rows.
    members_flat: Vec<usize>,
    /// Threshold-crossing masks, sample-major (`[b * n_neurons + j]`) —
    /// tiles integrate lane-by-lane, firing resolves per sample after the
    /// sweep.
    crossed: Vec<bool>,
    /// Per-sample "any lane crossed this timestep" flags, OR-accumulated
    /// across tiles so quiet samples skip firing/inhibition entirely.
    any_crossed: Vec<bool>,
    /// Per-sample firing scratch (one sample resolved at a time; sorted
    /// ascending, so inhibition sweeps the gaps between winners without a
    /// dense mask).
    fired: Vec<usize>,
    /// Per-(range-job × sample) crossing flags of the intra-parallel
    /// sweep, OR-reduced into `any_crossed` after the pool barrier. One
    /// slot per *job* (not per thread), so the reduction is deterministic
    /// however the pool schedules the jobs.
    intra_any: Vec<bool>,
    /// Pinned neuron-tile width; `None` resolves from `SPARKXD_TILE` /
    /// [`DEFAULT_TILE`](crate::engine::DEFAULT_TILE) on every
    /// [`NetworkParams::run_batch`] call.
    tile: Option<usize>,
    /// Pinned kernel; `None` resolves from `SPARKXD_KERNEL` /
    /// auto-detection on every [`NetworkParams::run_batch`] call.
    kernel: Option<Kernel>,
    /// Pinned intra-chunk sweep mode; `None` resolves from
    /// `SPARKXD_INTRA` / [`IntraChoice::Auto`] on every
    /// [`NetworkParams::run_batch`] call.
    intra: Option<IntraChoice>,
}

impl BatchState {
    /// Scratch pre-sized for batches of up to `batch` samples of `params`.
    pub fn for_params(params: &NetworkParams, batch: usize) -> Self {
        let mut state = Self::default();
        state.begin_batch(&params.config, &params.thetas, batch.max(1));
        state
    }

    /// Pins the neuron-tile width of the drive sweep (ignores
    /// `SPARKXD_TILE`); any width ≥ `n_neurons` (e.g. `usize::MAX`) is
    /// the untiled single-sweep path. Builder style; never changes
    /// results, only wall time.
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = Some(tile.max(1));
        self
    }

    /// Pins the hot-loop kernel (ignores `SPARKXD_KERNEL`); the request
    /// resolves through runtime feature detection, so an unsupported
    /// request degrades to the portable kernel. Builder style; never
    /// changes results, only wall time.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = Some(kernel.resolve());
        self
    }

    /// Pins the intra-chunk parallel mode of the drive tile sweep
    /// (ignores `SPARKXD_INTRA`): [`IntraChoice::Off`] keeps the serial
    /// sweep, [`IntraChoice::Workers`]`(k)` pins `k` sweep workers,
    /// [`IntraChoice::Auto`] sizes to the leftover thread budget. Builder
    /// style; never changes results, only wall time.
    pub fn with_intra(mut self, intra: IntraChoice) -> Self {
        self.intra = Some(intra);
        self
    }

    /// Resets membrane state for a fresh batch of `batch` samples:
    /// potentials to rest, refractory timers cleared, thresholds copied
    /// from `thetas` per sample.
    fn begin_batch(&mut self, config: &SnnConfig, thetas: &[f32], batch: usize) {
        let n = thetas.len();
        self.v.clear();
        self.v.resize(batch * n, config.lif.v_rest);
        self.refractory.clear();
        self.refractory.resize(batch * n, 0.0);
        self.theta.clear();
        for _ in 0..batch {
            self.theta.extend_from_slice(thetas);
        }
        self.drive.resize(batch * n, 0.0);
        self.crossed.resize(batch * n, false);
        self.any_crossed.resize(batch, false);
        self.active.resize(batch, Vec::new());
        self.plans.resize(batch, Vec::new());
        self.cursor.resize(batch, 0);
        self.heads.resize(batch, usize::MAX);
        for active in &mut self.active {
            active.clear();
        }
        self.cursor.fill(0);
        self.heads.fill(usize::MAX);
        self.any_crossed.fill(false);
        self.merged_rows.clear();
        self.member_starts.clear();
        self.members_flat.clear();
        self.fired.clear();
        self.intra_any.clear();
    }
}

/// The unsupervised spiking network: frozen [`NetworkParams`] plus the STDP
/// learning state that mutates them during training.
///
/// # Example
///
/// ```
/// use sparkxd_data::{SynthDigits, SyntheticSource};
/// use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
///
/// let config = SnnConfig::for_neurons(20).with_timesteps(20);
/// let mut net = DiehlCookNetwork::new(config);
/// let data = SynthDigits.generate(10, 0);
/// net.train_epoch(&data, 1);
/// assert_eq!(net.weights().neurons(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiehlCookNetwork {
    params: NetworkParams,
    stdp: StdpState,
}

impl DiehlCookNetwork {
    /// Builds a network with randomly initialised weights.
    pub fn new(config: SnnConfig) -> Self {
        let params = NetworkParams::new(config);
        let stdp = StdpState::new(
            params.config.stdp,
            params.config.n_inputs,
            params.config.n_neurons,
        );
        Self { params, stdp }
    }

    /// Wraps existing parameters with fresh (zeroed) STDP traces.
    pub fn from_params(params: NetworkParams) -> Self {
        let stdp = StdpState::new(
            params.config.stdp,
            params.config.n_inputs,
            params.config.n_neurons,
        );
        Self { params, stdp }
    }

    /// The frozen half of the network — hand `&net.params()` to the
    /// [`BatchEvaluator`](crate::engine::BatchEvaluator) for parallel
    /// inference.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Consumes the network, keeping only the inference parameters.
    pub fn into_params(self) -> NetworkParams {
        self.params
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.params.config
    }

    /// The stored synaptic weights (the data SparkXD maps into DRAM).
    pub fn weights(&self) -> &StoredWeights {
        &self.params.weights
    }

    /// Replaces the weight matrix (e.g. with a corrupted copy), rebuilding
    /// the read plane.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the configuration.
    pub fn set_weights(&mut self, weights: StoredWeights) {
        self.params.set_weights(weights);
    }

    /// Swap-in/swap-out of a corrupted image with row-targeted plane
    /// rebuild; see [`NetworkParams::swap_weights_rows`].
    pub fn swap_weights_rows(&mut self, other: &mut StoredWeights, rows: &[usize]) {
        self.params.swap_weights_rows(other, rows);
    }

    /// In-place mutation of the raw DRAM image with a full plane rebuild;
    /// see [`NetworkParams::with_weights_mut`].
    pub fn with_weights_mut<R>(&mut self, mutate: impl FnOnce(&mut StoredWeights) -> R) -> R {
        self.params.with_weights_mut(mutate)
    }

    /// Adaptive-threshold values per neuron.
    pub fn thetas(&self) -> &[f32] {
        self.params.thetas()
    }

    /// Presents one image for `config.timesteps` steps.
    ///
    /// Returns per-neuron spike counts. When `learn` is set, STDP updates
    /// and per-sample weight normalisation are applied and the adaptive
    /// thresholds persist; otherwise this is exactly
    /// [`NetworkParams::run_sample`] on a fresh scratch and the network is
    /// left unchanged.
    ///
    /// # Errors
    ///
    /// [`SnnError::InputSizeMismatch`] if `pixels` does not match the
    /// configured input size.
    pub fn run_sample(
        &mut self,
        pixels: &[f32],
        rng: &mut StdRng,
        learn: bool,
    ) -> Result<Vec<u32>, SnnError> {
        if !learn {
            let mut state = RunState::for_params(&self.params);
            return self.params.run_sample(&mut state, pixels, rng);
        }
        let mut state = RunState::default();
        let counts = self.train_sample(&mut state, pixels, rng)?;
        self.params.rebuild_plane();
        Ok(counts)
    }

    /// Training-mode presentation of one sample, reusing `state` scratch.
    ///
    /// Mutates the stored weights directly and leaves the effective plane
    /// stale — callers must finish with `params.rebuild_plane()` before
    /// the parameters are read again.
    fn train_sample(
        &mut self,
        state: &mut RunState,
        pixels: &[f32],
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, SnnError> {
        let Self { params, stdp } = self;
        if pixels.len() != params.config.n_inputs {
            return Err(SnnError::InputSizeMismatch {
                provided: pixels.len(),
                expected: params.config.n_inputs,
            });
        }
        let config = &params.config;
        let weights = &mut params.weights;
        let mut counts = vec![0u32; config.n_neurons];
        state.begin_sample(config, &params.thetas);
        let kernel = state.kernel.unwrap_or_else(crate::engine::kernel);
        for _ in 0..config.timesteps {
            config.encoder.encode_step(pixels, rng, &mut state.active);
            stdp.decay(config.dt_ms);
            stdp.on_pre_spikes(weights, &state.active);
            state.accumulate_drive(config, weights, kernel);
            state.resolve_firing(config, &mut counts);
            if !state.fired.is_empty() {
                stdp.on_post_spikes(weights, &state.fired);
            }
            state.apply_inhibition(config);
        }
        weights.normalize_columns(config.norm_target);
        stdp.reset();
        // Thresholds are learned state: persist them across samples.
        for (theta, neuron) in params.thetas.iter_mut().zip(&state.neurons) {
            *theta = neuron.theta;
        }
        Ok(counts)
    }

    /// Trains on every sample of `dataset` once (one epoch), with spike
    /// generation seeded by `seed`. Returns the total number of excitatory
    /// spikes observed.
    ///
    /// Training is inherently sequential (STDP updates feed forward into
    /// the next sample), so this threads one RNG through the epoch exactly
    /// as previous revisions did. The effective plane is re-derived once
    /// at the end of the epoch (training itself reads the store directly).
    ///
    /// # Panics
    ///
    /// Panics if the dataset images do not match the input size (the
    /// datasets in this workspace always do).
    pub fn train_epoch(&mut self, dataset: &Dataset, seed: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = RunState::default();
        let mut total = 0u64;
        for (image, _) in dataset.iter() {
            let counts = self
                .train_sample(&mut state, image.pixels(), &mut rng)
                .expect("dataset image matches configured input size");
            total += counts.iter().map(|&c| c as u64).sum::<u64>();
        }
        self.params.rebuild_plane();
        total
    }

    /// Assigns a class to each neuron from its responses on `dataset`
    /// (inference only, no learning). Samples are evaluated concurrently by
    /// the [`BatchEvaluator`](crate::engine::BatchEvaluator); the result is
    /// independent of the worker count and batch size.
    pub fn label_neurons(&self, dataset: &Dataset, seed: u64) -> NeuronLabeler {
        BatchEvaluator::from_env().label_neurons(&self.params, dataset, seed)
    }

    /// Classification accuracy on `dataset` using `labeler`'s neuron
    /// assignments (inference only, parallel across samples).
    pub fn evaluate(&self, dataset: &Dataset, labeler: &NeuronLabeler, seed: u64) -> f64 {
        BatchEvaluator::from_env().evaluate(&self.params, dataset, labeler, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sample_rng;
    use sparkxd_data::{SynthDigits, SyntheticSource};

    fn small_net() -> DiehlCookNetwork {
        DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(30))
    }

    #[test]
    fn network_produces_spikes_on_input() {
        let mut net = small_net();
        let data = SynthDigits.generate(5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = net
            .run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap();
        assert!(counts.iter().sum::<u32>() > 0, "some neuron should fire");
    }

    #[test]
    fn blank_input_produces_no_spikes() {
        let mut net = small_net();
        let blank = vec![0.0f32; 784];
        let mut rng = StdRng::seed_from_u64(2);
        let counts = net.run_sample(&blank, &mut rng, false).unwrap();
        assert_eq!(counts.iter().sum::<u32>(), 0);
    }

    #[test]
    fn wrong_input_size_is_an_error() {
        let mut net = small_net();
        let mut rng = StdRng::seed_from_u64(2);
        let err = net.run_sample(&[0.0; 10], &mut rng, false);
        assert!(matches!(err, Err(SnnError::InputSizeMismatch { .. })));
        let params = net.params().clone();
        let mut state = RunState::for_params(&params);
        let err = params.run_sample(&mut state, &[0.0; 10], &mut rng);
        assert!(matches!(err, Err(SnnError::InputSizeMismatch { .. })));
        let mut batch_state = BatchState::for_params(&params, 2);
        let good = vec![0.0f32; 784];
        let bad = vec![0.0f32; 10];
        let mut rngs = vec![sample_rng(1, 0), sample_rng(1, 1)];
        let err = params.run_batch(
            &mut batch_state,
            &[good.as_slice(), bad.as_slice()],
            &mut rngs,
        );
        assert!(matches!(err, Err(SnnError::InputSizeMismatch { .. })));
    }

    #[test]
    fn training_changes_weights_and_normalises() {
        let mut net = small_net();
        let before = net.weights().as_slice().to_vec();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert_ne!(net.weights().as_slice(), &before[..]);
        // Column sums normalised.
        let w = net.weights();
        for j in 0..20 {
            let sum: f32 = (0..784).map(|i| w.raw(i, j)).sum();
            assert!((sum - 78.0).abs() < 2.0, "column {j} sum {sum}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = SynthDigits.generate(10, 3);
        let run = || {
            let mut net = small_net();
            net.train_epoch(&data, 4);
            net.weights().as_slice().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn training_leaves_plane_consistent() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert!(net
            .params()
            .effective_plane()
            .is_consistent_with(net.weights()));
        let mut rng = StdRng::seed_from_u64(5);
        net.run_sample(data.get(0).0.pixels(), &mut rng, true)
            .unwrap();
        assert!(net
            .params()
            .effective_plane()
            .is_consistent_with(net.weights()));
    }

    #[test]
    fn inference_leaves_network_unchanged() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        let before = net.clone();
        let mut rng = StdRng::seed_from_u64(9);
        net.run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap();
        let _ = net.evaluate(&data, &net.label_neurons(&data, 5), 6);
        assert_eq!(net, before, "inference must not mutate the network");
    }

    #[test]
    fn params_run_sample_matches_network_inference() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        let mut rng_a = StdRng::seed_from_u64(11);
        let via_net = net
            .run_sample(data.get(0).0.pixels(), &mut rng_a, false)
            .unwrap();
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut state = RunState::for_params(net.params());
        let via_params = net
            .params()
            .run_sample(&mut state, data.get(0).0.pixels(), &mut rng_b)
            .unwrap();
        assert_eq!(via_net, via_params);
    }

    #[test]
    fn run_state_reuse_is_bit_identical_to_fresh_state() {
        let mut net = small_net();
        let data = SynthDigits.generate(6, 3);
        net.train_epoch(&data, 4);
        let params = net.params();
        let mut reused = RunState::for_params(params);
        for (i, (image, _)) in data.iter().enumerate() {
            let mut rng_a = StdRng::seed_from_u64(100 + i as u64);
            let mut rng_b = StdRng::seed_from_u64(100 + i as u64);
            let with_reuse = params
                .run_sample(&mut reused, image.pixels(), &mut rng_a)
                .unwrap();
            let mut fresh = RunState::for_params(params);
            let with_fresh = params
                .run_sample(&mut fresh, image.pixels(), &mut rng_b)
                .unwrap();
            assert_eq!(with_reuse, with_fresh, "sample {i}");
        }
    }

    /// Scalar reference for a dataset prefix: one `run_sample` per image,
    /// RNG stream `(seed, index)`.
    fn scalar_counts(params: &NetworkParams, data: &Dataset, n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut state = RunState::for_params(params);
        (0..n)
            .map(|idx| {
                let mut rng = sample_rng(seed, idx as u64);
                params
                    .run_sample(&mut state, data.get(idx).0.pixels(), &mut rng)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn run_batch_is_bit_identical_to_run_sample_for_any_batch_size() {
        let mut net = small_net();
        let data = SynthDigits.generate(17, 3);
        net.train_epoch(&data, 4);
        let params = net.params();
        let reference = scalar_counts(params, &data, 17, 77);
        for batch in [1usize, 2, 3, 8, 17] {
            let mut state = BatchState::for_params(params, batch);
            let mut got = Vec::new();
            let mut start = 0;
            while start < 17 {
                let end = (start + batch).min(17);
                let pixels: Vec<&[f32]> = (start..end).map(|i| data.get(i).0.pixels()).collect();
                let mut rngs: Vec<StdRng> =
                    (start..end).map(|i| sample_rng(77, i as u64)).collect();
                got.extend(params.run_batch(&mut state, &pixels, &mut rngs).unwrap());
                start = end;
            }
            assert_eq!(got, reference, "batch size {batch}");
        }
    }

    #[test]
    fn run_batch_is_bit_identical_for_any_tile_width() {
        // n_neurons = 20: tile widths below, at, straddling and far above
        // the population, including widths that do not divide it.
        let mut net = small_net();
        let data = SynthDigits.generate(11, 3);
        net.train_epoch(&data, 4);
        let params = net.params();
        let reference = scalar_counts(params, &data, 11, 55);
        for tile in [1usize, 2, 3, 7, 19, 20, 21, 512, usize::MAX] {
            let mut state = BatchState::for_params(params, 4).with_tile(tile);
            let mut got = Vec::new();
            let mut start = 0;
            while start < 11 {
                let end = (start + 4).min(11);
                let pixels: Vec<&[f32]> = (start..end).map(|i| data.get(i).0.pixels()).collect();
                let mut rngs: Vec<StdRng> =
                    (start..end).map(|i| sample_rng(55, i as u64)).collect();
                got.extend(params.run_batch(&mut state, &pixels, &mut rngs).unwrap());
                start = end;
            }
            assert_eq!(got, reference, "tile width {tile}");
        }
    }

    #[test]
    fn run_batch_matches_scalar_under_corruption_unclamped_and_hard_wta() {
        for (clamp, hard_wta) in [(true, false), (false, false), (true, true), (false, true)] {
            let mut config = SnnConfig::for_neurons(16)
                .with_timesteps(25)
                .with_clamp_reads(clamp);
            config.hard_wta = hard_wta;
            let mut params = NetworkParams::new(config);
            // Hand-corrupt the store: NaN/Inf/negative/huge values exercise
            // every branch of the read rule, plus a dead (all-zero) row.
            params.with_weights_mut(|w| {
                w.set(1, 3, f32::NAN);
                w.set(2, 5, f32::INFINITY);
                w.set(4, 0, -3.0);
                w.set(4, 1, 9.0);
                for j in 0..16 {
                    w.set(10, j, 0.0);
                }
            });
            let data = SynthDigits.generate(9, 6);
            let reference = scalar_counts(&params, &data, 9, 13);
            // tile = 5 splits n = 16 into uneven tiles, so the hard-WTA
            // winner and the inhibition strength must be resolved across
            // tile boundaries; tile = 16 is the untiled path.
            for tile in [5usize, 16] {
                let mut state = BatchState::for_params(&params, 4).with_tile(tile);
                let mut got = Vec::new();
                let mut start = 0;
                while start < 9 {
                    let end = (start + 4).min(9);
                    let pixels: Vec<&[f32]> =
                        (start..end).map(|i| data.get(i).0.pixels()).collect();
                    let mut rngs: Vec<StdRng> =
                        (start..end).map(|i| sample_rng(13, i as u64)).collect();
                    got.extend(params.run_batch(&mut state, &pixels, &mut rngs).unwrap());
                    start = end;
                }
                assert_eq!(
                    got, reference,
                    "clamp_reads={clamp} hard_wta={hard_wta} tile={tile}"
                );
            }
            if hard_wta {
                // The hard-WTA branch must actually decide something: at
                // most one spike per timestep, and at least one overall.
                let total: u32 = reference.iter().flatten().sum();
                assert!(total > 0, "hard-WTA run produced no spikes to compare");
                assert!(reference.iter().all(|c| c.iter().sum::<u32>() <= 25));
            }
        }
    }

    #[test]
    fn run_batch_empty_batch_is_ok() {
        let net = small_net();
        let params = net.params();
        let mut state = BatchState::for_params(params, 4);
        let counts = params.run_batch(&mut state, &[], &mut []).unwrap();
        assert!(counts.is_empty());
    }

    #[test]
    fn batch_state_reuse_across_shrinking_batches() {
        let mut net = small_net();
        let data = SynthDigits.generate(5, 3);
        net.train_epoch(&data, 4);
        let params = net.params();
        let mut state = BatchState::for_params(params, 4);
        // Full batch, then a short tail batch with the same state.
        let pixels_a: Vec<&[f32]> = (0..4).map(|i| data.get(i).0.pixels()).collect();
        let mut rngs_a: Vec<StdRng> = (0..4).map(|i| sample_rng(3, i as u64)).collect();
        let a = params
            .run_batch(&mut state, &pixels_a, &mut rngs_a)
            .unwrap();
        let pixels_b: Vec<&[f32]> = vec![data.get(4).0.pixels()];
        let mut rngs_b = vec![sample_rng(3, 4)];
        let b = params
            .run_batch(&mut state, &pixels_b, &mut rngs_b)
            .unwrap();
        let mut got = a;
        got.extend(b);
        assert_eq!(got, scalar_counts(params, &data, 5, 3));
    }

    #[test]
    fn inhibition_limits_simultaneous_winners() {
        // With strong inhibition, total spikes should be far below the
        // no-competition bound.
        let mut config = SnnConfig::for_neurons(30).with_timesteps(50);
        config.inhibition_mv = 0.0;
        let data = SynthDigits.generate(1, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut free = DiehlCookNetwork::new(config.clone());
        let free_spikes: u32 = free
            .run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap()
            .iter()
            .sum();
        let mut config2 = config;
        config2.inhibition_mv = 12.0;
        let mut wta = DiehlCookNetwork::new(config2);
        let mut rng2 = StdRng::seed_from_u64(6);
        let wta_spikes: u32 = wta
            .run_sample(data.get(0).0.pixels(), &mut rng2, false)
            .unwrap()
            .iter()
            .sum();
        assert!(
            wta_spikes < free_spikes,
            "inhibition should suppress spiking ({wta_spikes} vs {free_spikes})"
        );
    }

    #[test]
    fn thetas_grow_with_activity() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert!(net.thetas().iter().any(|&t| t > 0.0));
    }

    #[test]
    fn set_weights_roundtrip() {
        let mut net = small_net();
        let mut w = net.weights().clone();
        w.set(0, 0, 0.77);
        net.set_weights(w);
        assert_eq!(net.weights().raw(0, 0), 0.77);
        assert!(net
            .params()
            .effective_plane()
            .is_consistent_with(net.weights()));
    }

    #[test]
    fn swap_weights_rows_roundtrips_store_and_plane() {
        let mut net = small_net();
        let data = SynthDigits.generate(6, 3);
        net.train_epoch(&data, 4);
        let before = net.params().clone();
        let mut corrupted = net.weights().clone();
        corrupted.set(7, 2, f32::NAN);
        corrupted.set(7, 3, 5.0);
        corrupted.set(12, 0, -1.0);
        let rows = [7usize, 12];
        net.swap_weights_rows(&mut corrupted, &rows);
        assert!(net
            .params()
            .effective_plane()
            .is_consistent_with(net.weights()));
        assert_eq!(net.params().effective_plane().row(7)[2], 0.0);
        net.swap_weights_rows(&mut corrupted, &rows);
        assert_eq!(net.params(), &before, "swap back restores exactly");
    }

    #[test]
    fn with_weights_mut_rebuilds_plane() {
        let mut net = small_net();
        net.with_weights_mut(|w| w.set(3, 3, f32::INFINITY));
        assert!(net
            .params()
            .effective_plane()
            .is_consistent_with(net.weights()));
        assert_eq!(net.params().effective_plane().row(3)[3], 0.0);
    }

    #[test]
    fn from_params_roundtrip() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        let rebuilt = DiehlCookNetwork::from_params(net.clone().into_params());
        assert_eq!(rebuilt.weights(), net.weights());
        assert_eq!(rebuilt.thetas(), net.thetas());
    }

    #[test]
    #[should_panic(expected = "neuron count")]
    fn set_weights_shape_mismatch_panics() {
        let mut net = small_net();
        let w = StoredWeights::random(784, 5, 1.0, 0);
        net.set_weights(w);
    }
}
