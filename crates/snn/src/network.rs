//! The unsupervised SNN architecture of paper Fig. 4(a): a Poisson-coded
//! input layer fully connected to an excitatory LIF layer with lateral
//! inhibition (winner-take-all competition) and STDP learning.

use crate::coding::PoissonEncoder;
use crate::eval::NeuronLabeler;
use crate::neuron::{LifConfig, LifState};
use crate::stdp::{StdpConfig, StdpState};
use crate::synapse::WeightMatrix;
use crate::SnnError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd_data::Dataset;

/// Complete configuration of a [`DiehlCookNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnnConfig {
    /// Number of input lines (pixels); 784 for 28×28 images.
    pub n_inputs: usize,
    /// Number of excitatory neurons (the paper's N400…N3600).
    pub n_neurons: usize,
    /// Timesteps each sample is presented for.
    pub timesteps: usize,
    /// Simulation timestep (ms).
    pub dt_ms: f32,
    /// Neuron parameters.
    pub lif: LifConfig,
    /// Plasticity parameters.
    pub stdp: StdpConfig,
    /// Input spike encoder.
    pub encoder: PoissonEncoder,
    /// Lateral inhibition strength (mV per competing spike).
    pub inhibition_mv: f32,
    /// Per-neuron input-weight normalisation target.
    pub norm_target: f32,
    /// Maximum synaptic weight.
    pub w_max: f32,
    /// Clamp weight reads to `[0, w_max]` (bounded hardware synapse).
    /// Disabling exposes raw FP32 corruption (paper's MSB observation).
    pub clamp_reads: bool,
    /// Hard winner-take-all: at most one neuron (the one with the largest
    /// threshold margin) fires per timestep, sharpening specialisation.
    pub hard_wta: bool,
    /// Seed for weight initialisation.
    pub weight_seed: u64,
}

impl SnnConfig {
    /// Configuration for a network with `n_neurons` excitatory neurons and
    /// 784 inputs, with Diehl & Cook style defaults.
    pub fn for_neurons(n_neurons: usize) -> Self {
        Self {
            n_inputs: sparkxd_data::IMAGE_PIXELS,
            n_neurons,
            timesteps: 100,
            dt_ms: 1.0,
            lif: LifConfig::excitatory(),
            stdp: StdpConfig::standard(),
            encoder: PoissonEncoder::standard(),
            inhibition_mv: 50.0,
            norm_target: 78.0,
            w_max: 1.0,
            clamp_reads: true,
            hard_wta: false,
            weight_seed: 0xD1EC,
        }
    }

    /// Sets the presentation window (builder style).
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        self.timesteps = timesteps;
        self
    }

    /// Sets the weight-initialisation seed (builder style).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// Enables or disables clamped weight reads (builder style).
    pub fn with_clamp_reads(mut self, clamp: bool) -> Self {
        self.clamp_reads = clamp;
        self
    }
}

/// The unsupervised spiking network.
///
/// # Example
///
/// ```
/// use sparkxd_data::{SynthDigits, SyntheticSource};
/// use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
///
/// let config = SnnConfig::for_neurons(20).with_timesteps(20);
/// let mut net = DiehlCookNetwork::new(config);
/// let data = SynthDigits.generate(10, 0);
/// net.train_epoch(&data, 1);
/// assert_eq!(net.weights().neurons(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiehlCookNetwork {
    config: SnnConfig,
    weights: WeightMatrix,
    neurons: Vec<LifState>,
    stdp: StdpState,
}

impl DiehlCookNetwork {
    /// Builds a network with randomly initialised weights.
    pub fn new(config: SnnConfig) -> Self {
        let weights = WeightMatrix::random(
            config.n_inputs,
            config.n_neurons,
            config.w_max,
            config.weight_seed,
        );
        let neurons = vec![LifState::resting(&config.lif); config.n_neurons];
        let stdp = StdpState::new(config.stdp, config.n_inputs, config.n_neurons);
        Self {
            config,
            weights,
            neurons,
            stdp,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.config
    }

    /// The synaptic weights (the data SparkXD maps into DRAM).
    pub fn weights(&self) -> &WeightMatrix {
        &self.weights
    }

    /// Mutable access to the weights (error injection path).
    pub fn weights_mut(&mut self) -> &mut WeightMatrix {
        &mut self.weights
    }

    /// Replaces the weight matrix (e.g. with a corrupted copy).
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the configuration.
    pub fn set_weights(&mut self, weights: WeightMatrix) {
        assert_eq!(weights.inputs(), self.config.n_inputs, "input count");
        assert_eq!(weights.neurons(), self.config.n_neurons, "neuron count");
        self.weights = weights;
    }

    /// Adaptive-threshold values per neuron.
    pub fn thetas(&self) -> Vec<f32> {
        self.neurons.iter().map(|n| n.theta).collect()
    }

    /// Presents one image for `config.timesteps` steps.
    ///
    /// Returns per-neuron spike counts. When `learn` is set, STDP updates
    /// and per-sample weight normalisation are applied.
    ///
    /// # Errors
    ///
    /// [`SnnError::InputSizeMismatch`] if `pixels` does not match the
    /// configured input size.
    pub fn run_sample(
        &mut self,
        pixels: &[f32],
        rng: &mut StdRng,
        learn: bool,
    ) -> Result<Vec<u32>, SnnError> {
        if pixels.len() != self.config.n_inputs {
            return Err(SnnError::InputSizeMismatch {
                provided: pixels.len(),
                expected: self.config.n_inputs,
            });
        }
        let n = self.config.n_neurons;
        let mut counts = vec![0u32; n];
        let mut active: Vec<usize> = Vec::with_capacity(64);
        let mut drive = vec![0.0f32; n];
        let mut fired: Vec<usize> = Vec::with_capacity(8);

        // Fresh membrane state per sample (theta persists across samples
        // during training; at inference it is frozen, so evaluation leaves
        // the network unchanged).
        let saved_thetas: Option<Vec<f32>> = if learn {
            None
        } else {
            Some(self.neurons.iter().map(|n| n.theta).collect())
        };
        for neuron in &mut self.neurons {
            neuron.v = self.config.lif.v_rest;
            neuron.refractory_left = 0.0;
        }

        for _ in 0..self.config.timesteps {
            self.config.encoder.encode_step(pixels, rng, &mut active);
            if learn {
                self.stdp.decay(self.config.dt_ms);
                self.stdp.on_pre_spikes(&mut self.weights, &active);
            }
            // Accumulate synaptic drive from this step's input spikes.
            drive.fill(0.0);
            let w_max = self.weights.w_max();
            for &i in &active {
                let row = self.weights.fan_out(i);
                if self.config.clamp_reads {
                    for (d, &w) in drive.iter_mut().zip(row) {
                        *d += WeightMatrix::effective(w, w_max);
                    }
                } else {
                    for (d, &w) in drive.iter_mut().zip(row) {
                        if w.is_finite() {
                            *d += w;
                        }
                    }
                }
            }
            // Integrate, then resolve who fires.
            fired.clear();
            if self.config.hard_wta {
                let mut winner: Option<(usize, f32)> = None;
                for (j, neuron) in self.neurons.iter_mut().enumerate() {
                    if neuron.integrate(&self.config.lif, drive[j], self.config.dt_ms) {
                        let margin = neuron.threshold_margin(&self.config.lif);
                        if winner.is_none_or(|(_, best)| margin > best) {
                            winner = Some((j, margin));
                        }
                    }
                }
                if let Some((j, _)) = winner {
                    self.neurons[j].fire(&self.config.lif);
                    fired.push(j);
                    counts[j] += 1;
                }
            } else {
                for (j, neuron) in self.neurons.iter_mut().enumerate() {
                    if neuron.step(&self.config.lif, drive[j], self.config.dt_ms) {
                        fired.push(j);
                        counts[j] += 1;
                    }
                }
            }
            if learn && !fired.is_empty() {
                self.stdp.on_post_spikes(&mut self.weights, &fired);
            }
            // Lateral inhibition: every spike hyperpolarises all other
            // neurons, enforcing competition.
            if !fired.is_empty() {
                let strength = self.config.inhibition_mv * fired.len() as f32;
                let mut is_fired = vec![false; n];
                for &j in &fired {
                    is_fired[j] = true;
                }
                for (j, neuron) in self.neurons.iter_mut().enumerate() {
                    if !is_fired[j] {
                        neuron.inhibit(&self.config.lif, strength);
                    }
                }
            }
        }

        if learn {
            self.weights.normalize_columns(self.config.norm_target);
            self.stdp.reset();
        }
        if let Some(saved) = saved_thetas {
            for (neuron, theta) in self.neurons.iter_mut().zip(saved) {
                neuron.theta = theta;
            }
        }
        Ok(counts)
    }

    /// Trains on every sample of `dataset` once (one epoch), with spike
    /// generation seeded by `seed`. Returns the total number of excitatory
    /// spikes observed.
    ///
    /// # Panics
    ///
    /// Panics if the dataset images do not match the input size (the
    /// datasets in this workspace always do).
    pub fn train_epoch(&mut self, dataset: &Dataset, seed: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0u64;
        for (image, _) in dataset.iter() {
            let counts = self
                .run_sample(image.pixels(), &mut rng, true)
                .expect("dataset image matches configured input size");
            total += counts.iter().map(|&c| c as u64).sum::<u64>();
        }
        total
    }

    /// Assigns a class to each neuron from its responses on `dataset`
    /// (inference only, no learning).
    pub fn label_neurons(&mut self, dataset: &Dataset, seed: u64) -> NeuronLabeler {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut response = vec![[0u64; 10]; self.config.n_neurons];
        for (image, label) in dataset.iter() {
            let counts = self
                .run_sample(image.pixels(), &mut rng, false)
                .expect("dataset image matches configured input size");
            for (j, &c) in counts.iter().enumerate() {
                response[j][label as usize] += c as u64;
            }
        }
        NeuronLabeler::from_responses(&response)
    }

    /// Classification accuracy on `dataset` using `labeler`'s neuron
    /// assignments (inference only).
    pub fn evaluate(&mut self, dataset: &Dataset, labeler: &NeuronLabeler, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut correct = 0usize;
        for (image, label) in dataset.iter() {
            let counts = self
                .run_sample(image.pixels(), &mut rng, false)
                .expect("dataset image matches configured input size");
            if labeler.predict(&counts) == Some(label) {
                correct += 1;
            }
        }
        if dataset.is_empty() {
            0.0
        } else {
            correct as f64 / dataset.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_data::{SynthDigits, SyntheticSource};

    fn small_net() -> DiehlCookNetwork {
        DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(30))
    }

    #[test]
    fn network_produces_spikes_on_input() {
        let mut net = small_net();
        let data = SynthDigits.generate(5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = net
            .run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap();
        assert!(counts.iter().sum::<u32>() > 0, "some neuron should fire");
    }

    #[test]
    fn blank_input_produces_no_spikes() {
        let mut net = small_net();
        let blank = vec![0.0f32; 784];
        let mut rng = StdRng::seed_from_u64(2);
        let counts = net.run_sample(&blank, &mut rng, false).unwrap();
        assert_eq!(counts.iter().sum::<u32>(), 0);
    }

    #[test]
    fn wrong_input_size_is_an_error() {
        let mut net = small_net();
        let mut rng = StdRng::seed_from_u64(2);
        let err = net.run_sample(&[0.0; 10], &mut rng, false);
        assert!(matches!(err, Err(SnnError::InputSizeMismatch { .. })));
    }

    #[test]
    fn training_changes_weights_and_normalises() {
        let mut net = small_net();
        let before = net.weights().as_slice().to_vec();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert_ne!(net.weights().as_slice(), &before[..]);
        // Column sums normalised.
        let w = net.weights();
        for j in 0..20 {
            let sum: f32 = (0..784).map(|i| w.raw(i, j)).sum();
            assert!((sum - 78.0).abs() < 2.0, "column {j} sum {sum}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = SynthDigits.generate(10, 3);
        let run = || {
            let mut net = small_net();
            net.train_epoch(&data, 4);
            net.weights().as_slice().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inhibition_limits_simultaneous_winners() {
        // With strong inhibition, total spikes should be far below the
        // no-competition bound.
        let mut config = SnnConfig::for_neurons(30).with_timesteps(50);
        config.inhibition_mv = 0.0;
        let data = SynthDigits.generate(1, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut free = DiehlCookNetwork::new(config.clone());
        let free_spikes: u32 = free
            .run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap()
            .iter()
            .sum();
        let mut config2 = config;
        config2.inhibition_mv = 12.0;
        let mut wta = DiehlCookNetwork::new(config2);
        let mut rng2 = StdRng::seed_from_u64(6);
        let wta_spikes: u32 = wta
            .run_sample(data.get(0).0.pixels(), &mut rng2, false)
            .unwrap()
            .iter()
            .sum();
        assert!(
            wta_spikes < free_spikes,
            "inhibition should suppress spiking ({wta_spikes} vs {free_spikes})"
        );
    }

    #[test]
    fn thetas_grow_with_activity() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert!(net.thetas().iter().any(|&t| t > 0.0));
    }

    #[test]
    fn set_weights_roundtrip() {
        let mut net = small_net();
        let mut w = net.weights().clone();
        w.set(0, 0, 0.77);
        net.set_weights(w);
        assert_eq!(net.weights().raw(0, 0), 0.77);
    }

    #[test]
    #[should_panic(expected = "neuron count")]
    fn set_weights_shape_mismatch_panics() {
        let mut net = small_net();
        let w = WeightMatrix::random(784, 5, 1.0, 0);
        net.set_weights(w);
    }
}
