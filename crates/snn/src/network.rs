//! The unsupervised SNN architecture of paper Fig. 4(a): a Poisson-coded
//! input layer fully connected to an excitatory LIF layer with lateral
//! inhibition (winner-take-all competition) and STDP learning.
//!
//! The execution core is split into two halves so inference can run on many
//! threads at once:
//!
//! * [`NetworkParams`] — everything that is *frozen* during inference
//!   (configuration, synaptic weights, adaptive thresholds). Shared by
//!   reference across worker threads.
//! * [`RunState`] — the per-run scratch (membrane potentials, refractory
//!   timers, drive/fired buffers). Each worker owns one and reuses it
//!   across samples.
//!
//! [`DiehlCookNetwork`] composes the two with the STDP learning state and
//! keeps the training-facing API (`train_epoch`, `run_sample` with
//! `learn = true`); its inference entry points (`evaluate`,
//! `label_neurons`) delegate to the [`BatchEvaluator`](crate::engine::BatchEvaluator).

use crate::coding::PoissonEncoder;
use crate::engine::BatchEvaluator;
use crate::eval::NeuronLabeler;
use crate::neuron::{LifConfig, LifState};
use crate::stdp::{StdpConfig, StdpState};
use crate::synapse::WeightMatrix;
use crate::SnnError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd_data::Dataset;

/// Complete configuration of a [`DiehlCookNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnnConfig {
    /// Number of input lines (pixels); 784 for 28×28 images.
    pub n_inputs: usize,
    /// Number of excitatory neurons (the paper's N400…N3600).
    pub n_neurons: usize,
    /// Timesteps each sample is presented for.
    pub timesteps: usize,
    /// Simulation timestep (ms).
    pub dt_ms: f32,
    /// Neuron parameters.
    pub lif: LifConfig,
    /// Plasticity parameters.
    pub stdp: StdpConfig,
    /// Input spike encoder.
    pub encoder: PoissonEncoder,
    /// Lateral inhibition strength (mV per competing spike).
    pub inhibition_mv: f32,
    /// Per-neuron input-weight normalisation target.
    pub norm_target: f32,
    /// Maximum synaptic weight.
    pub w_max: f32,
    /// Clamp weight reads to `[0, w_max]` (bounded hardware synapse).
    /// Disabling exposes raw FP32 corruption (paper's MSB observation).
    pub clamp_reads: bool,
    /// Hard winner-take-all: at most one neuron (the one with the largest
    /// threshold margin) fires per timestep, sharpening specialisation.
    pub hard_wta: bool,
    /// Seed for weight initialisation.
    pub weight_seed: u64,
}

impl SnnConfig {
    /// Configuration for a network with `n_neurons` excitatory neurons and
    /// 784 inputs, with Diehl & Cook style defaults.
    pub fn for_neurons(n_neurons: usize) -> Self {
        Self {
            n_inputs: sparkxd_data::IMAGE_PIXELS,
            n_neurons,
            timesteps: 100,
            dt_ms: 1.0,
            lif: LifConfig::excitatory(),
            stdp: StdpConfig::standard(),
            encoder: PoissonEncoder::standard(),
            inhibition_mv: 50.0,
            norm_target: 78.0,
            w_max: 1.0,
            clamp_reads: true,
            hard_wta: false,
            weight_seed: 0xD1EC,
        }
    }

    /// Sets the presentation window (builder style).
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        self.timesteps = timesteps;
        self
    }

    /// Sets the weight-initialisation seed (builder style).
    pub fn with_weight_seed(mut self, seed: u64) -> Self {
        self.weight_seed = seed;
        self
    }

    /// Enables or disables clamped weight reads (builder style).
    pub fn with_clamp_reads(mut self, clamp: bool) -> Self {
        self.clamp_reads = clamp;
        self
    }
}

/// The immutable half of a network during inference: configuration,
/// synaptic weights and the adaptive thresholds learned during training.
///
/// Inference is a pure function of `(params, sample, rng)` — see
/// [`NetworkParams::run_sample`] — so a `&NetworkParams` can be shared by
/// any number of worker threads, each driving its own [`RunState`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkParams {
    config: SnnConfig,
    weights: WeightMatrix,
    thetas: Vec<f32>,
}

impl NetworkParams {
    /// Fresh parameters with randomly initialised weights and zeroed
    /// adaptive thresholds.
    pub fn new(config: SnnConfig) -> Self {
        let weights = WeightMatrix::random(
            config.n_inputs,
            config.n_neurons,
            config.w_max,
            config.weight_seed,
        );
        let thetas = vec![0.0; config.n_neurons];
        Self {
            config,
            weights,
            thetas,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.config
    }

    /// The synaptic weights (the data SparkXD maps into DRAM).
    pub fn weights(&self) -> &WeightMatrix {
        &self.weights
    }

    /// Mutable access to the weights (error injection path).
    pub fn weights_mut(&mut self) -> &mut WeightMatrix {
        &mut self.weights
    }

    /// Replaces the weight matrix (e.g. with a corrupted copy).
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the configuration.
    pub fn set_weights(&mut self, weights: WeightMatrix) {
        assert_eq!(weights.inputs(), self.config.n_inputs, "input count");
        assert_eq!(weights.neurons(), self.config.n_neurons, "neuron count");
        self.weights = weights;
    }

    /// Adaptive-threshold values per neuron.
    pub fn thetas(&self) -> &[f32] {
        &self.thetas
    }

    /// Presents one image for `config.timesteps` steps without learning.
    ///
    /// `state` is reset at entry, so any (correctly sized) scratch can be
    /// reused across samples and threads; `self` is untouched. Returns the
    /// per-neuron spike counts.
    ///
    /// # Errors
    ///
    /// [`SnnError::InputSizeMismatch`] if `pixels` does not match the
    /// configured input size.
    pub fn run_sample(
        &self,
        state: &mut RunState,
        pixels: &[f32],
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, SnnError> {
        if pixels.len() != self.config.n_inputs {
            return Err(SnnError::InputSizeMismatch {
                provided: pixels.len(),
                expected: self.config.n_inputs,
            });
        }
        let mut counts = vec![0u32; self.config.n_neurons];
        state.begin_sample(&self.config, &self.thetas);
        for _ in 0..self.config.timesteps {
            self.config
                .encoder
                .encode_step(pixels, rng, &mut state.active);
            state.accumulate_drive(&self.config, &self.weights);
            state.resolve_firing(&self.config, &mut counts);
            state.apply_inhibition(&self.config);
        }
        Ok(counts)
    }
}

/// Per-run mutable scratch of one simulation worker: membrane state,
/// synaptic drive and spike buffers. Reused across samples — every buffer
/// is reset by `begin_sample` — so the hot loop allocates nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunState {
    /// Membrane state; `theta` holds a per-sample working copy of the
    /// frozen thresholds (they decay/grow *within* a presentation window,
    /// which must not leak back into the parameters at inference).
    neurons: Vec<LifState>,
    /// Synaptic drive accumulated this timestep (mV per neuron).
    drive: Vec<f32>,
    /// Input lines that spiked this timestep.
    active: Vec<usize>,
    /// Neurons that fired this timestep.
    fired: Vec<usize>,
    /// Dense mask of `fired` (inhibition pass).
    is_fired: Vec<bool>,
}

impl RunState {
    /// Scratch sized for `params`.
    pub fn for_params(params: &NetworkParams) -> Self {
        let mut state = Self::default();
        state.begin_sample(&params.config, &params.thetas);
        state
    }

    /// The neurons that fired in the most recent timestep.
    pub fn last_fired(&self) -> &[usize] {
        &self.fired
    }

    /// Resets membrane state for a fresh sample: potentials to rest,
    /// refractory timers cleared, thresholds copied from `thetas`.
    fn begin_sample(&mut self, config: &SnnConfig, thetas: &[f32]) {
        let n = thetas.len();
        self.neurons.resize(n, LifState::default());
        self.drive.resize(n, 0.0);
        self.is_fired.resize(n, false);
        for (neuron, &theta) in self.neurons.iter_mut().zip(thetas) {
            *neuron = LifState {
                v: config.lif.v_rest,
                theta,
                refractory_left: 0.0,
            };
        }
        self.active.clear();
        self.fired.clear();
    }

    /// Accumulates this timestep's synaptic drive from the active inputs.
    fn accumulate_drive(&mut self, config: &SnnConfig, weights: &WeightMatrix) {
        self.drive.fill(0.0);
        let w_max = weights.w_max();
        for &i in &self.active {
            let row = weights.fan_out(i);
            if config.clamp_reads {
                for (d, &w) in self.drive.iter_mut().zip(row) {
                    *d += WeightMatrix::effective(w, w_max);
                }
            } else {
                for (d, &w) in self.drive.iter_mut().zip(row) {
                    if w.is_finite() {
                        *d += w;
                    }
                }
            }
        }
    }

    /// Integrates the drive and resolves who fires (soft or hard WTA),
    /// recording spikes into `fired` and `counts`.
    fn resolve_firing(&mut self, config: &SnnConfig, counts: &mut [u32]) {
        self.fired.clear();
        if config.hard_wta {
            let mut winner: Option<(usize, f32)> = None;
            for (j, neuron) in self.neurons.iter_mut().enumerate() {
                if neuron.integrate(&config.lif, self.drive[j], config.dt_ms) {
                    let margin = neuron.threshold_margin(&config.lif);
                    if winner.is_none_or(|(_, best)| margin > best) {
                        winner = Some((j, margin));
                    }
                }
            }
            if let Some((j, _)) = winner {
                self.neurons[j].fire(&config.lif);
                self.fired.push(j);
                counts[j] += 1;
            }
        } else {
            for (j, neuron) in self.neurons.iter_mut().enumerate() {
                if neuron.step(&config.lif, self.drive[j], config.dt_ms) {
                    self.fired.push(j);
                    counts[j] += 1;
                }
            }
        }
    }

    /// Lateral inhibition: every spike hyperpolarises all other neurons,
    /// enforcing competition.
    fn apply_inhibition(&mut self, config: &SnnConfig) {
        if self.fired.is_empty() {
            return;
        }
        let strength = config.inhibition_mv * self.fired.len() as f32;
        self.is_fired.fill(false);
        for &j in &self.fired {
            self.is_fired[j] = true;
        }
        for (j, neuron) in self.neurons.iter_mut().enumerate() {
            if !self.is_fired[j] {
                neuron.inhibit(&config.lif, strength);
            }
        }
    }
}

/// The unsupervised spiking network: frozen [`NetworkParams`] plus the STDP
/// learning state that mutates them during training.
///
/// # Example
///
/// ```
/// use sparkxd_data::{SynthDigits, SyntheticSource};
/// use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
///
/// let config = SnnConfig::for_neurons(20).with_timesteps(20);
/// let mut net = DiehlCookNetwork::new(config);
/// let data = SynthDigits.generate(10, 0);
/// net.train_epoch(&data, 1);
/// assert_eq!(net.weights().neurons(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiehlCookNetwork {
    params: NetworkParams,
    stdp: StdpState,
}

impl DiehlCookNetwork {
    /// Builds a network with randomly initialised weights.
    pub fn new(config: SnnConfig) -> Self {
        let params = NetworkParams::new(config);
        let stdp = StdpState::new(
            params.config.stdp,
            params.config.n_inputs,
            params.config.n_neurons,
        );
        Self { params, stdp }
    }

    /// Wraps existing parameters with fresh (zeroed) STDP traces.
    pub fn from_params(params: NetworkParams) -> Self {
        let stdp = StdpState::new(
            params.config.stdp,
            params.config.n_inputs,
            params.config.n_neurons,
        );
        Self { params, stdp }
    }

    /// The frozen half of the network — hand `&net.params()` to the
    /// [`BatchEvaluator`](crate::engine::BatchEvaluator) for parallel
    /// inference.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Consumes the network, keeping only the inference parameters.
    pub fn into_params(self) -> NetworkParams {
        self.params
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.params.config
    }

    /// The synaptic weights (the data SparkXD maps into DRAM).
    pub fn weights(&self) -> &WeightMatrix {
        &self.params.weights
    }

    /// Mutable access to the weights (error injection path).
    pub fn weights_mut(&mut self) -> &mut WeightMatrix {
        &mut self.params.weights
    }

    /// Replaces the weight matrix (e.g. with a corrupted copy).
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the configuration.
    pub fn set_weights(&mut self, weights: WeightMatrix) {
        self.params.set_weights(weights);
    }

    /// Adaptive-threshold values per neuron.
    pub fn thetas(&self) -> &[f32] {
        self.params.thetas()
    }

    /// Presents one image for `config.timesteps` steps.
    ///
    /// Returns per-neuron spike counts. When `learn` is set, STDP updates
    /// and per-sample weight normalisation are applied and the adaptive
    /// thresholds persist; otherwise this is exactly
    /// [`NetworkParams::run_sample`] on a fresh scratch and the network is
    /// left unchanged.
    ///
    /// # Errors
    ///
    /// [`SnnError::InputSizeMismatch`] if `pixels` does not match the
    /// configured input size.
    pub fn run_sample(
        &mut self,
        pixels: &[f32],
        rng: &mut StdRng,
        learn: bool,
    ) -> Result<Vec<u32>, SnnError> {
        if !learn {
            let mut state = RunState::for_params(&self.params);
            return self.params.run_sample(&mut state, pixels, rng);
        }
        let mut state = RunState::default();
        self.train_sample(&mut state, pixels, rng)
    }

    /// Training-mode presentation of one sample, reusing `state` scratch.
    fn train_sample(
        &mut self,
        state: &mut RunState,
        pixels: &[f32],
        rng: &mut StdRng,
    ) -> Result<Vec<u32>, SnnError> {
        let Self { params, stdp } = self;
        if pixels.len() != params.config.n_inputs {
            return Err(SnnError::InputSizeMismatch {
                provided: pixels.len(),
                expected: params.config.n_inputs,
            });
        }
        let config = &params.config;
        let weights = &mut params.weights;
        let mut counts = vec![0u32; config.n_neurons];
        state.begin_sample(config, &params.thetas);
        for _ in 0..config.timesteps {
            config.encoder.encode_step(pixels, rng, &mut state.active);
            stdp.decay(config.dt_ms);
            stdp.on_pre_spikes(weights, &state.active);
            state.accumulate_drive(config, weights);
            state.resolve_firing(config, &mut counts);
            if !state.fired.is_empty() {
                stdp.on_post_spikes(weights, &state.fired);
            }
            state.apply_inhibition(config);
        }
        weights.normalize_columns(config.norm_target);
        stdp.reset();
        // Thresholds are learned state: persist them across samples.
        for (theta, neuron) in params.thetas.iter_mut().zip(&state.neurons) {
            *theta = neuron.theta;
        }
        Ok(counts)
    }

    /// Trains on every sample of `dataset` once (one epoch), with spike
    /// generation seeded by `seed`. Returns the total number of excitatory
    /// spikes observed.
    ///
    /// Training is inherently sequential (STDP updates feed forward into
    /// the next sample), so this threads one RNG through the epoch exactly
    /// as previous revisions did.
    ///
    /// # Panics
    ///
    /// Panics if the dataset images do not match the input size (the
    /// datasets in this workspace always do).
    pub fn train_epoch(&mut self, dataset: &Dataset, seed: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = RunState::default();
        let mut total = 0u64;
        for (image, _) in dataset.iter() {
            let counts = self
                .train_sample(&mut state, image.pixels(), &mut rng)
                .expect("dataset image matches configured input size");
            total += counts.iter().map(|&c| c as u64).sum::<u64>();
        }
        total
    }

    /// Assigns a class to each neuron from its responses on `dataset`
    /// (inference only, no learning). Samples are evaluated concurrently by
    /// the [`BatchEvaluator`](crate::engine::BatchEvaluator); the result is
    /// independent of the worker count.
    pub fn label_neurons(&self, dataset: &Dataset, seed: u64) -> NeuronLabeler {
        BatchEvaluator::from_env().label_neurons(&self.params, dataset, seed)
    }

    /// Classification accuracy on `dataset` using `labeler`'s neuron
    /// assignments (inference only, parallel across samples).
    pub fn evaluate(&self, dataset: &Dataset, labeler: &NeuronLabeler, seed: u64) -> f64 {
        BatchEvaluator::from_env().evaluate(&self.params, dataset, labeler, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkxd_data::{SynthDigits, SyntheticSource};

    fn small_net() -> DiehlCookNetwork {
        DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(30))
    }

    #[test]
    fn network_produces_spikes_on_input() {
        let mut net = small_net();
        let data = SynthDigits.generate(5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = net
            .run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap();
        assert!(counts.iter().sum::<u32>() > 0, "some neuron should fire");
    }

    #[test]
    fn blank_input_produces_no_spikes() {
        let mut net = small_net();
        let blank = vec![0.0f32; 784];
        let mut rng = StdRng::seed_from_u64(2);
        let counts = net.run_sample(&blank, &mut rng, false).unwrap();
        assert_eq!(counts.iter().sum::<u32>(), 0);
    }

    #[test]
    fn wrong_input_size_is_an_error() {
        let mut net = small_net();
        let mut rng = StdRng::seed_from_u64(2);
        let err = net.run_sample(&[0.0; 10], &mut rng, false);
        assert!(matches!(err, Err(SnnError::InputSizeMismatch { .. })));
        let params = net.params().clone();
        let mut state = RunState::for_params(&params);
        let err = params.run_sample(&mut state, &[0.0; 10], &mut rng);
        assert!(matches!(err, Err(SnnError::InputSizeMismatch { .. })));
    }

    #[test]
    fn training_changes_weights_and_normalises() {
        let mut net = small_net();
        let before = net.weights().as_slice().to_vec();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert_ne!(net.weights().as_slice(), &before[..]);
        // Column sums normalised.
        let w = net.weights();
        for j in 0..20 {
            let sum: f32 = (0..784).map(|i| w.raw(i, j)).sum();
            assert!((sum - 78.0).abs() < 2.0, "column {j} sum {sum}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = SynthDigits.generate(10, 3);
        let run = || {
            let mut net = small_net();
            net.train_epoch(&data, 4);
            net.weights().as_slice().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inference_leaves_network_unchanged() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        let before = net.clone();
        let mut rng = StdRng::seed_from_u64(9);
        net.run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap();
        let _ = net.evaluate(&data, &net.label_neurons(&data, 5), 6);
        assert_eq!(net, before, "inference must not mutate the network");
    }

    #[test]
    fn params_run_sample_matches_network_inference() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        let mut rng_a = StdRng::seed_from_u64(11);
        let via_net = net
            .run_sample(data.get(0).0.pixels(), &mut rng_a, false)
            .unwrap();
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut state = RunState::for_params(net.params());
        let via_params = net
            .params()
            .run_sample(&mut state, data.get(0).0.pixels(), &mut rng_b)
            .unwrap();
        assert_eq!(via_net, via_params);
    }

    #[test]
    fn run_state_reuse_is_bit_identical_to_fresh_state() {
        let mut net = small_net();
        let data = SynthDigits.generate(6, 3);
        net.train_epoch(&data, 4);
        let params = net.params();
        let mut reused = RunState::for_params(params);
        for (i, (image, _)) in data.iter().enumerate() {
            let mut rng_a = StdRng::seed_from_u64(100 + i as u64);
            let mut rng_b = StdRng::seed_from_u64(100 + i as u64);
            let with_reuse = params
                .run_sample(&mut reused, image.pixels(), &mut rng_a)
                .unwrap();
            let mut fresh = RunState::for_params(params);
            let with_fresh = params
                .run_sample(&mut fresh, image.pixels(), &mut rng_b)
                .unwrap();
            assert_eq!(with_reuse, with_fresh, "sample {i}");
        }
    }

    #[test]
    fn inhibition_limits_simultaneous_winners() {
        // With strong inhibition, total spikes should be far below the
        // no-competition bound.
        let mut config = SnnConfig::for_neurons(30).with_timesteps(50);
        config.inhibition_mv = 0.0;
        let data = SynthDigits.generate(1, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut free = DiehlCookNetwork::new(config.clone());
        let free_spikes: u32 = free
            .run_sample(data.get(0).0.pixels(), &mut rng, false)
            .unwrap()
            .iter()
            .sum();
        let mut config2 = config;
        config2.inhibition_mv = 12.0;
        let mut wta = DiehlCookNetwork::new(config2);
        let mut rng2 = StdRng::seed_from_u64(6);
        let wta_spikes: u32 = wta
            .run_sample(data.get(0).0.pixels(), &mut rng2, false)
            .unwrap()
            .iter()
            .sum();
        assert!(
            wta_spikes < free_spikes,
            "inhibition should suppress spiking ({wta_spikes} vs {free_spikes})"
        );
    }

    #[test]
    fn thetas_grow_with_activity() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        assert!(net.thetas().iter().any(|&t| t > 0.0));
    }

    #[test]
    fn set_weights_roundtrip() {
        let mut net = small_net();
        let mut w = net.weights().clone();
        w.set(0, 0, 0.77);
        net.set_weights(w);
        assert_eq!(net.weights().raw(0, 0), 0.77);
    }

    #[test]
    fn from_params_roundtrip() {
        let mut net = small_net();
        let data = SynthDigits.generate(10, 3);
        net.train_epoch(&data, 4);
        let rebuilt = DiehlCookNetwork::from_params(net.clone().into_params());
        assert_eq!(rebuilt.weights(), net.weights());
        assert_eq!(rebuilt.thetas(), net.thetas());
    }

    #[test]
    #[should_panic(expected = "neuron count")]
    fn set_weights_shape_mismatch_panics() {
        let mut net = small_net();
        let w = WeightMatrix::random(784, 5, 1.0, 0);
        net.set_weights(w);
    }
}
