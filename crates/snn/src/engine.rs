//! Parallel batch-execution engine.
//!
//! Every sample presentation at inference is independent: the thresholds
//! are frozen and membrane state is reset per sample (see
//! [`NetworkParams::run_sample`]). The engine exploits that twice over:
//!
//! * a dataset is sharded across scoped worker threads, each owning one
//!   reusable scratch, and
//! * within a worker, samples are presented in chunks of B through
//!   [`NetworkParams::run_batch`], which streams each effective-weight row
//!   once per chunk instead of once per sample.
//!
//! The spike-train RNG for sample `i` is derived from `(seed, i)`, so the
//! result is bit-identical for **any** worker count *and any batch size*,
//! including fully serial scalar execution.
//!
//! Worker counts come from `std::thread::available_parallelism()`, with
//! the `SPARKXD_THREADS` environment variable as an override (`1` forces
//! serial execution; higher values pin the exact thread count). The batch
//! size defaults to [`DEFAULT_BATCH`], with `SPARKXD_BATCH` as an override
//! (`1` forces the scalar read path), and the neuron-tile width of the
//! batched drive matrix defaults to [`DEFAULT_TILE`], with `SPARKXD_TILE`
//! as an override (any value ≥ `n_neurons` disables tiling).
//!
//! # Kernel dispatch
//!
//! The hot inner loops (drive accumulation, LIF lane integration, the
//! inhibition sweep) run through the runtime-dispatched kernels of
//! [`crate::kernels`]:
//!
//! | `SPARKXD_KERNEL` | meaning                                            |
//! |------------------|----------------------------------------------------|
//! | `auto` (default) | widest kernel the host supports (AVX2 if detected) |
//! | `scalar`         | portable unrolled-scalar kernel                    |
//! | `avx2`           | x86_64 AVX2 kernel; warns + falls back off-AVX2    |
//!
//! [`BatchEvaluator::with_kernel`] pins the choice programmatically.
//! The kernel never changes results, only wall time: the AVX2 lanes
//! compute the exact scalar IEEE operation sequence (lanewise ops in
//! unchanged per-element order, no FMA, no reassociated reductions), so
//! every `{kernel × batch × thread × tile}` combination is bit-identical
//! — see the [`crate::kernels`] module docs for the full argument and
//! `tests/kernel_invariance.rs` for the proof battery.

use crate::eval::NeuronLabeler;
use crate::kernels::{Kernel, KernelChoice};
use crate::network::{BatchState, NetworkParams, RunState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd_data::Dataset;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable overriding the engine's worker count.
pub const THREADS_ENV: &str = "SPARKXD_THREADS";

/// Environment variable overriding the engine's per-worker batch size.
pub const BATCH_ENV: &str = "SPARKXD_BATCH";

/// Environment variable overriding the batched drive matrix's neuron-tile
/// width (see [`DEFAULT_TILE`]).
pub const TILE_ENV: &str = "SPARKXD_TILE";

/// Environment variable selecting the hot-loop kernel
/// (`auto` | `scalar` | `avx2`; see [`kernel_choice`]).
pub const KERNEL_ENV: &str = "SPARKXD_KERNEL";

/// Samples presented together per [`NetworkParams::run_batch`] call when
/// neither [`BatchEvaluator::with_batch`] nor `SPARKXD_BATCH` says
/// otherwise. Large enough to amortise weight-row streaming and the
/// per-presentation spike-plan build — measured fastest in the 2–8 band
/// at N400, degrading beyond it.
///
/// The batch size no longer has to keep the whole `[B × n_neurons]`
/// drive slab cache-resident: beyond ~N1600 that slab outgrows L1 at any
/// useful B, so [`NetworkParams::run_batch`] sweeps it in neuron tiles of
/// [`DEFAULT_TILE`] lanes (`SPARKXD_TILE` overrides; see
/// [`tile_width`]) and only the `[B × tile]` working set must stay hot.
pub const DEFAULT_BATCH: usize = 4;

/// Neuron-tile width of the batched drive matrix when neither
/// [`BatchState::with_tile`](crate::network::BatchState::with_tile) nor
/// `SPARKXD_TILE` says otherwise.
///
/// Drive accumulation touches the `[B × tile]` drive tile once per
/// distinct active row, so the tile — not the full `[B × n_neurons]`
/// slab — is the read path's resident working set. At the default
/// `B = 4`, a 512-lane tile is 8 KiB of drive plus a 2 KiB row slice:
/// comfortably L1 even with the membrane slabs of the lane being
/// integrated. Networks with `n_neurons ≤ tile` (the paper's N400 at
/// this default) run as a single tile, which is exactly the untiled
/// path; the tile width never changes results, only wall time.
pub const DEFAULT_TILE: usize = 512;

/// Workers the engine currently has busy on *outer* parallel levels, so a
/// nested fan-out (a device sweep whose pipelines evaluate in parallel, a
/// report section training networks) sizes itself to the leftover budget
/// instead of oversubscribing the machine by workers².
static BUSY_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// RAII registration of `extra` busy workers against the engine's global
/// thread budget; released on drop. [`parallel_map`] takes one per call —
/// reach for it directly only when hand-rolling a worker pool (see
/// `sparkxd-bench`'s streaming report runner).
#[derive(Debug)]
pub struct WorkerReservation {
    extra: usize,
}

impl WorkerReservation {
    /// Registers `threads - 1` busy workers (the calling thread is not
    /// *extra* — it was already accounted for by any outer level).
    pub fn for_pool(threads: usize) -> Self {
        let extra = threads.saturating_sub(1);
        BUSY_WORKERS.fetch_add(extra, Ordering::Relaxed);
        Self { extra }
    }
}

impl Drop for WorkerReservation {
    fn drop(&mut self) {
        BUSY_WORKERS.fetch_sub(self.extra, Ordering::Relaxed);
    }
}

/// Reads a `usize` tuning override from environment variable `var`.
///
/// Every engine knob shares this one parse: `0` is clamped to `1` (both
/// knobs mean "serial", never "off") and an unparsable value is treated as
/// unset — but instead of silently falling back, a warning is printed to
/// stderr **once per variable per process**, so a typo like
/// `SPARKXD_THREADS=fourteen` cannot quietly run a benchmark on the wrong
/// configuration.
pub fn env_usize_override(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    parse_usize_override(var, &raw)
}

/// The parse half of [`env_usize_override`], separated from the
/// environment read so the fallback and clamp behaviour are unit-testable
/// without process-global env mutation.
fn parse_usize_override(var: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => {
            if warn_once(var) {
                eprintln!(
                    "sparkxd: ignoring unparsable {var}={raw:?} \
                     (expected a non-negative integer), using the default"
                );
            }
            None
        }
    }
}

/// The requested hot-loop kernel: the `SPARKXD_KERNEL` override if set
/// and parsable, else [`KernelChoice::Auto`]. Like the numeric knobs, an
/// unparsable value warns on stderr once per process and behaves as
/// unset.
pub fn kernel_choice() -> KernelChoice {
    std::env::var(KERNEL_ENV)
        .ok()
        .and_then(|raw| parse_kernel_override(KERNEL_ENV, &raw))
        .unwrap_or_default()
}

/// The parse half of [`kernel_choice`], separated from the environment
/// read so the fallback behaviour is unit-testable without process-global
/// env mutation (mirrors [`parse_usize_override`]).
fn parse_kernel_override(var: &str, raw: &str) -> Option<KernelChoice> {
    match KernelChoice::parse(raw) {
        Some(choice) => Some(choice),
        None => {
            if warn_once(var) {
                eprintln!(
                    "sparkxd: ignoring unparsable {var}={raw:?} \
                     (expected auto|scalar|avx2), using auto"
                );
            }
            None
        }
    }
}

/// The resolved hot-loop kernel for this host: [`kernel_choice`] passed
/// through [`KernelChoice::resolve`] (runtime feature detection). The
/// kernel only ever changes wall time, never results.
pub fn kernel() -> Kernel {
    kernel_choice().resolve()
}

/// Registers `var` in the warned-about set; `true` exactly once per
/// variable per process, so repeated engine calls don't spam stderr.
pub(crate) fn warn_once(var: &str) -> bool {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .map(|mut seen| seen.insert(var.to_string()))
        .unwrap_or(false)
}

/// Number of workers to use for `jobs` independent work items: the
/// `SPARKXD_THREADS` override if set (via [`env_usize_override`]), else
/// the machine's available parallelism — minus the workers outer parallel
/// levels already keep busy, and never more than `jobs`.
///
/// The worker count only ever changes wall time, not results: every
/// engine aggregate is bit-identical for any count by construction.
pub fn worker_count(jobs: usize) -> usize {
    let configured = env_usize_override(THREADS_ENV).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    configured
        .saturating_sub(BUSY_WORKERS.load(Ordering::Relaxed))
        .max(1)
        .min(jobs.max(1))
}

/// The engine's batch size: the `SPARKXD_BATCH` override if set (via
/// [`env_usize_override`]), else [`DEFAULT_BATCH`]. Like the worker
/// count, the batch size only ever changes wall time.
pub fn batch_size() -> usize {
    env_usize_override(BATCH_ENV).unwrap_or(DEFAULT_BATCH)
}

/// The drive matrix's neuron-tile width: the `SPARKXD_TILE` override if
/// set (via [`env_usize_override`]), else [`DEFAULT_TILE`].
/// [`NetworkParams::run_batch`] clamps the width into `[1, n_neurons]`,
/// so any large value (e.g. `usize::MAX`) selects the untiled path. Like
/// the batch size, the tile width only ever changes wall time.
pub fn tile_width() -> usize {
    env_usize_override(TILE_ENV).unwrap_or(DEFAULT_TILE)
}

/// The spike-train RNG of logical sample `sample_index` under `seed`.
///
/// Deriving per-sample streams (instead of threading one RNG through the
/// dataset) is what makes batch results independent of evaluation order,
/// batch size and worker count.
pub fn sample_rng(seed: u64, sample_index: u64) -> StdRng {
    StdRng::seed_from_u64_stream(seed, sample_index)
}

/// Maps `f` over `items` on `threads` scoped workers (dynamic
/// work-stealing via an atomic cursor), returning results in input order.
///
/// Output is identical for every `threads` value as long as `f` is a pure
/// function of `(index, item)`. Panics in `f` propagate.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let _reservation = WorkerReservation::for_pool(threads);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(i, &items[i]);
                let filled = slots[i].set(value).is_ok();
                debug_assert!(filled, "cursor hands out each index once");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

/// Splits `0..n` into `parts` contiguous, near-equal ranges (the longer
/// ones first); empty ranges are omitted.
fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let remainder = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Shards whole-dataset inference across worker threads and presents each
/// worker's samples in batched chunks.
///
/// Each worker owns one scratch and walks a contiguous slice of the
/// dataset in groups of B through [`NetworkParams::run_batch`] (B = 1
/// falls back to the scalar [`NetworkParams::run_sample`] path);
/// per-sample RNG streams ([`sample_rng`]) make the aggregate
/// bit-identical regardless of sharding, batch size or worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchEvaluator {
    /// Pinned worker count; `None` resolves from `SPARKXD_THREADS` /
    /// available parallelism at call time.
    threads: Option<usize>,
    /// Pinned batch size; `None` resolves from `SPARKXD_BATCH` /
    /// [`DEFAULT_BATCH`] at call time.
    batch: Option<usize>,
    /// Pinned neuron-tile width; `None` resolves from `SPARKXD_TILE` /
    /// [`DEFAULT_TILE`] at call time (inside `run_batch`).
    tile: Option<usize>,
    /// Pinned kernel request; `None` resolves from `SPARKXD_KERNEL` /
    /// auto-detection at call time.
    kernel: Option<KernelChoice>,
}

/// One resolved `(batch, tile, kernel)` execution point, handed intact to
/// every shard of a parallel run.
#[derive(Debug, Clone, Copy)]
struct ExecPlan {
    batch: usize,
    tile: Option<usize>,
    kernel: Option<KernelChoice>,
}

impl BatchEvaluator {
    /// An evaluator that resolves its worker count, batch size, tile
    /// width and kernel from the environment on every call (the default).
    pub fn from_env() -> Self {
        Self {
            threads: None,
            batch: None,
            tile: None,
            kernel: None,
        }
    }

    /// An evaluator pinned to exactly `threads` workers (ignores
    /// `SPARKXD_THREADS`); `1` is fully serial.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
            batch: None,
            tile: None,
            kernel: None,
        }
    }

    /// Pins the batch size (ignores `SPARKXD_BATCH`); `1` forces the
    /// scalar per-sample read path. Builder style.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch.max(1));
        self
    }

    /// Pins the drive matrix's neuron-tile width (ignores `SPARKXD_TILE`);
    /// any value ≥ `n_neurons` (e.g. `usize::MAX`) forces the untiled
    /// single-sweep path. Builder style.
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = Some(tile.max(1));
        self
    }

    /// Pins the hot-loop kernel request (ignores `SPARKXD_KERNEL`); the
    /// request still resolves through runtime feature detection, so
    /// [`KernelChoice::Avx2`] on a host without AVX2 degrades to the
    /// portable kernel instead of faulting. Builder style; never changes
    /// results, only wall time.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = Some(kernel);
        self
    }

    fn threads_for(&self, jobs: usize) -> usize {
        match self.threads {
            Some(t) => t.min(jobs.max(1)),
            None => worker_count(jobs),
        }
    }

    fn batch_for(&self) -> usize {
        self.batch.unwrap_or_else(batch_size)
    }

    /// The resolved per-run execution knobs, bundled so every shard of a
    /// parallel run receives one coherent `(batch, tile, kernel)` point.
    fn exec_plan(&self) -> ExecPlan {
        ExecPlan {
            batch: self.batch_for(),
            tile: self.tile,
            kernel: self.kernel,
        }
    }

    /// Presents every sample of `range` (batched in groups of
    /// `plan.batch`) and hands each `(dataset index, spike counts)` to
    /// `sink` in ascending index order.
    fn run_range(
        params: &NetworkParams,
        dataset: &Dataset,
        seed: u64,
        range: Range<usize>,
        plan: ExecPlan,
        mut sink: impl FnMut(usize, Vec<u32>),
    ) {
        let ExecPlan {
            batch,
            tile,
            kernel,
        } = plan;
        if batch <= 1 {
            let mut state = RunState::for_params(params);
            if let Some(kernel) = kernel {
                state = state.with_kernel(kernel);
            }
            for idx in range {
                let (image, _) = dataset.get(idx);
                let mut rng = sample_rng(seed, idx as u64);
                let counts = params
                    .run_sample(&mut state, image.pixels(), &mut rng)
                    .expect("dataset image matches configured input size");
                sink(idx, counts);
            }
            return;
        }
        let mut state = BatchState::for_params(params, batch);
        if let Some(tile) = tile {
            state = state.with_tile(tile);
        }
        if let Some(kernel) = kernel {
            state = state.with_kernel(kernel);
        }
        let mut start = range.start;
        while start < range.end {
            let end = (start + batch).min(range.end);
            let pixels: Vec<&[f32]> = (start..end).map(|i| dataset.get(i).0.pixels()).collect();
            let mut rngs: Vec<StdRng> = (start..end).map(|i| sample_rng(seed, i as u64)).collect();
            let counts = params
                .run_batch(&mut state, &pixels, &mut rngs)
                .expect("dataset image matches configured input size");
            for (offset, sample_counts) in counts.into_iter().enumerate() {
                sink(start + offset, sample_counts);
            }
            start = end;
        }
    }

    /// Per-neuron spike counts for every sample of `dataset` (inference
    /// only), in dataset order.
    pub fn spike_counts(
        &self,
        params: &NetworkParams,
        dataset: &Dataset,
        seed: u64,
    ) -> Vec<Vec<u32>> {
        let plan = self.exec_plan();
        let chunks = chunk_ranges(dataset.len(), self.threads_for(dataset.len()));
        let per_chunk = parallel_map(&chunks, chunks.len(), |_, range| {
            let mut out = Vec::with_capacity(range.len());
            Self::run_range(params, dataset, seed, range.clone(), plan, |_, counts| {
                out.push(counts)
            });
            out
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Classification accuracy of `params` on `dataset` under `labeler`'s
    /// neuron assignments.
    pub fn evaluate(
        &self,
        params: &NetworkParams,
        dataset: &Dataset,
        labeler: &NeuronLabeler,
        seed: u64,
    ) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let plan = self.exec_plan();
        let chunks = chunk_ranges(dataset.len(), self.threads_for(dataset.len()));
        let correct_per_chunk = parallel_map(&chunks, chunks.len(), |_, range| {
            let mut correct = 0usize;
            Self::run_range(params, dataset, seed, range.clone(), plan, |idx, counts| {
                let (_, label) = dataset.get(idx);
                if labeler.predict(&counts) == Some(label) {
                    correct += 1;
                }
            });
            correct
        });
        correct_per_chunk.iter().sum::<usize>() as f64 / dataset.len() as f64
    }

    /// Assigns a class to each neuron from its responses on `dataset`
    /// (inference only). Response counts are summed per chunk and merged,
    /// which is order-independent.
    pub fn label_neurons(
        &self,
        params: &NetworkParams,
        dataset: &Dataset,
        seed: u64,
    ) -> NeuronLabeler {
        let n_neurons = params.config().n_neurons;
        let plan = self.exec_plan();
        let chunks = chunk_ranges(dataset.len(), self.threads_for(dataset.len()));
        let per_chunk = parallel_map(&chunks, chunks.len(), |_, range| {
            let mut response = vec![[0u64; 10]; n_neurons];
            Self::run_range(params, dataset, seed, range.clone(), plan, |idx, counts| {
                let (_, label) = dataset.get(idx);
                for (j, &c) in counts.iter().enumerate() {
                    response[j][label as usize] += c as u64;
                }
            });
            response
        });
        let mut merged = vec![[0u64; 10]; n_neurons];
        for response in per_chunk {
            for (total, part) in merged.iter_mut().zip(response) {
                for (t, p) in total.iter_mut().zip(part) {
                    *t += p;
                }
            }
        }
        NeuronLabeler::from_responses(&merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DiehlCookNetwork, SnnConfig};
    use sparkxd_data::{SynthDigits, SyntheticSource};

    fn trained_params() -> NetworkParams {
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(25));
        let train = SynthDigits.generate(15, 1);
        net.train_epoch(&train, 2);
        net.into_params()
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 7, 16] {
            for parts in [1usize, 2, 3, 8, 20] {
                let ranges = chunk_ranges(n, parts);
                let mut covered = Vec::new();
                for r in &ranges {
                    assert!(!r.is_empty());
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order_and_results() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map(&items, 1, |i, &x| i * 1000 + x * x);
        for threads in [2, 3, 8] {
            assert_eq!(
                parallel_map(&items, threads, |i, &x| i * 1000 + x * x),
                serial
            );
        }
    }

    #[test]
    fn evaluate_is_worker_count_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1).label_neurons(&params, &data, 4);
        let serial = BatchEvaluator::with_threads(1).evaluate(&params, &data, &labeler, 5);
        for threads in [2, 3, 7] {
            let parallel =
                BatchEvaluator::with_threads(threads).evaluate(&params, &data, &labeler, 5);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn evaluate_is_batch_size_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .evaluate(&params, &data, &labeler, 5);
        for batch in [2, 3, 8, 17] {
            for threads in [1, 3] {
                let batched = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .evaluate(&params, &data, &labeler, 5);
                assert_eq!(scalar, batched, "batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn label_neurons_is_worker_and_batch_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let serial = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        for (threads, batch) in [(2, 1), (1, 4), (5, 3), (2, 17)] {
            let parallel = BatchEvaluator::with_threads(threads)
                .with_batch(batch)
                .label_neurons(&params, &data, 4);
            assert_eq!(
                serial.assignments(),
                parallel.assignments(),
                "threads={threads} batch={batch}"
            );
        }
    }

    #[test]
    fn spike_counts_match_direct_run_sample() {
        let params = trained_params();
        let data = SynthDigits.generate(6, 3);
        let mut state = RunState::for_params(&params);
        let mut direct = Vec::new();
        for (idx, (image, _)) in data.iter().enumerate() {
            let mut rng = sample_rng(9, idx as u64);
            direct.push(
                params
                    .run_sample(&mut state, image.pixels(), &mut rng)
                    .unwrap(),
            );
        }
        for (threads, batch) in [(2, 1), (2, 4), (1, 8)] {
            let batched = BatchEvaluator::with_threads(threads)
                .with_batch(batch)
                .spike_counts(&params, &data, 9);
            assert_eq!(batched, direct, "threads={threads} batch={batch}");
        }
    }

    #[test]
    fn empty_dataset_evaluates_to_zero() {
        let params = trained_params();
        let empty = SynthDigits.generate(0, 1);
        let labeler = NeuronLabeler::from_assignments(vec![None; 20]);
        assert_eq!(
            BatchEvaluator::from_env().evaluate(&params, &empty, &labeler, 1),
            0.0
        );
    }

    #[test]
    fn usize_override_parses_and_clamps_zero_to_one() {
        // Direct parse tests: no process-global env mutation, so this is
        // race-free against sibling tests.
        assert_eq!(parse_usize_override("T_CLAMP", "0"), Some(1));
        assert_eq!(parse_usize_override("T_CLAMP", "1"), Some(1));
        assert_eq!(parse_usize_override("T_CLAMP", "7"), Some(7));
        assert_eq!(parse_usize_override("T_CLAMP", "  3 "), Some(3));
    }

    #[test]
    fn unparsable_override_falls_back_and_warns_once() {
        // Unparsable values behave as unset (the caller's default applies)…
        assert_eq!(parse_usize_override("T_BAD_A", "fourteen"), None);
        assert_eq!(parse_usize_override("T_BAD_A", "-2"), None);
        assert_eq!(parse_usize_override("T_BAD_A", ""), None);
        // …and the stderr warning fires once per variable, not per call.
        assert!(warn_once("T_ONCE_UNIQUE"));
        assert!(!warn_once("T_ONCE_UNIQUE"));
        assert!(warn_once("T_ONCE_OTHER"), "distinct vars warn separately");
    }

    #[test]
    fn env_override_reads_unset_variable_as_none() {
        assert_eq!(env_usize_override("SPARKXD_TEST_NEVER_SET_VAR"), None);
    }

    #[test]
    fn kernel_override_parses_the_three_spellings() {
        // Direct parse tests, mirroring the usize-override suite: no
        // process-global env mutation, race-free against sibling tests.
        assert_eq!(
            parse_kernel_override("K_OK", "auto"),
            Some(KernelChoice::Auto)
        );
        assert_eq!(
            parse_kernel_override("K_OK", " Scalar "),
            Some(KernelChoice::Scalar)
        );
        assert_eq!(
            parse_kernel_override("K_OK", "AVX2"),
            Some(KernelChoice::Avx2)
        );
    }

    #[test]
    fn unparsable_kernel_override_falls_back_and_warns_once() {
        // Unknown spellings behave as unset (the `auto` default applies)…
        assert_eq!(parse_kernel_override("K_BAD_A", "avx512"), None);
        assert_eq!(parse_kernel_override("K_BAD_A", "fast"), None);
        assert_eq!(parse_kernel_override("K_BAD_A", ""), None);
        // …and the stderr warning fires once per variable, not per call
        // (shared warn_once machinery with the numeric overrides).
        assert!(warn_once("K_ONCE_UNIQUE"));
        assert!(!warn_once("K_ONCE_UNIQUE"));
    }

    #[test]
    fn kernel_choice_defaults_to_auto_without_env() {
        // No env override in the test process: the default applies and
        // resolves to a kernel this host can execute.
        assert_eq!(kernel_choice(), KernelChoice::Auto);
        let resolved = kernel();
        assert!(crate::kernels::Kernel::available().contains(&resolved));
    }

    #[test]
    fn evaluate_is_kernel_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar)
            .label_neurons(&params, &data, 4);
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar)
            .evaluate(&params, &data, &labeler, 5);
        for choice in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Avx2] {
            for (threads, batch) in [(1, 1), (1, 4), (2, 8)] {
                let got = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .with_kernel(choice)
                    .evaluate(&params, &data, &labeler, 5);
                assert_eq!(
                    scalar, got,
                    "kernel={choice:?} threads={threads} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn worker_count_respects_job_bound() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(64) >= 1);
    }

    #[test]
    fn batch_size_floors_at_one() {
        // No env override in the test process: the default applies.
        assert!(batch_size() >= 1);
        assert_eq!(BatchEvaluator::from_env().with_batch(0).batch_for(), 1);
        assert_eq!(BatchEvaluator::from_env().with_batch(5).batch_for(), 5);
    }

    #[test]
    fn tile_width_defaults_and_floors_at_one() {
        // No env override in the test process: the default applies.
        assert_eq!(tile_width(), DEFAULT_TILE);
        assert_eq!(BatchEvaluator::from_env().with_tile(0).tile, Some(1));
        assert_eq!(BatchEvaluator::from_env().with_tile(7).tile, Some(7));
    }

    #[test]
    fn evaluate_is_tile_width_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .evaluate(&params, &data, &labeler, 5);
        for tile in [1usize, 3, 19, 20, 64, usize::MAX] {
            for (threads, batch) in [(1, 4), (2, 8)] {
                let tiled = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .with_tile(tile)
                    .evaluate(&params, &data, &labeler, 5);
                assert_eq!(scalar, tiled, "tile={tile} threads={threads} batch={batch}");
            }
        }
    }

    #[test]
    fn nested_levels_share_the_thread_budget() {
        // A huge outer reservation must drive nested pools serial (never
        // below 1). Sibling tests can only reserve *more*, so the equality
        // is race-free; the release check stays a lower bound.
        {
            let _outer = WorkerReservation::for_pool(100_000);
            assert_eq!(worker_count(64), 1);
        }
        assert!(worker_count(64) >= 1, "budget released on drop");
    }
}
