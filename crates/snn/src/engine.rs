//! Parallel batch-execution engine.
//!
//! Every sample presentation at inference is independent: the thresholds
//! are frozen and membrane state is reset per sample (see
//! [`NetworkParams::run_sample`]). The engine exploits that three times
//! over:
//!
//! * a dataset is sharded across workers of the persistent
//!   [`WorkerPool`] (long-lived, condvar-parked threads — no per-call
//!   spawn tax), each shard owning one reusable scratch,
//! * within a worker, samples are presented in chunks of B through
//!   [`NetworkParams::run_batch`], which streams each effective-weight row
//!   once per chunk instead of once per sample, and
//! * within a chunk, the per-timestep tile sweep can itself fan out
//!   across the pool (`SPARKXD_INTRA` / [`BatchEvaluator::with_intra`]):
//!   range-jobs own disjoint neuron-lane ranges of the `[B × n]` slabs,
//!   with a barrier before the global-per-sample firing/inhibition pass —
//!   bit-identical to the serial sweep by construction.
//!
//! The spike-train RNG for sample `i` is derived from `(seed, i)`, so the
//! result is bit-identical for **any** worker count *and any batch size*,
//! including fully serial scalar execution.
//!
//! Worker counts come from `std::thread::available_parallelism()`, with
//! the `SPARKXD_THREADS` environment variable as an override (`1` forces
//! serial execution; higher values pin the exact thread count). The batch
//! size defaults to [`DEFAULT_BATCH`], with `SPARKXD_BATCH` as an override
//! (`1` forces the scalar read path), and the neuron-tile width of the
//! batched drive matrix defaults to [`DEFAULT_TILE`], with `SPARKXD_TILE`
//! as an override (any value ≥ `n_neurons` disables tiling). The
//! intra-chunk sweep mode defaults to [`IntraChoice::Auto`], with
//! `SPARKXD_INTRA` as an override (`off` keeps the serial sweep, `<k>`
//! pins `k` sweep workers); every level draws from the one global thread
//! budget (see [`WorkerReservation`]), so nesting never oversubscribes
//! the machine to workers².
//!
//! # Kernel dispatch
//!
//! The hot inner loops (drive accumulation, LIF lane integration, the
//! inhibition sweep) run through the runtime-dispatched kernels of
//! [`crate::kernels`]:
//!
//! | `SPARKXD_KERNEL` | meaning                                            |
//! |------------------|----------------------------------------------------|
//! | `auto` (default) | widest kernel the host supports (AVX2 if detected) |
//! | `scalar`         | portable unrolled-scalar kernel                    |
//! | `avx2`           | x86_64 AVX2 kernel; warns + falls back off-AVX2    |
//!
//! [`BatchEvaluator::with_kernel`] pins the choice programmatically.
//! The kernel never changes results, only wall time: the AVX2 lanes
//! compute the exact scalar IEEE operation sequence (lanewise ops in
//! unchanged per-element order, no FMA, no reassociated reductions), so
//! every `{kernel × batch × thread × tile}` combination is bit-identical
//! — see the [`crate::kernels`] module docs for the full argument and
//! `tests/kernel_invariance.rs` for the proof battery.

use crate::eval::NeuronLabeler;
use crate::kernels::{Kernel, KernelChoice};
use crate::network::{BatchState, NetworkParams, RunState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd_data::Dataset;
use std::any::Any;
use std::collections::{BTreeSet, VecDeque};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the engine's worker count.
pub const THREADS_ENV: &str = "SPARKXD_THREADS";

/// Environment variable overriding the engine's per-worker batch size.
pub const BATCH_ENV: &str = "SPARKXD_BATCH";

/// Environment variable overriding the batched drive matrix's neuron-tile
/// width (see [`DEFAULT_TILE`]).
pub const TILE_ENV: &str = "SPARKXD_TILE";

/// Environment variable selecting the hot-loop kernel
/// (`auto` | `scalar` | `avx2`; see [`kernel_choice`]).
pub const KERNEL_ENV: &str = "SPARKXD_KERNEL";

/// Environment variable selecting the intra-chunk tile-parallel mode of
/// the batched drive sweep (`auto` | `off` | `<k>`; see [`intra_choice`]).
pub const INTRA_ENV: &str = "SPARKXD_INTRA";

/// Samples presented together per [`NetworkParams::run_batch`] call when
/// neither [`BatchEvaluator::with_batch`] nor `SPARKXD_BATCH` says
/// otherwise. Large enough to amortise weight-row streaming and the
/// per-presentation spike-plan build — measured fastest in the 2–8 band
/// at N400, degrading beyond it.
///
/// The batch size no longer has to keep the whole `[B × n_neurons]`
/// drive slab cache-resident: beyond ~N1600 that slab outgrows L1 at any
/// useful B, so [`NetworkParams::run_batch`] sweeps it in neuron tiles of
/// [`DEFAULT_TILE`] lanes (`SPARKXD_TILE` overrides; see
/// [`tile_width`]) and only the `[B × tile]` working set must stay hot.
pub const DEFAULT_BATCH: usize = 4;

/// Neuron-tile width of the batched drive matrix when neither
/// [`BatchState::with_tile`](crate::network::BatchState::with_tile) nor
/// `SPARKXD_TILE` says otherwise.
///
/// Drive accumulation touches the `[B × tile]` drive tile once per
/// distinct active row, so the tile — not the full `[B × n_neurons]`
/// slab — is the read path's resident working set. At the default
/// `B = 4`, a 512-lane tile is 8 KiB of drive plus a 2 KiB row slice:
/// comfortably L1 even with the membrane slabs of the lane being
/// integrated. Networks with `n_neurons ≤ tile` (the paper's N400 at
/// this default) run as a single tile, which is exactly the untiled
/// path; the tile width never changes results, only wall time.
pub const DEFAULT_TILE: usize = 512;

/// Workers the engine currently has busy on *outer* parallel levels, so a
/// nested fan-out (a device sweep whose pipelines evaluate in parallel, a
/// report section training networks) sizes itself to the leftover budget
/// instead of oversubscribing the machine by workers².
static BUSY_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// High-water mark of [`BUSY_WORKERS`] — a diagnostic for the
/// budget-accounting tests (a serve pool plus nested intra-parallel
/// sweeps must never oversubscribe to workers²; see
/// `crates/serve/tests/worker_budget.rs`).
static BUSY_PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_busy_peak() {
    let busy = BUSY_WORKERS.load(Ordering::Relaxed);
    BUSY_PEAK.fetch_max(busy, Ordering::Relaxed);
    // Mirror the high-water mark into a telemetry gauge so pool
    // occupancy is visible outside the process (snapshot JSON, job
    // summaries), not only through `busy_peak()`.
    sparkxd_telemetry::gauge_max!("pool.busy_peak", busy);
}

/// Extra workers the engine currently has registered busy across every
/// level (serve pools, `parallel_map` calls, intra-parallel sweeps). The
/// calling thread is never counted, so total live compute threads are at
/// most `busy_workers() + 1`.
pub fn busy_workers() -> usize {
    BUSY_WORKERS.load(Ordering::Relaxed)
}

/// High-water mark of [`busy_workers`] since process start (or the last
/// [`reset_busy_peak`]). Diagnostic for worker-budget accounting tests.
pub fn busy_peak() -> usize {
    BUSY_PEAK.load(Ordering::Relaxed)
}

/// Resets the [`busy_peak`] high-water mark (test diagnostic; racy
/// against concurrent reservations, so use from a quiesced process).
pub fn reset_busy_peak() {
    BUSY_PEAK.store(BUSY_WORKERS.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// RAII registration of `extra` busy workers against the engine's global
/// thread budget; released on drop. [`parallel_map`] takes one per call —
/// reach for it directly only when hand-rolling a worker pool (see
/// `sparkxd-bench`'s streaming report runner).
#[derive(Debug)]
pub struct WorkerReservation {
    extra: usize,
}

impl WorkerReservation {
    /// Registers `threads - 1` busy workers (the calling thread is not
    /// *extra* — it was already accounted for by any outer level).
    pub fn for_pool(threads: usize) -> Self {
        let extra = threads.saturating_sub(1);
        BUSY_WORKERS.fetch_add(extra, Ordering::Relaxed);
        note_busy_peak();
        Self { extra }
    }

    /// Atomically claims up to `max_extra` additional workers from the
    /// *leftover* budget of `configured` total workers, returning how many
    /// were granted alongside the reservation (0 when the budget is
    /// exhausted — the caller then runs serial).
    ///
    /// Unlike [`for_pool`](Self::for_pool) (an unconditional pin), the
    /// claim is bounded by what is actually free: the compare-exchange
    /// loop guarantees the *sum* of concurrent claims never pushes the
    /// registered extras past `configured - 1`, so a serve pool whose
    /// workers all start intra-parallel sweeps at once cannot
    /// oversubscribe the machine to workers².
    pub fn claim_leftover(configured: usize, max_extra: usize) -> (usize, Self) {
        let cap = configured.saturating_sub(1);
        loop {
            let busy = BUSY_WORKERS.load(Ordering::Relaxed);
            let granted = cap.saturating_sub(busy).min(max_extra);
            if granted == 0 {
                return (0, Self { extra: 0 });
            }
            if BUSY_WORKERS
                .compare_exchange(busy, busy + granted, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                note_busy_peak();
                return (granted, Self { extra: granted });
            }
        }
    }
}

impl Drop for WorkerReservation {
    fn drop(&mut self) {
        BUSY_WORKERS.fetch_sub(self.extra, Ordering::Relaxed);
    }
}

/// Reads a `usize` tuning override from environment variable `var`.
///
/// Every engine knob shares this one parse: `0` is clamped to `1` (both
/// knobs mean "serial", never "off") and an unparsable value is treated as
/// unset — but instead of silently falling back, a warning is printed to
/// stderr **once per variable per process**, so a typo like
/// `SPARKXD_THREADS=fourteen` cannot quietly run a benchmark on the wrong
/// configuration.
pub fn env_usize_override(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    parse_usize_override(var, &raw)
}

/// The parse half of [`env_usize_override`], separated from the
/// environment read so the fallback and clamp behaviour are unit-testable
/// without process-global env mutation.
fn parse_usize_override(var: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) => Some(n.max(1)),
        Err(_) => {
            if warn_once(var) {
                eprintln!(
                    "sparkxd: ignoring unparsable {var}={raw:?} \
                     (expected a non-negative integer), using the default"
                );
            }
            None
        }
    }
}

/// The requested hot-loop kernel: the `SPARKXD_KERNEL` override if set
/// and parsable, else [`KernelChoice::Auto`]. Like the numeric knobs, an
/// unparsable value warns on stderr once per process and behaves as
/// unset.
pub fn kernel_choice() -> KernelChoice {
    std::env::var(KERNEL_ENV)
        .ok()
        .and_then(|raw| parse_kernel_override(KERNEL_ENV, &raw))
        .unwrap_or_default()
}

/// The parse half of [`kernel_choice`], separated from the environment
/// read so the fallback behaviour is unit-testable without process-global
/// env mutation (mirrors [`parse_usize_override`]).
fn parse_kernel_override(var: &str, raw: &str) -> Option<KernelChoice> {
    match KernelChoice::parse(raw) {
        Some(choice) => Some(choice),
        None => {
            if warn_once(var) {
                eprintln!(
                    "sparkxd: ignoring unparsable {var}={raw:?} \
                     (expected auto|scalar|avx2), using auto"
                );
            }
            None
        }
    }
}

/// The resolved hot-loop kernel for this host: [`kernel_choice`] passed
/// through [`KernelChoice::resolve`] (runtime feature detection). The
/// kernel only ever changes wall time, never results.
pub fn kernel() -> Kernel {
    kernel_choice().resolve()
}

/// The requested intra-chunk tile-parallel mode of
/// [`NetworkParams::run_batch`]'s drive sweep.
///
/// Like every other engine knob, the mode only ever changes wall time,
/// never results: range-jobs write disjoint neuron lanes of the
/// `[B × n]` slabs on identical tile boundaries and the per-sample
/// firing/inhibition pass runs after a barrier, so any split is
/// bit-identical to the serial sweep by construction (see
/// `tests/intra_invariance.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraChoice {
    /// Size the sweep to the leftover global thread budget via
    /// [`WorkerReservation::claim_leftover`] — serial when outer levels
    /// (a `parallel_map` shard, a serve pool) already keep the machine
    /// busy. The default.
    #[default]
    Auto,
    /// Always the serial sweep (the pre-PR-8 behaviour).
    Off,
    /// Pin exactly `k` sweep workers, ignoring the leftover budget (an
    /// explicit oversubscription request, like `SPARKXD_THREADS` pinning
    /// more threads than cores). Still clamped to the tile count and
    /// still registered against the global budget.
    Workers(usize),
}

impl IntraChoice {
    /// Parses a `SPARKXD_INTRA` value: `auto`, `off` (both
    /// case-insensitive) or a positive worker count (`0` clamps to 1,
    /// i.e. the serial sweep).
    pub fn parse(raw: &str) -> Option<IntraChoice> {
        let trimmed = raw.trim();
        if trimmed.eq_ignore_ascii_case("auto") {
            return Some(IntraChoice::Auto);
        }
        if trimmed.eq_ignore_ascii_case("off") {
            return Some(IntraChoice::Off);
        }
        trimmed
            .parse::<usize>()
            .ok()
            .map(|k| IntraChoice::Workers(k.max(1)))
    }
}

/// The requested intra-chunk tile-parallel mode: the `SPARKXD_INTRA`
/// override if set and parsable, else [`IntraChoice::Auto`]. Like the
/// other knobs, an unparsable value warns on stderr once per process and
/// behaves as unset.
pub fn intra_choice() -> IntraChoice {
    std::env::var(INTRA_ENV)
        .ok()
        .and_then(|raw| parse_intra_override(INTRA_ENV, &raw))
        .unwrap_or_default()
}

/// The parse half of [`intra_choice`], separated from the environment
/// read so the fallback behaviour is unit-testable without process-global
/// env mutation (mirrors [`parse_usize_override`]).
fn parse_intra_override(var: &str, raw: &str) -> Option<IntraChoice> {
    match IntraChoice::parse(raw) {
        Some(choice) => Some(choice),
        None => {
            if warn_once(var) {
                eprintln!(
                    "sparkxd: ignoring unparsable {var}={raw:?} \
                     (expected auto|off|<worker count>), using auto"
                );
            }
            None
        }
    }
}

/// Resolves an [`IntraChoice`] for a sweep of `n_tiles` tiles into the
/// worker count to use, together with the budget reservation those
/// workers hold for the duration of the sweep.
///
/// Fewer than two tiles, [`IntraChoice::Off`], or an exhausted budget
/// under [`IntraChoice::Auto`] all fall back to `(1, None)` — the serial
/// sweep. The count is always clamped to `n_tiles` (contiguous tile
/// ranges per worker; an idle worker would be pure dispatch overhead).
pub fn intra_workers_for(
    choice: IntraChoice,
    n_tiles: usize,
) -> (usize, Option<WorkerReservation>) {
    if n_tiles < 2 {
        return (1, None);
    }
    match choice {
        IntraChoice::Off => (1, None),
        IntraChoice::Workers(k) => {
            let workers = k.max(1).min(n_tiles);
            if workers <= 1 {
                (1, None)
            } else {
                (workers, Some(WorkerReservation::for_pool(workers)))
            }
        }
        IntraChoice::Auto => {
            let (extra, reservation) =
                WorkerReservation::claim_leftover(configured_threads(), n_tiles - 1);
            if extra == 0 {
                (1, None)
            } else {
                (extra + 1, Some(reservation))
            }
        }
    }
}

/// Registers `var` in the warned-about set; `true` exactly once per
/// variable per process, so repeated engine calls don't spam stderr.
pub(crate) fn warn_once(var: &str) -> bool {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .map(|mut seen| seen.insert(var.to_string()))
        .unwrap_or(false)
}

/// Number of workers to use for `jobs` independent work items: the
/// `SPARKXD_THREADS` override if set (via [`env_usize_override`]), else
/// the machine's available parallelism — minus the workers outer parallel
/// levels already keep busy, and never more than `jobs`.
///
/// The worker count only ever changes wall time, not results: every
/// engine aggregate is bit-identical for any count by construction.
pub fn worker_count(jobs: usize) -> usize {
    configured_threads()
        .saturating_sub(BUSY_WORKERS.load(Ordering::Relaxed))
        .max(1)
        .min(jobs.max(1))
}

/// The engine's configured total worker budget: the `SPARKXD_THREADS`
/// override if set, else the machine's available parallelism. This is the
/// cap every budget claim ([`WorkerReservation::claim_leftover`]) and
/// leftover computation ([`worker_count`]) measures against.
pub fn configured_threads() -> usize {
    env_usize_override(THREADS_ENV).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The engine's batch size: the `SPARKXD_BATCH` override if set (via
/// [`env_usize_override`]), else [`DEFAULT_BATCH`]. Like the worker
/// count, the batch size only ever changes wall time.
pub fn batch_size() -> usize {
    env_usize_override(BATCH_ENV).unwrap_or(DEFAULT_BATCH)
}

/// The drive matrix's neuron-tile width: the `SPARKXD_TILE` override if
/// set (via [`env_usize_override`]), else [`DEFAULT_TILE`].
/// [`NetworkParams::run_batch`] clamps the width into `[1, n_neurons]`,
/// so any large value (e.g. `usize::MAX`) selects the untiled path. Like
/// the batch size, the tile width only ever changes wall time.
pub fn tile_width() -> usize {
    env_usize_override(TILE_ENV).unwrap_or(DEFAULT_TILE)
}

/// The spike-train RNG of logical sample `sample_index` under `seed`.
///
/// Deriving per-sample streams (instead of threading one RNG through the
/// dataset) is what makes batch results independent of evaluation order,
/// batch size and worker count.
pub fn sample_rng(seed: u64, sample_index: u64) -> StdRng {
    StdRng::seed_from_u64_stream(seed, sample_index)
}

/// Backstop on threads a [`WorkerPool`] will ever spawn — far above any
/// sane `SPARKXD_THREADS` pin; explicit oversubscription requests beyond
/// it degrade gracefully (the caller still completes every job itself).
const MAX_POOL_THREADS: usize = 256;

/// A lifetime-erased pointer to one dispatch's job closure. The erasure
/// is what lets long-lived pool threads run closures that borrow the
/// caller's stack: [`WorkerPool::run`] guarantees (via the helper latch)
/// that no helper touches the pointer after `run` returns.
struct ErasedJob(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from any thread) and
// `WorkerPool::run` bounds its lifetime around every helper's access.
unsafe impl Send for ErasedJob {}
unsafe impl Sync for ErasedJob {}

/// One in-flight pool dispatch: the erased job, an atomic cursor handing
/// out job indices, a helper latch (how many pool threads are inside the
/// task) and a slot for the first captured panic.
struct TaskCore {
    job: ErasedJob,
    jobs: usize,
    cursor: AtomicUsize,
    /// Helpers currently inside the task. Incremented under the pool's
    /// state lock (so retiring the task cannot miss a joiner) and
    /// decremented when a helper leaves; `run` waits for 0.
    helpers: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl TaskCore {
    /// Drains the cursor, running jobs until none remain; returns the
    /// payload if the closure panicked (the remaining jobs of a panicked
    /// participant are left unrun — the caller unwinds anyway).
    fn run_jobs(&self) -> Option<Box<dyn Any + Send>> {
        // SAFETY: `WorkerPool::run` keeps the closure alive until every
        // participant has left the task (helpers join under the pool
        // state lock; `run` retires the task under that same lock and
        // then waits the latch down to zero before returning).
        let job = unsafe { &*self.job.0 };
        catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs {
                break;
            }
            job(i);
        }))
        .err()
    }

    /// Records the first panic payload (later ones are dropped — one
    /// resume is all the caller can do).
    fn store_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("pool panic slot");
        slot.get_or_insert(payload);
    }
}

/// A queued dispatch with `slots` helper seats still unclaimed.
struct PendingTask {
    task: Arc<TaskCore>,
    slots: usize,
}

/// Pool state behind the mutex: the dispatch queue, parked/spawned
/// counters and the join handles for shutdown.
struct PoolState {
    tasks: VecDeque<PendingTask>,
    /// Threads parked on `work_cv` right now.
    idle: usize,
    /// Threads ever spawned (== `handles.len()` while running).
    spawned: usize,
    shutdown: bool,
    handles: Vec<JoinHandle<()>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Parked helpers wait here; signalled on every enqueue and on
    /// shutdown.
    work_cv: Condvar,
}

/// A persistent worker pool: long-lived helper threads, condvar-parked
/// between dispatches, shared by every engine fan-out level.
///
/// ## Why a pool
///
/// [`parallel_map`] used to spawn scoped threads per call — a tax the
/// serve layer paid once per dispatched batch, and one the intra-chunk
/// tile sweep (dispatching once per *timestep*) could never afford.
/// Helpers here are spawned once, lazily, and parked on a condvar when
/// idle, so a dispatch is a queue push + wakeup instead of `clone(2)`.
///
/// ## Parking and dispatch
///
/// [`run`](Self::run) enqueues a task with `extra` helper seats and wakes
/// the pool; parked helpers claim seats (at most `extra` of them join)
/// and pull job indices from the task's shared atomic cursor. **The
/// caller always participates**: it drains the same cursor, so a dispatch
/// with no free helper still completes — and `extra == 0` or a single
/// job short-circuits to a plain inline loop with zero pool hops.
///
/// ## Budget
///
/// The pool itself does **no** budget accounting — that stays with the
/// callers ([`parallel_map`] reserves via [`WorkerReservation::for_pool`],
/// the intra-chunk sweep claims leftover budget via
/// [`WorkerReservation::claim_leftover`]), so one global invariant holds
/// at every nesting level and helpers are never double-counted.
///
/// ## Shutdown ordering
///
/// Dropping a pool flags `shutdown` under the state lock, wakes every
/// parked helper and joins all handles. Helpers re-check the flag only
/// when the queue is empty, so queued seats are consumed first; `run`
/// borrows `&self`, so no dispatch can be in flight while `drop` runs.
/// The [`global`](Self::global) pool lives for the process and is never
/// dropped.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Dispatches that actually went through the queue (inline fast-path
    /// calls do not count) — the regression hook for the zero-pool-hop
    /// guarantees.
    dispatches: AtomicU64,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; helper threads are spawned lazily on demand.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    tasks: VecDeque::new(),
                    idle: 0,
                    spawned: 0,
                    shutdown: false,
                    handles: Vec::new(),
                }),
                work_cv: Condvar::new(),
            }),
            dispatches: AtomicU64::new(0),
        }
    }

    /// The process-wide pool every engine fan-out shares.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Dispatches that actually enqueued onto the pool (the inline fast
    /// path — one job, or no helper seats — never counts).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Runs `job(0..jobs)` with up to `extra` pool helpers assisting the
    /// calling thread; returns when every job has finished. Panics in
    /// `job` propagate to the caller (first payload wins).
    ///
    /// Job indices are handed out through one shared cursor, so the
    /// assignment of jobs to threads is dynamic — callers needing a
    /// deterministic *reduction* must give each job its own output slot
    /// (as [`parallel_map`] and the intra-chunk sweep both do), never
    /// reduce per-thread.
    pub fn run(&self, jobs: usize, extra: usize, job: &(dyn Fn(usize) + Sync)) {
        if jobs == 0 {
            return;
        }
        let extra = extra.min(jobs - 1);
        if extra == 0 {
            // Inline fast path: single job or no helper seats — zero
            // pool hops, no queue, no wakeups.
            for i in 0..jobs {
                job(i);
            }
            return;
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        // Observation only: the span times the whole pooled dispatch
        // (queue push through last-helper exit); the counter mirrors the
        // in-process `dispatches` total so snapshots can see it.
        sparkxd_telemetry::counter_add!("pool.dispatches", 1);
        let _span = sparkxd_telemetry::span!("pool.run");
        // SAFETY: pure lifetime erasure — the latch protocol below keeps
        // the closure alive until every helper has left the task.
        let erased = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let task = Arc::new(TaskCore {
            job: ErasedJob(erased),
            jobs,
            cursor: AtomicUsize::new(0),
            helpers: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        self.enqueue(Arc::clone(&task), extra);
        let caller_panic = task.run_jobs();
        // Retire the task (no further helper can join), then wait for
        // the ones that did to leave — only then may the job closure and
        // anything it borrows go out of scope.
        self.retire(&task);
        let mut helpers = task.helpers.lock().expect("pool task latch");
        while *helpers > 0 {
            helpers = task.done_cv.wait(helpers).expect("pool task latch");
        }
        drop(helpers);
        if let Some(payload) =
            caller_panic.or_else(|| task.panic.lock().expect("pool panic slot").take())
        {
            resume_unwind(payload);
        }
    }

    /// Queues the task with `extra` helper seats, topping up the thread
    /// supply first (parked helpers are reused; the deficit is spawned,
    /// up to [`MAX_POOL_THREADS`]). Spawn failure is benign: the caller
    /// completes every job itself.
    fn enqueue(&self, task: Arc<TaskCore>, extra: usize) {
        let mut state = self.shared.state.lock().expect("pool state lock");
        let deficit = extra.saturating_sub(state.idle);
        for _ in 0..deficit {
            if state.spawned >= MAX_POOL_THREADS {
                break;
            }
            let shared = Arc::clone(&self.shared);
            let name = format!("sparkxd-pool-{}", state.spawned);
            let Ok(handle) = std::thread::Builder::new()
                .name(name)
                .spawn(move || helper_loop(&shared))
            else {
                break;
            };
            state.spawned += 1;
            state.handles.push(handle);
        }
        state.tasks.push_back(PendingTask { task, slots: extra });
        drop(state);
        self.shared.work_cv.notify_all();
    }

    /// Removes the task's remaining helper seats from the queue, so no
    /// new helper can join after the caller has finished its share.
    fn retire(&self, task: &Arc<TaskCore>) {
        let mut state = self.shared.state.lock().expect("pool state lock");
        state
            .tasks
            .retain(|pending| !Arc::ptr_eq(&pending.task, task));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let handles = {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
            std::mem::take(&mut state.handles)
        };
        self.shared.work_cv.notify_all();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// A pool helper's life: park until a task has a free seat, claim it
/// (joining the task's latch *under the pool state lock*, so retirement
/// cannot race past a joiner), drain the cursor, leave, repeat. Exits
/// when shutdown is flagged and the queue is empty.
fn helper_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if let Some(pending) = state.tasks.front_mut() {
                    let task = Arc::clone(&pending.task);
                    pending.slots -= 1;
                    if pending.slots == 0 {
                        state.tasks.pop_front();
                    }
                    *task.helpers.lock().expect("pool task latch") += 1;
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state.idle += 1;
                sparkxd_telemetry::counter_add!("pool.parks", 1);
                state = shared.work_cv.wait(state).expect("pool state lock");
                state.idle -= 1;
                sparkxd_telemetry::counter_add!("pool.wakes", 1);
            }
        };
        if let Some(payload) = task.run_jobs() {
            task.store_panic(payload);
        }
        let mut helpers = task.helpers.lock().expect("pool task latch");
        *helpers -= 1;
        if *helpers == 0 {
            task.done_cv.notify_all();
        }
    }
}

/// Maps `f` over `items` on up to `threads` workers of the persistent
/// [`WorkerPool`] (dynamic job hand-out via an atomic cursor), returning
/// results in input order.
///
/// Output is identical for every `threads` value as long as `f` is a pure
/// function of `(index, item)`. Panics in `f` propagate. A single item or
/// `threads == 1` runs inline on the caller — zero pool hops, so the
/// single-chunk serve dispatch path never pays a round-trip.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let _reservation = WorkerReservation::for_pool(threads);
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    WorkerPool::global().run(items.len(), threads - 1, &|i| {
        let value = f(i, &items[i]);
        let filled = slots[i].set(value).is_ok();
        debug_assert!(filled, "cursor hands out each index once");
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

/// Splits `0..n` into `parts` contiguous, near-equal ranges (the longer
/// ones first); empty ranges are omitted. Shared by the dataset sharder
/// and the intra-chunk tile sweep (contiguous tile ranges per range-job).
pub(crate) fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let remainder = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Shards whole-dataset inference across worker threads and presents each
/// worker's samples in batched chunks.
///
/// Each worker owns one scratch and walks a contiguous slice of the
/// dataset in groups of B through [`NetworkParams::run_batch`] (B = 1
/// falls back to the scalar [`NetworkParams::run_sample`] path);
/// per-sample RNG streams ([`sample_rng`]) make the aggregate
/// bit-identical regardless of sharding, batch size or worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchEvaluator {
    /// Pinned worker count; `None` resolves from `SPARKXD_THREADS` /
    /// available parallelism at call time.
    threads: Option<usize>,
    /// Pinned batch size; `None` resolves from `SPARKXD_BATCH` /
    /// [`DEFAULT_BATCH`] at call time.
    batch: Option<usize>,
    /// Pinned neuron-tile width; `None` resolves from `SPARKXD_TILE` /
    /// [`DEFAULT_TILE`] at call time (inside `run_batch`).
    tile: Option<usize>,
    /// Pinned kernel request; `None` resolves from `SPARKXD_KERNEL` /
    /// auto-detection at call time.
    kernel: Option<KernelChoice>,
    /// Pinned intra-chunk tile-parallel mode; `None` resolves from
    /// `SPARKXD_INTRA` / [`IntraChoice::Auto`] at call time (inside
    /// `run_batch`).
    intra: Option<IntraChoice>,
}

/// One resolved `(batch, tile, kernel, intra)` execution point, handed
/// intact to every shard of a parallel run.
#[derive(Debug, Clone, Copy)]
struct ExecPlan {
    batch: usize,
    tile: Option<usize>,
    kernel: Option<KernelChoice>,
    intra: Option<IntraChoice>,
}

impl BatchEvaluator {
    /// An evaluator that resolves its worker count, batch size, tile
    /// width, kernel and intra mode from the environment on every call
    /// (the default).
    pub fn from_env() -> Self {
        Self {
            threads: None,
            batch: None,
            tile: None,
            kernel: None,
            intra: None,
        }
    }

    /// An evaluator pinned to exactly `threads` workers (ignores
    /// `SPARKXD_THREADS`); `1` is fully serial.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
            batch: None,
            tile: None,
            kernel: None,
            intra: None,
        }
    }

    /// Pins the batch size (ignores `SPARKXD_BATCH`); `1` forces the
    /// scalar per-sample read path. Builder style.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = Some(batch.max(1));
        self
    }

    /// Pins the drive matrix's neuron-tile width (ignores `SPARKXD_TILE`);
    /// any value ≥ `n_neurons` (e.g. `usize::MAX`) forces the untiled
    /// single-sweep path. Builder style.
    pub fn with_tile(mut self, tile: usize) -> Self {
        self.tile = Some(tile.max(1));
        self
    }

    /// Pins the hot-loop kernel request (ignores `SPARKXD_KERNEL`); the
    /// request still resolves through runtime feature detection, so
    /// [`KernelChoice::Avx2`] on a host without AVX2 degrades to the
    /// portable kernel instead of faulting. Builder style; never changes
    /// results, only wall time.
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Pins the intra-chunk tile-parallel mode of the drive sweep
    /// (ignores `SPARKXD_INTRA`): [`IntraChoice::Off`] is the serial
    /// sweep, [`IntraChoice::Workers`]`(k)` pins `k` sweep workers,
    /// [`IntraChoice::Auto`] sizes to the leftover thread budget. Builder
    /// style; never changes results, only wall time.
    pub fn with_intra(mut self, intra: IntraChoice) -> Self {
        self.intra = Some(intra);
        self
    }

    fn threads_for(&self, jobs: usize) -> usize {
        match self.threads {
            Some(t) => t.min(jobs.max(1)),
            None => worker_count(jobs),
        }
    }

    fn batch_for(&self) -> usize {
        self.batch.unwrap_or_else(batch_size)
    }

    /// The resolved per-run execution knobs, bundled so every shard of a
    /// parallel run receives one coherent `(batch, tile, kernel, intra)`
    /// point.
    fn exec_plan(&self) -> ExecPlan {
        ExecPlan {
            batch: self.batch_for(),
            tile: self.tile,
            kernel: self.kernel,
            intra: self.intra,
        }
    }

    /// Presents every sample of `range` (batched in groups of
    /// `plan.batch`) and hands each `(dataset index, spike counts)` to
    /// `sink` in ascending index order.
    fn run_range(
        params: &NetworkParams,
        dataset: &Dataset,
        seed: u64,
        range: Range<usize>,
        plan: ExecPlan,
        mut sink: impl FnMut(usize, Vec<u32>),
    ) {
        let ExecPlan {
            batch,
            tile,
            kernel,
            intra,
        } = plan;
        if batch <= 1 {
            let mut state = RunState::for_params(params);
            if let Some(kernel) = kernel {
                state = state.with_kernel(kernel);
            }
            for idx in range {
                let (image, _) = dataset.get(idx);
                let mut rng = sample_rng(seed, idx as u64);
                let counts = params
                    .run_sample(&mut state, image.pixels(), &mut rng)
                    .expect("dataset image matches configured input size");
                sink(idx, counts);
            }
            return;
        }
        let mut state = BatchState::for_params(params, batch);
        if let Some(tile) = tile {
            state = state.with_tile(tile);
        }
        if let Some(kernel) = kernel {
            state = state.with_kernel(kernel);
        }
        if let Some(intra) = intra {
            state = state.with_intra(intra);
        }
        let mut start = range.start;
        while start < range.end {
            let end = (start + batch).min(range.end);
            let pixels: Vec<&[f32]> = (start..end).map(|i| dataset.get(i).0.pixels()).collect();
            let mut rngs: Vec<StdRng> = (start..end).map(|i| sample_rng(seed, i as u64)).collect();
            let counts = params
                .run_batch(&mut state, &pixels, &mut rngs)
                .expect("dataset image matches configured input size");
            for (offset, sample_counts) in counts.into_iter().enumerate() {
                sink(start + offset, sample_counts);
            }
            start = end;
        }
    }

    /// Per-neuron spike counts for every sample of `dataset` (inference
    /// only), in dataset order.
    pub fn spike_counts(
        &self,
        params: &NetworkParams,
        dataset: &Dataset,
        seed: u64,
    ) -> Vec<Vec<u32>> {
        let plan = self.exec_plan();
        let chunks = chunk_ranges(dataset.len(), self.threads_for(dataset.len()));
        let per_chunk = parallel_map(&chunks, chunks.len(), |_, range| {
            let mut out = Vec::with_capacity(range.len());
            Self::run_range(params, dataset, seed, range.clone(), plan, |_, counts| {
                out.push(counts)
            });
            out
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Classification accuracy of `params` on `dataset` under `labeler`'s
    /// neuron assignments.
    pub fn evaluate(
        &self,
        params: &NetworkParams,
        dataset: &Dataset,
        labeler: &NeuronLabeler,
        seed: u64,
    ) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let plan = self.exec_plan();
        let chunks = chunk_ranges(dataset.len(), self.threads_for(dataset.len()));
        let correct_per_chunk = parallel_map(&chunks, chunks.len(), |_, range| {
            let mut correct = 0usize;
            Self::run_range(params, dataset, seed, range.clone(), plan, |idx, counts| {
                let (_, label) = dataset.get(idx);
                if labeler.predict(&counts) == Some(label) {
                    correct += 1;
                }
            });
            correct
        });
        correct_per_chunk.iter().sum::<usize>() as f64 / dataset.len() as f64
    }

    /// Assigns a class to each neuron from its responses on `dataset`
    /// (inference only). Response counts are summed per chunk and merged,
    /// which is order-independent.
    pub fn label_neurons(
        &self,
        params: &NetworkParams,
        dataset: &Dataset,
        seed: u64,
    ) -> NeuronLabeler {
        let n_neurons = params.config().n_neurons;
        let plan = self.exec_plan();
        let chunks = chunk_ranges(dataset.len(), self.threads_for(dataset.len()));
        let per_chunk = parallel_map(&chunks, chunks.len(), |_, range| {
            let mut response = vec![[0u64; 10]; n_neurons];
            Self::run_range(params, dataset, seed, range.clone(), plan, |idx, counts| {
                let (_, label) = dataset.get(idx);
                for (j, &c) in counts.iter().enumerate() {
                    response[j][label as usize] += c as u64;
                }
            });
            response
        });
        let mut merged = vec![[0u64; 10]; n_neurons];
        for response in per_chunk {
            for (total, part) in merged.iter_mut().zip(response) {
                for (t, p) in total.iter_mut().zip(part) {
                    *t += p;
                }
            }
        }
        NeuronLabeler::from_responses(&merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DiehlCookNetwork, SnnConfig};
    use sparkxd_data::{SynthDigits, SyntheticSource};

    fn trained_params() -> NetworkParams {
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(25));
        let train = SynthDigits.generate(15, 1);
        net.train_epoch(&train, 2);
        net.into_params()
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 7, 16] {
            for parts in [1usize, 2, 3, 8, 20] {
                let ranges = chunk_ranges(n, parts);
                let mut covered = Vec::new();
                for r in &ranges {
                    assert!(!r.is_empty());
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order_and_results() {
        let items: Vec<usize> = (0..37).collect();
        let serial = parallel_map(&items, 1, |i, &x| i * 1000 + x * x);
        for threads in [2, 3, 8] {
            assert_eq!(
                parallel_map(&items, threads, |i, &x| i * 1000 + x * x),
                serial
            );
        }
    }

    #[test]
    fn evaluate_is_worker_count_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1).label_neurons(&params, &data, 4);
        let serial = BatchEvaluator::with_threads(1).evaluate(&params, &data, &labeler, 5);
        for threads in [2, 3, 7] {
            let parallel =
                BatchEvaluator::with_threads(threads).evaluate(&params, &data, &labeler, 5);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn evaluate_is_batch_size_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .evaluate(&params, &data, &labeler, 5);
        for batch in [2, 3, 8, 17] {
            for threads in [1, 3] {
                let batched = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .evaluate(&params, &data, &labeler, 5);
                assert_eq!(scalar, batched, "batch={batch} threads={threads}");
            }
        }
    }

    #[test]
    fn label_neurons_is_worker_and_batch_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let serial = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        for (threads, batch) in [(2, 1), (1, 4), (5, 3), (2, 17)] {
            let parallel = BatchEvaluator::with_threads(threads)
                .with_batch(batch)
                .label_neurons(&params, &data, 4);
            assert_eq!(
                serial.assignments(),
                parallel.assignments(),
                "threads={threads} batch={batch}"
            );
        }
    }

    #[test]
    fn spike_counts_match_direct_run_sample() {
        let params = trained_params();
        let data = SynthDigits.generate(6, 3);
        let mut state = RunState::for_params(&params);
        let mut direct = Vec::new();
        for (idx, (image, _)) in data.iter().enumerate() {
            let mut rng = sample_rng(9, idx as u64);
            direct.push(
                params
                    .run_sample(&mut state, image.pixels(), &mut rng)
                    .unwrap(),
            );
        }
        for (threads, batch) in [(2, 1), (2, 4), (1, 8)] {
            let batched = BatchEvaluator::with_threads(threads)
                .with_batch(batch)
                .spike_counts(&params, &data, 9);
            assert_eq!(batched, direct, "threads={threads} batch={batch}");
        }
    }

    #[test]
    fn empty_dataset_evaluates_to_zero() {
        let params = trained_params();
        let empty = SynthDigits.generate(0, 1);
        let labeler = NeuronLabeler::from_assignments(vec![None; 20]);
        assert_eq!(
            BatchEvaluator::from_env().evaluate(&params, &empty, &labeler, 1),
            0.0
        );
    }

    #[test]
    fn usize_override_parses_and_clamps_zero_to_one() {
        // Direct parse tests: no process-global env mutation, so this is
        // race-free against sibling tests.
        assert_eq!(parse_usize_override("T_CLAMP", "0"), Some(1));
        assert_eq!(parse_usize_override("T_CLAMP", "1"), Some(1));
        assert_eq!(parse_usize_override("T_CLAMP", "7"), Some(7));
        assert_eq!(parse_usize_override("T_CLAMP", "  3 "), Some(3));
    }

    #[test]
    fn unparsable_override_falls_back_and_warns_once() {
        // Unparsable values behave as unset (the caller's default applies)…
        assert_eq!(parse_usize_override("T_BAD_A", "fourteen"), None);
        assert_eq!(parse_usize_override("T_BAD_A", "-2"), None);
        assert_eq!(parse_usize_override("T_BAD_A", ""), None);
        // …and the stderr warning fires once per variable, not per call.
        assert!(warn_once("T_ONCE_UNIQUE"));
        assert!(!warn_once("T_ONCE_UNIQUE"));
        assert!(warn_once("T_ONCE_OTHER"), "distinct vars warn separately");
    }

    #[test]
    fn env_override_reads_unset_variable_as_none() {
        assert_eq!(env_usize_override("SPARKXD_TEST_NEVER_SET_VAR"), None);
    }

    #[test]
    fn kernel_override_parses_the_three_spellings() {
        // Direct parse tests, mirroring the usize-override suite: no
        // process-global env mutation, race-free against sibling tests.
        assert_eq!(
            parse_kernel_override("K_OK", "auto"),
            Some(KernelChoice::Auto)
        );
        assert_eq!(
            parse_kernel_override("K_OK", " Scalar "),
            Some(KernelChoice::Scalar)
        );
        assert_eq!(
            parse_kernel_override("K_OK", "AVX2"),
            Some(KernelChoice::Avx2)
        );
    }

    #[test]
    fn unparsable_kernel_override_falls_back_and_warns_once() {
        // Unknown spellings behave as unset (the `auto` default applies)…
        assert_eq!(parse_kernel_override("K_BAD_A", "avx512"), None);
        assert_eq!(parse_kernel_override("K_BAD_A", "fast"), None);
        assert_eq!(parse_kernel_override("K_BAD_A", ""), None);
        // …and the stderr warning fires once per variable, not per call
        // (shared warn_once machinery with the numeric overrides).
        assert!(warn_once("K_ONCE_UNIQUE"));
        assert!(!warn_once("K_ONCE_UNIQUE"));
    }

    #[test]
    fn kernel_choice_defaults_to_auto_without_env() {
        // No env override in the test process: the default applies and
        // resolves to a kernel this host can execute.
        assert_eq!(kernel_choice(), KernelChoice::Auto);
        let resolved = kernel();
        assert!(crate::kernels::Kernel::available().contains(&resolved));
    }

    #[test]
    fn evaluate_is_kernel_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar)
            .label_neurons(&params, &data, 4);
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar)
            .evaluate(&params, &data, &labeler, 5);
        for choice in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Avx2] {
            for (threads, batch) in [(1, 1), (1, 4), (2, 8)] {
                let got = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .with_kernel(choice)
                    .evaluate(&params, &data, &labeler, 5);
                assert_eq!(
                    scalar, got,
                    "kernel={choice:?} threads={threads} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn worker_count_respects_job_bound() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(64) >= 1);
    }

    #[test]
    fn batch_size_floors_at_one() {
        // No env override in the test process: the default applies.
        assert!(batch_size() >= 1);
        assert_eq!(BatchEvaluator::from_env().with_batch(0).batch_for(), 1);
        assert_eq!(BatchEvaluator::from_env().with_batch(5).batch_for(), 5);
    }

    #[test]
    fn tile_width_defaults_and_floors_at_one() {
        // No env override in the test process: the default applies.
        assert_eq!(tile_width(), DEFAULT_TILE);
        assert_eq!(BatchEvaluator::from_env().with_tile(0).tile, Some(1));
        assert_eq!(BatchEvaluator::from_env().with_tile(7).tile, Some(7));
    }

    #[test]
    fn evaluate_is_tile_width_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .evaluate(&params, &data, &labeler, 5);
        for tile in [1usize, 3, 19, 20, 64, usize::MAX] {
            for (threads, batch) in [(1, 4), (2, 8)] {
                let tiled = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .with_tile(tile)
                    .evaluate(&params, &data, &labeler, 5);
                assert_eq!(scalar, tiled, "tile={tile} threads={threads} batch={batch}");
            }
        }
    }

    #[test]
    fn nested_levels_share_the_thread_budget() {
        // A huge outer reservation must drive nested pools serial (never
        // below 1). Sibling tests can only reserve *more*, so the equality
        // is race-free; the release check stays a lower bound.
        {
            let _outer = WorkerReservation::for_pool(100_000);
            assert_eq!(worker_count(64), 1);
        }
        assert!(worker_count(64) >= 1, "budget released on drop");
    }

    #[test]
    fn intra_override_parses_the_three_spellings() {
        // Direct parse tests, mirroring the kernel-override suite: no
        // process-global env mutation, race-free against sibling tests.
        assert_eq!(IntraChoice::parse("auto"), Some(IntraChoice::Auto));
        assert_eq!(IntraChoice::parse(" OFF "), Some(IntraChoice::Off));
        assert_eq!(IntraChoice::parse("4"), Some(IntraChoice::Workers(4)));
        assert_eq!(
            IntraChoice::parse("0"),
            Some(IntraChoice::Workers(1)),
            "0 clamps to the serial sweep, like every numeric knob"
        );
        assert_eq!(IntraChoice::parse("1"), Some(IntraChoice::Workers(1)));
    }

    #[test]
    fn unparsable_intra_override_falls_back_and_warns_once() {
        assert_eq!(parse_intra_override("I_BAD_A", "fast"), None);
        assert_eq!(parse_intra_override("I_BAD_A", "-3"), None);
        assert_eq!(parse_intra_override("I_BAD_A", ""), None);
        assert!(warn_once("I_ONCE_UNIQUE"));
        assert!(!warn_once("I_ONCE_UNIQUE"));
    }

    #[test]
    fn intra_choice_defaults_to_auto_without_env() {
        assert_eq!(intra_choice(), IntraChoice::Auto);
    }

    #[test]
    fn intra_workers_fall_back_serial_when_not_worth_it() {
        // Fewer than two tiles: nothing to split, for every mode.
        for choice in [IntraChoice::Auto, IntraChoice::Off, IntraChoice::Workers(8)] {
            assert_eq!(intra_workers_for(choice, 0).0, 1, "{choice:?}");
            assert_eq!(intra_workers_for(choice, 1).0, 1, "{choice:?}");
        }
        // Off is always serial; explicit pins clamp to the tile count.
        assert_eq!(intra_workers_for(IntraChoice::Off, 64).0, 1);
        let (workers, reservation) = intra_workers_for(IntraChoice::Workers(8), 3);
        assert_eq!(workers, 3, "pins clamp to n_tiles");
        assert!(
            reservation.is_some(),
            "pinned sweeps register their workers"
        );
    }

    #[test]
    fn intra_auto_respects_an_exhausted_budget() {
        // A huge outer reservation leaves no leftover budget: auto must
        // resolve to the serial sweep (sibling tests only reserve more,
        // so the equality is race-free).
        let _outer = WorkerReservation::for_pool(100_000);
        let (workers, reservation) = intra_workers_for(IntraChoice::Auto, 64);
        assert_eq!(workers, 1);
        assert!(reservation.is_none());
    }

    #[test]
    fn claim_leftover_grants_sum_below_the_cap() {
        // Hammer the claim from many threads against a cap of 8 total
        // workers (7 extras): at any instant the *sum* of grants held by
        // these threads must stay ≤ 7, however the claims interleave.
        // Sibling tests can only shrink the leftover, never inflate our
        // grants, so the bound is race-free.
        let held = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let (granted, reservation) = WorkerReservation::claim_leftover(8, 99);
                        let now = held.fetch_add(granted, Ordering::SeqCst) + granted;
                        peak.fetch_max(now, Ordering::SeqCst);
                        held.fetch_sub(granted, Ordering::SeqCst);
                        drop(reservation);
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 7,
            "claims oversubscribed: peak {} > 7",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = WorkerPool::new();
        for (jobs, extra) in [(1usize, 0usize), (3, 2), (64, 7), (5, 50)] {
            let hits: Vec<AtomicUsize> = (0..jobs).map(|_| AtomicUsize::new(0)).collect();
            pool.run(jobs, extra, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "jobs={jobs} extra={extra}"
            );
        }
    }

    #[test]
    fn pool_single_job_and_no_seats_take_zero_pool_hops() {
        // The latency satellite: a single job (the single-chunk serve
        // dispatch) or a request with no helper seats must run inline on
        // the caller — no queue, no wakeup, no dispatch counted.
        let pool = WorkerPool::new();
        pool.run(1, 8, &|_| {});
        pool.run(7, 0, &|_| {});
        assert_eq!(pool.dispatches(), 0);
        pool.run(4, 2, &|_| {});
        assert_eq!(pool.dispatches(), 1, "multi-job dispatches do count");
    }

    #[test]
    fn single_item_parallel_map_runs_inline_on_the_caller() {
        // Even with a large thread request, one item means the caller
        // thread does the work itself — the zero-pool-hop regression for
        // the single-chunk serve path.
        let caller = std::thread::current().id();
        let out = parallel_map(&[41], 8, |_, &x| {
            assert_eq!(std::thread::current().id(), caller, "no pool round-trip");
            x + 1
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn pool_reuses_parked_helpers_across_dispatches() {
        // Back-to-back dispatches must not leak state: every job of every
        // dispatch still runs exactly once, on long-lived threads.
        let pool = WorkerPool::new();
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            pool.run(9, 3, &|i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 45, "round {round}");
        }
        assert_eq!(pool.dispatches(), 20);
    }

    #[test]
    fn pool_propagates_job_panics() {
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 3, &|i| {
                if i == 5 {
                    panic!("job five failed");
                }
            });
        }));
        assert!(result.is_err(), "a job panic must reach the caller");
        // The pool must stay usable after a panicked dispatch.
        let sum = AtomicUsize::new(0);
        pool.run(4, 2, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn parallel_map_panics_propagate_through_the_pool() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&[0usize; 16], 4, |i, _| {
                if i == 11 {
                    panic!("shard eleven failed");
                }
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn evaluate_is_intra_invariant() {
        let params = trained_params();
        let data = SynthDigits.generate(13, 3);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &data, 4);
        let serial = BatchEvaluator::with_threads(1)
            .with_batch(4)
            .with_tile(4)
            .with_intra(IntraChoice::Off)
            .evaluate(&params, &data, &labeler, 5);
        for intra in [
            IntraChoice::Auto,
            IntraChoice::Workers(2),
            IntraChoice::Workers(3),
            IntraChoice::Workers(7),
        ] {
            let got = BatchEvaluator::with_threads(1)
                .with_batch(4)
                .with_tile(4)
                .with_intra(intra)
                .evaluate(&params, &data, &labeler, 5);
            assert_eq!(serial, got, "intra={intra:?}");
        }
    }
}
