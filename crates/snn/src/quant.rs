//! Packed fixed-point weight images — the quantised DRAM storage format.
//!
//! SparkXD composes with quantisation (its related work, FSpiNN, quantises
//! weights; EnforceSNN and EDEN run resilient inference on quantised
//! images in approximate DRAM). This module provides the storage side of
//! that composition:
//!
//! * [`WeightPrecision`] — the word width of the DRAM weight image
//!   (`fp32` | `int8` | `int16`), carrying the **single**
//!   [`bytes_per_word`](WeightPrecision::bytes_per_word) /
//!   [`word_bits`](WeightPrecision::word_bits) helper every layer
//!   (mapping, trace generation, injection bookkeeping, energy workloads)
//!   routes through instead of hardcoding 4 bytes/word.
//! * [`QuantizedImage`] — a bit-packed `Vec<u8>` payload of symmetric
//!   uniform codes over `[0, w_max]` with a per-matrix scale. It is a
//!   first-class **injection target** alongside
//!   [`StoredWeights`]: bit flips XOR the packed code in place
//!   (`sparkxd-error` operates on [`payload_mut`](QuantizedImage::payload_mut)
//!   at the native word width), and the corrupted image dequantises at
//!   [`EffectivePlane`]-build time — codes → `f32` once per corruption
//!   instance — so the hot loops stay untouched `f32` SoA.
//!
//! With `scale = w_max / max_code`, **every** representable code (hence
//! every post-flip code) dequantises into `[0, w_max]`; the plane build
//! still applies the ordinary effective-weight read rule so the quantised
//! path shares one clamping story with the `f32` path.

use crate::synapse::{EffectivePlane, StoredWeights};

/// Word width of the DRAM weight image.
///
/// This is the one place the workspace answers "how many bytes is a
/// weight word?" — mapping geometry, trace generation, injection reports
/// and energy workloads all consume [`bytes_per_word`](Self::bytes_per_word)
/// or [`word_bits`](Self::word_bits) rather than assuming `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightPrecision {
    /// Raw `f32` image (the default; 4 bytes/word).
    #[default]
    Fp32,
    /// Packed 8-bit codes (1 byte/word, 4× smaller image).
    Int8,
    /// Packed 16-bit codes (2 bytes/word, 2× smaller image).
    Int16,
}

impl WeightPrecision {
    /// Bits per stored weight word.
    #[inline]
    pub fn word_bits(self) -> u32 {
        match self {
            Self::Fp32 => 32,
            Self::Int8 => 8,
            Self::Int16 => 16,
        }
    }

    /// Bytes per stored weight word — the single bytes-per-word helper
    /// `Mapping` and `trace_gen::columns_for_words` route through.
    #[inline]
    pub fn bytes_per_word(self) -> usize {
        (self.word_bits() / 8) as usize
    }

    /// `true` for the packed (non-`f32`) widths.
    #[inline]
    pub fn is_quantized(self) -> bool {
        !matches!(self, Self::Fp32)
    }

    /// Canonical lowercase label (`"fp32"` | `"int8"` | `"int16"`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Fp32 => "fp32",
            Self::Int8 => "int8",
            Self::Int16 => "int16",
        }
    }

    /// Parses a `SPARKXD_PRECISION` value (case-insensitive, surrounding
    /// whitespace ignored). Returns `None` for anything that is not
    /// `fp32`, `int8` or `int16` — the caller decides how to warn.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "fp32" | "f32" => Some(Self::Fp32),
            "int8" | "i8" => Some(Self::Int8),
            "int16" | "i16" => Some(Self::Int16),
            _ => None,
        }
    }

    /// Storage precision requested by the `SPARKXD_PRECISION` environment
    /// variable; unset or unparsable values fall back to [`Fp32`]
    /// (unparsable warns on stderr, matching the other `SPARKXD_*` knobs).
    pub fn from_env() -> Self {
        match std::env::var("SPARKXD_PRECISION") {
            Ok(raw) => Self::parse(&raw).unwrap_or_else(|| {
                eprintln!(
                    "sparkxd: ignoring invalid SPARKXD_PRECISION={raw:?} \
                     (expected fp32 | int8 | int16)"
                );
                Self::Fp32
            }),
            Err(_) => Self::Fp32,
        }
    }
}

impl std::fmt::Display for WeightPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A bit-packed quantised copy of a weight matrix — the image that
/// actually lives in (approximate) DRAM when a low-precision tier is
/// selected.
///
/// Codes are unsigned symmetric levels over `[0, w_max]`, stored
/// little-endian in a contiguous byte payload (`Int8`: 1 byte/word,
/// `Int16`: 2 bytes/word). [`dram_bytes`](Self::dram_bytes) is the
/// payload length by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedImage {
    precision: WeightPrecision,
    scale: f32,
    payload: Vec<u8>,
    inputs: usize,
    neurons: usize,
    w_max: f32,
}

impl QuantizedImage {
    /// Quantises `weights` to packed `precision` codes over `[0, w_max]`.
    /// Corrupted (non-finite / out-of-range) stored values are clamped
    /// through the effective-weight rule first.
    ///
    /// A degenerate range (`w_max ≤ 0` or non-finite) has no representable
    /// span: every effective weight is 0, so the image is all-zero **by
    /// construction** — `scale` is pinned to 0 and the division is never
    /// taken, instead of `eff / 0` quietly routing NaN through the
    /// float→int cast.
    ///
    /// # Panics
    ///
    /// Panics if `precision` is [`WeightPrecision::Fp32`] — the `f32`
    /// image is [`StoredWeights`], not a packed code image.
    pub fn quantize(weights: &StoredWeights, precision: WeightPrecision) -> Self {
        assert!(
            precision.is_quantized(),
            "packed image widths are int8 or int16; fp32 lives in StoredWeights"
        );
        let max_code = Self::max_code_for(precision) as f32;
        let w_max = weights.w_max();
        let scale = if w_max.is_finite() && w_max > 0.0 {
            w_max / max_code
        } else {
            0.0
        };
        let mut image = Self {
            precision,
            scale,
            payload: vec![0u8; weights.len() * precision.bytes_per_word()],
            inputs: weights.inputs(),
            neurons: weights.neurons(),
            w_max,
        };
        if scale > 0.0 {
            for (word, &w) in weights.as_slice().iter().enumerate() {
                let eff = StoredWeights::effective(w, w_max);
                image.set_code(word, (eff / scale).round() as u32);
            }
        }
        image
    }

    fn max_code_for(precision: WeightPrecision) -> u32 {
        (1u32 << precision.word_bits()) - 1
    }

    /// Largest representable code (`255` / `65535`).
    pub fn max_code(&self) -> u32 {
        Self::max_code_for(self.precision)
    }

    /// Storage width of this image.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Bits per packed word.
    pub fn word_bits(&self) -> u32 {
        self.precision.word_bits()
    }

    /// Number of weight words (inputs × neurons).
    pub fn words(&self) -> usize {
        self.inputs * self.neurons
    }

    /// Number of input lines.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Maximum synaptic conductance the codes span.
    pub fn w_max(&self) -> f32 {
        self.w_max
    }

    /// Dequantisation scale (`w_max / max_code`; 0 for a degenerate range).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Bytes of DRAM the packed image occupies — exactly the payload
    /// length (`words × bytes_per_word`), the quantity mapping and energy
    /// accounting consume.
    pub fn dram_bytes(&self) -> usize {
        self.payload.len()
    }

    /// The packed byte payload, little-endian per word — the bit-exact
    /// DRAM image.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Mutable packed payload: error injection XORs bits through this at
    /// the native word width.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.payload
    }

    /// Code stored for flat weight word `word`.
    pub fn code(&self, word: usize) -> u32 {
        match self.precision {
            WeightPrecision::Int8 => self.payload[word] as u32,
            WeightPrecision::Int16 => {
                u16::from_le_bytes([self.payload[2 * word], self.payload[2 * word + 1]]) as u32
            }
            WeightPrecision::Fp32 => unreachable!("packed image is never fp32"),
        }
    }

    /// Stores `code` (masked to the word width) for flat weight word
    /// `word`.
    pub fn set_code(&mut self, word: usize, code: u32) {
        let code = code & self.max_code();
        match self.precision {
            WeightPrecision::Int8 => self.payload[word] = code as u8,
            WeightPrecision::Int16 => {
                self.payload[2 * word..2 * word + 2].copy_from_slice(&(code as u16).to_le_bytes());
            }
            WeightPrecision::Fp32 => unreachable!("packed image is never fp32"),
        }
    }

    /// Dequantised `f32` value of flat weight word `word`. Always lands in
    /// `[0, w_max]` — even for codes written by bit flips — because the
    /// scale spans the full code range.
    #[inline]
    pub fn dequantized(&self, word: usize) -> f32 {
        self.code(word) as f32 * self.scale
    }

    /// Reconstructs an FP32 weight matrix from the (possibly corrupted)
    /// codes.
    pub fn dequantize(&self) -> StoredWeights {
        let w = (0..self.words()).map(|i| self.dequantized(i)).collect();
        StoredWeights::from_weights(self.inputs, self.neurons, self.w_max, w)
    }

    /// Builds the read-side [`EffectivePlane`] directly from the codes —
    /// dequantising each word exactly once — bit-for-bit identical to
    /// `EffectivePlane::build(&self.dequantize(), clamp_reads)` without
    /// materialising the intermediate `f32` image.
    pub fn build_plane(&self, clamp_reads: bool) -> EffectivePlane {
        EffectivePlane::build_from_fn(self.inputs, self.neurons, self.w_max, clamp_reads, |word| {
            self.dequantized(word)
        })
    }

    /// Quantise-then-dequantise round trip: the `f32` image a network
    /// actually computes with when its weights are stored at `precision`.
    pub fn roundtrip(weights: &StoredWeights, precision: WeightPrecision) -> StoredWeights {
        Self::quantize(weights, precision).dequantize()
    }

    /// Worst-case reconstruction error (half a quantisation step).
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIDTHS: [WeightPrecision; 2] = [WeightPrecision::Int8, WeightPrecision::Int16];

    #[test]
    fn precision_word_geometry() {
        assert_eq!(WeightPrecision::Fp32.word_bits(), 32);
        assert_eq!(WeightPrecision::Int8.word_bits(), 8);
        assert_eq!(WeightPrecision::Int16.word_bits(), 16);
        assert_eq!(WeightPrecision::Fp32.bytes_per_word(), 4);
        assert_eq!(WeightPrecision::Int8.bytes_per_word(), 1);
        assert_eq!(WeightPrecision::Int16.bytes_per_word(), 2);
        assert!(!WeightPrecision::Fp32.is_quantized());
        assert!(WeightPrecision::Int8.is_quantized());
    }

    #[test]
    fn precision_parses_labels_and_rejects_noise() {
        for p in [
            WeightPrecision::Fp32,
            WeightPrecision::Int8,
            WeightPrecision::Int16,
        ] {
            assert_eq!(WeightPrecision::parse(p.label()), Some(p));
            assert_eq!(WeightPrecision::parse(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(
            WeightPrecision::parse(" int8 "),
            Some(WeightPrecision::Int8)
        );
        assert_eq!(WeightPrecision::parse("f32"), Some(WeightPrecision::Fp32));
        assert_eq!(WeightPrecision::parse("int4"), None);
        assert_eq!(WeightPrecision::parse(""), None);
    }

    #[test]
    fn payload_length_matches_reported_dram_bytes() {
        // Regression: the old `QuantizedWeights` stored 8-bit levels in a
        // `Vec<u16>` while `dram_bytes()` reported `len * bits/8` — the
        // report and the actual storage disagreed by 2×. The packed image
        // makes the two equal by construction; pin it for both widths.
        let w = StoredWeights::random(50, 10, 1.0, 5);
        for p in WIDTHS {
            let q = QuantizedImage::quantize(&w, p);
            assert_eq!(q.payload().len(), q.dram_bytes(), "{p}");
            assert_eq!(q.dram_bytes(), w.len() * p.bytes_per_word(), "{p}");
        }
    }

    #[test]
    fn roundtrip_error_bounded() {
        let w = StoredWeights::random(50, 10, 1.0, 5);
        for p in WIDTHS {
            let q = QuantizedImage::quantize(&w, p);
            let back = q.dequantize();
            for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
                assert!(
                    (a - b).abs() <= q.max_error() + 1e-6,
                    "{p} error {} > {}",
                    (a - b).abs(),
                    q.max_error()
                );
            }
        }
    }

    #[test]
    fn eight_bit_halves_footprint_vs_sixteen() {
        let w = StoredWeights::random(10, 10, 1.0, 1);
        let q8 = QuantizedImage::quantize(&w, WeightPrecision::Int8);
        let q16 = QuantizedImage::quantize(&w, WeightPrecision::Int16);
        assert_eq!(q8.dram_bytes() * 2, q16.dram_bytes());
        // And a quarter of the FP32 image.
        assert_eq!(
            q8.dram_bytes() * 4,
            w.len() * WeightPrecision::Fp32.bytes_per_word()
        );
    }

    #[test]
    fn codes_pack_little_endian() {
        let mut q = QuantizedImage::quantize(
            &StoredWeights::from_weights(1, 2, 1.0, vec![0.0, 0.0]),
            WeightPrecision::Int16,
        );
        q.set_code(1, 0xABCD);
        assert_eq!(q.payload(), &[0, 0, 0xCD, 0xAB]);
        assert_eq!(q.code(1), 0xABCD);
        // Codes wider than the word are masked, not wrapped arbitrarily.
        q.set_code(0, 0x1_0002);
        assert_eq!(q.code(0), 0x0002);
    }

    #[test]
    fn corrupted_values_are_scrubbed() {
        let w = StoredWeights::from_weights(1, 2, 1.0, vec![f32::NAN, 5.0]);
        let q = QuantizedImage::quantize(&w, WeightPrecision::Int8);
        let back = q.dequantize();
        assert_eq!(back.raw(0, 0), 0.0);
        assert!((back.raw(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_w_max_quantizes_to_all_zero_without_nan() {
        // Regression (PR 6): `scale = w_max / max_code` used to be taken
        // unguarded, so a `w_max == 0` image pushed `0/0 = NaN` through
        // `.round() as` int — the all-zero result was an accident of the
        // saturating cast, and `max_error` still claimed `NaN/2`. The
        // degenerate range must yield zeros *by construction*.
        for w_max in [0.0f32, -1.0, f32::NAN, f32::NEG_INFINITY] {
            let w = StoredWeights::from_weights(2, 2, w_max, vec![0.3, f32::NAN, -0.5, 0.9]);
            for p in WIDTHS {
                let q = QuantizedImage::quantize(&w, p);
                assert_eq!(q.max_error(), 0.0, "w_max={w_max} {p}");
                let back = q.dequantize();
                assert!(
                    back.as_slice().iter().all(|&v| v == 0.0),
                    "w_max={w_max} {p}: {:?}",
                    back.as_slice()
                );
            }
        }
    }

    #[test]
    fn every_possible_code_dequantizes_in_range() {
        let w = StoredWeights::random(2, 2, 1.0, 3);
        let mut q = QuantizedImage::quantize(&w, WeightPrecision::Int8);
        for code in 0..=q.max_code() {
            q.set_code(0, code);
            let v = q.dequantized(0);
            assert!((0.0..=q.w_max()).contains(&v), "code {code} → {v}");
        }
    }

    #[test]
    fn build_plane_matches_dequantize_then_build() {
        let w = StoredWeights::random(17, 9, 1.0, 11);
        for p in WIDTHS {
            let mut q = QuantizedImage::quantize(&w, p);
            // Corrupt a few codes, including the max, to exercise the rule.
            q.set_code(0, q.max_code());
            q.set_code(5, 0);
            for clamp in [true, false] {
                assert_eq!(
                    q.build_plane(clamp),
                    EffectivePlane::build(&q.dequantize(), clamp),
                    "{p} clamp={clamp}"
                );
            }
        }
    }

    #[test]
    fn sixteen_bit_is_finer_than_eight() {
        let w = StoredWeights::random(10, 10, 1.0, 2);
        assert!(
            QuantizedImage::quantize(&w, WeightPrecision::Int16).max_error()
                < QuantizedImage::quantize(&w, WeightPrecision::Int8).max_error()
        );
    }

    #[test]
    #[should_panic(expected = "packed image widths")]
    fn fp32_is_not_a_packed_width() {
        let w = StoredWeights::random(2, 2, 1.0, 0);
        let _ = QuantizedImage::quantize(&w, WeightPrecision::Fp32);
    }
}
