//! Fixed-point weight quantisation (extension).
//!
//! The paper notes SparkXD composes with quantisation (its related work,
//! FSpiNN, quantises weights). This module provides symmetric uniform
//! quantisation of the weight image to 8 or 16 bits, halving/quartering the
//! DRAM footprint — and therefore the number of DRAM bursts — at a small
//! accuracy cost.

use crate::synapse::StoredWeights;

/// A quantised copy of a weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    bits: u8,
    scale: f32,
    levels: Vec<u16>,
    inputs: usize,
    neurons: usize,
    w_max: f32,
}

impl QuantizedWeights {
    /// Quantises `weights` to `bits` (8 or 16) uniform levels over
    /// `[0, w_max]`. Corrupted (non-finite / out-of-range) stored values
    /// are clamped through the effective-weight rule first.
    ///
    /// A degenerate range (`w_max ≤ 0` or non-finite) has no representable
    /// span: every effective weight is 0, so the image is all-zero **by
    /// construction** — `scale` is pinned to 0 and the division is never
    /// taken, instead of `eff / 0` quietly routing NaN through the
    /// float→int cast.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 8 or 16.
    pub fn quantize(weights: &StoredWeights, bits: u8) -> Self {
        assert!(bits == 8 || bits == 16, "supported widths: 8 or 16 bits");
        let levels_max = ((1u32 << bits) - 1) as f32;
        let w_max = weights.w_max();
        let scale = if w_max.is_finite() && w_max > 0.0 {
            w_max / levels_max
        } else {
            0.0
        };
        let levels = if scale > 0.0 {
            weights
                .as_slice()
                .iter()
                .map(|&w| {
                    let eff = StoredWeights::effective(w, w_max);
                    (eff / scale).round() as u16
                })
                .collect()
        } else {
            vec![0u16; weights.len()]
        };
        Self {
            bits,
            scale,
            levels,
            inputs: weights.inputs(),
            neurons: weights.neurons(),
            w_max,
        }
    }

    /// Bit width per weight.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Bytes of DRAM needed to store the quantised image.
    pub fn dram_bytes(&self) -> usize {
        self.levels.len() * (self.bits as usize / 8)
    }

    /// Reconstructs an FP32 weight matrix.
    pub fn dequantize(&self) -> StoredWeights {
        let w = self.levels.iter().map(|&l| l as f32 * self.scale).collect();
        StoredWeights::from_weights(self.inputs, self.neurons, self.w_max, w)
    }

    /// Worst-case reconstruction error (half a quantisation step).
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        let w = StoredWeights::random(50, 10, 1.0, 5);
        for bits in [8u8, 16] {
            let q = QuantizedWeights::quantize(&w, bits);
            let back = q.dequantize();
            for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
                assert!(
                    (a - b).abs() <= q.max_error() + 1e-6,
                    "{bits}-bit error {} > {}",
                    (a - b).abs(),
                    q.max_error()
                );
            }
        }
    }

    #[test]
    fn eight_bit_halves_footprint_vs_sixteen() {
        let w = StoredWeights::random(10, 10, 1.0, 1);
        let q8 = QuantizedWeights::quantize(&w, 8);
        let q16 = QuantizedWeights::quantize(&w, 16);
        assert_eq!(q8.dram_bytes() * 2, q16.dram_bytes());
        // And a quarter of the FP32 image.
        assert_eq!(q8.dram_bytes() * 4, w.len() * 4);
    }

    #[test]
    fn corrupted_values_are_scrubbed() {
        let w = StoredWeights::from_weights(1, 2, 1.0, vec![f32::NAN, 5.0]);
        let q = QuantizedWeights::quantize(&w, 8);
        let back = q.dequantize();
        assert_eq!(back.raw(0, 0), 0.0);
        assert!((back.raw(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_w_max_quantizes_to_all_zero_without_nan() {
        // Regression: `scale = w_max / levels_max` used to be taken
        // unguarded, so a `w_max == 0` image pushed `0/0 = NaN` through
        // `.round() as u16` — the all-zero result was an accident of the
        // saturating cast, and `max_error` still claimed `NaN/2`. The
        // degenerate range must yield zeros *by construction*.
        for w_max in [0.0f32, -1.0, f32::NAN, f32::NEG_INFINITY] {
            let w = StoredWeights::from_weights(2, 2, w_max, vec![0.3, f32::NAN, -0.5, 0.9]);
            for bits in [8u8, 16] {
                let q = QuantizedWeights::quantize(&w, bits);
                assert_eq!(q.max_error(), 0.0, "w_max={w_max} bits={bits}");
                let back = q.dequantize();
                assert!(
                    back.as_slice().iter().all(|&v| v == 0.0),
                    "w_max={w_max} bits={bits}: {:?}",
                    back.as_slice()
                );
            }
        }
    }

    #[test]
    fn sixteen_bit_is_finer_than_eight() {
        let w = StoredWeights::random(10, 10, 1.0, 2);
        assert!(
            QuantizedWeights::quantize(&w, 16).max_error()
                < QuantizedWeights::quantize(&w, 8).max_error()
        );
    }

    #[test]
    #[should_panic(expected = "supported widths")]
    fn unsupported_width_panics() {
        let w = StoredWeights::random(2, 2, 1.0, 0);
        let _ = QuantizedWeights::quantize(&w, 4);
    }
}
