//! Synaptic weight storage.
//!
//! Weights are the data SparkXD stores in (approximate) DRAM, so the matrix
//! exposes its raw `f32` storage for bit-level error injection and DRAM
//! mapping. Reads go through [`WeightMatrix::effective`], which models a
//! bounded hardware synapse: the conductance applied to the membrane is
//! clamped to `[0, w_max]` and non-finite values (possible after exponent
//! bit flips) contribute nothing.

/// Dense input→neuron weight matrix, row-major by input line
/// (`w[input * neurons + neuron]`).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMatrix {
    inputs: usize,
    neurons: usize,
    w: Vec<f32>,
    w_max: f32,
}

impl WeightMatrix {
    /// Creates a matrix initialised with uniform random weights in
    /// `[0, 0.3 * w_max]`, deterministically from `seed`.
    pub fn random(inputs: usize, neurons: usize, w_max: f32, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (0..inputs * neurons)
            .map(|_| rng.gen::<f32>() * 0.3 * w_max)
            .collect();
        Self {
            inputs,
            neurons,
            w,
            w_max,
        }
    }

    /// Wraps existing weights.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != inputs * neurons`.
    pub fn from_weights(inputs: usize, neurons: usize, w_max: f32, w: Vec<f32>) -> Self {
        assert_eq!(w.len(), inputs * neurons, "weight vector length mismatch");
        Self {
            inputs,
            neurons,
            w,
            w_max,
        }
    }

    /// Number of input lines.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Maximum synaptic conductance.
    pub fn w_max(&self) -> f32 {
        self.w_max
    }

    /// Total number of weights.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` for an empty matrix.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Raw storage — the bit-exact image stored in DRAM.
    pub fn as_slice(&self) -> &[f32] {
        &self.w
    }

    /// Mutable raw storage (error injection writes through this).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.w
    }

    /// Stored value at `(input, neuron)` (possibly corrupted).
    pub fn raw(&self, input: usize, neuron: usize) -> f32 {
        self.w[input * self.neurons + neuron]
    }

    /// Sets the stored value at `(input, neuron)`.
    pub fn set(&mut self, input: usize, neuron: usize, value: f32) {
        self.w[input * self.neurons + neuron] = value;
    }

    /// Effective synaptic conductance of a stored value under the bounded
    /// hardware synapse: non-finite → 0, else clamped to `[0, w_max]`.
    pub fn effective(value: f32, w_max: f32) -> f32 {
        if value.is_finite() {
            value.clamp(0.0, w_max)
        } else {
            0.0
        }
    }

    /// Row of weights fanning out from `input`.
    pub fn fan_out(&self, input: usize) -> &[f32] {
        &self.w[input * self.neurons..(input + 1) * self.neurons]
    }

    /// Mutable row of weights fanning out from `input`.
    pub fn fan_out_mut(&mut self, input: usize) -> &mut [f32] {
        &mut self.w[input * self.neurons..(input + 1) * self.neurons]
    }

    /// Normalises each neuron's total (effective) input weight to
    /// `target_sum` — Diehl & Cook's homeostatic weight normalisation,
    /// applied after each training sample. Also repairs non-finite storage
    /// (a training-time scrub; inference does not do this).
    pub fn normalize_columns(&mut self, target_sum: f32) {
        for j in 0..self.neurons {
            let mut sum = 0.0;
            for i in 0..self.inputs {
                let v = self.w[i * self.neurons + j];
                sum += Self::effective(v, self.w_max);
            }
            if sum <= f32::EPSILON {
                continue;
            }
            let scale = target_sum / sum;
            for i in 0..self.inputs {
                let v = &mut self.w[i * self.neurons + j];
                *v = (Self::effective(*v, self.w_max) * scale).clamp(0.0, self.w_max);
            }
        }
    }

    /// Fraction of weights that are non-zero (network connectivity).
    pub fn connectivity(&self) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        let nz = self.w.iter().filter(|v| **v != 0.0).count();
        nz as f64 / self.w.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let a = WeightMatrix::random(10, 5, 1.0, 3);
        let b = WeightMatrix::random(10, 5, 1.0, 3);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&w| (0.0..=0.3).contains(&w)));
    }

    #[test]
    fn effective_clamps_and_scrubs() {
        assert_eq!(WeightMatrix::effective(0.5, 1.0), 0.5);
        assert_eq!(WeightMatrix::effective(-3.0, 1.0), 0.0);
        assert_eq!(WeightMatrix::effective(7.0, 1.0), 1.0);
        assert_eq!(WeightMatrix::effective(f32::NAN, 1.0), 0.0);
        assert_eq!(WeightMatrix::effective(f32::INFINITY, 1.0), 0.0);
    }

    #[test]
    fn normalisation_sets_column_sums() {
        let mut m = WeightMatrix::random(50, 4, 1.0, 1);
        m.normalize_columns(10.0);
        for j in 0..4 {
            let sum: f32 = (0..50).map(|i| m.raw(i, j)).sum();
            assert!((sum - 10.0).abs() < 0.1, "column {j} sum {sum}");
        }
    }

    #[test]
    fn normalisation_scrubs_corrupt_values() {
        let mut m = WeightMatrix::from_weights(2, 1, 1.0, vec![f32::NAN, 0.5]);
        m.normalize_columns(1.0);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        assert!((m.raw(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fan_out_views_rows() {
        let m = WeightMatrix::from_weights(2, 3, 1.0, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.fan_out(0), &[1., 2., 3.]);
        assert_eq!(m.fan_out(1), &[4., 5., 6.]);
        assert_eq!(m.raw(1, 2), 6.0);
    }

    #[test]
    fn connectivity_counts_nonzero() {
        let m = WeightMatrix::from_weights(2, 2, 1.0, vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(m.connectivity(), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let _ = WeightMatrix::from_weights(2, 2, 1.0, vec![0.0; 3]);
    }
}
