//! Synaptic weight storage, split from the synaptic read path.
//!
//! SparkXD stores weights in (approximate) DRAM and computes with what the
//! synapse hardware actually delivers. The two live in different types:
//!
//! * [`StoredWeights`] — the raw `f32` DRAM image, bit-exact. This is the
//!   sole target of bit-flip injection and DRAM mapping; nothing here is
//!   clamped or scrubbed.
//! * [`EffectivePlane`] — the values the compute fabric consumes, derived
//!   from a [`StoredWeights`] *once per corruption instance*: the bounded
//!   hardware synapse (non-finite → 0, optionally clamped to `[0, w_max]`)
//!   is applied at build time, and a per-input row-activity summary lets
//!   the hot loop skip all-zero fan-out rows entirely.
//!
//! Inference streams [`EffectivePlane`] rows; training and error injection
//! mutate [`StoredWeights`] and rebuild the affected plane rows (see
//! [`EffectivePlane::rebuild_rows`]).

/// Dense input→neuron weight matrix, row-major by input line
/// (`w[input * neurons + neuron]`) — the bit-exact image stored in DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredWeights {
    inputs: usize,
    neurons: usize,
    w: Vec<f32>,
    w_max: f32,
}

impl StoredWeights {
    /// Creates a matrix initialised with uniform random weights in
    /// `[0, 0.3 * w_max]`, deterministically from `seed`.
    pub fn random(inputs: usize, neurons: usize, w_max: f32, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w = (0..inputs * neurons)
            .map(|_| rng.gen::<f32>() * 0.3 * w_max)
            .collect();
        Self {
            inputs,
            neurons,
            w,
            w_max,
        }
    }

    /// Wraps existing weights.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != inputs * neurons`.
    pub fn from_weights(inputs: usize, neurons: usize, w_max: f32, w: Vec<f32>) -> Self {
        assert_eq!(w.len(), inputs * neurons, "weight vector length mismatch");
        Self {
            inputs,
            neurons,
            w,
            w_max,
        }
    }

    /// Number of input lines.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Maximum synaptic conductance.
    pub fn w_max(&self) -> f32 {
        self.w_max
    }

    /// Total number of weights.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` for an empty matrix.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Raw storage — the bit-exact image stored in DRAM.
    pub fn as_slice(&self) -> &[f32] {
        &self.w
    }

    /// Mutable raw storage (error injection writes through this).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.w
    }

    /// Stored value at `(input, neuron)` (possibly corrupted).
    pub fn raw(&self, input: usize, neuron: usize) -> f32 {
        self.w[input * self.neurons + neuron]
    }

    /// Sets the stored value at `(input, neuron)`.
    pub fn set(&mut self, input: usize, neuron: usize, value: f32) {
        self.w[input * self.neurons + neuron] = value;
    }

    /// Effective synaptic conductance of a stored value under the bounded
    /// hardware synapse: non-finite → 0, else clamped to `[0, w_max]`.
    #[inline]
    pub fn effective(value: f32, w_max: f32) -> f32 {
        if value.is_finite() {
            value.clamp(0.0, w_max)
        } else {
            0.0
        }
    }

    /// The input row holding flat weight-word `word` (the layout is
    /// row-major by input line, 1 word per weight).
    pub fn row_of_word(&self, word: usize) -> usize {
        word / self.neurons
    }

    /// The sorted, deduplicated input rows covering the given flat weight
    /// words — the plane rows a corruption touching exactly those words
    /// invalidates.
    pub fn rows_of_words(&self, words: &[usize]) -> Vec<usize> {
        let mut rows: Vec<usize> = words.iter().map(|&w| self.row_of_word(w)).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Row of weights fanning out from `input`.
    #[inline]
    pub fn fan_out(&self, input: usize) -> &[f32] {
        &self.w[input * self.neurons..(input + 1) * self.neurons]
    }

    /// Mutable row of weights fanning out from `input`.
    pub fn fan_out_mut(&mut self, input: usize) -> &mut [f32] {
        &mut self.w[input * self.neurons..(input + 1) * self.neurons]
    }

    /// Normalises each neuron's total (effective) input weight to
    /// `target_sum` — Diehl & Cook's homeostatic weight normalisation,
    /// applied after each training sample. Also repairs non-finite storage
    /// (a training-time scrub; inference does not do this).
    ///
    /// The matrix is row-major, so both sweeps walk it row by row with
    /// per-column accumulators/scales; per fixed column the accumulation
    /// order over inputs is ascending, bit-identical to a column-major
    /// traversal but cache-friendly at N3600.
    pub fn normalize_columns(&mut self, target_sum: f32) {
        let w_max = self.w_max;
        let mut sums = vec![0.0f32; self.neurons];
        for row in self.w.chunks_exact(self.neurons) {
            for (sum, &v) in sums.iter_mut().zip(row) {
                *sum += Self::effective(v, w_max);
            }
        }
        // NaN marks a dead column: left untouched, exactly like the old
        // per-column `continue`.
        let scales: Vec<f32> = sums
            .iter()
            .map(|&sum| {
                if sum <= f32::EPSILON {
                    f32::NAN
                } else {
                    target_sum / sum
                }
            })
            .collect();
        for row in self.w.chunks_exact_mut(self.neurons) {
            for (&scale, v) in scales.iter().zip(row) {
                if scale.is_nan() {
                    continue;
                }
                *v = (Self::effective(*v, w_max) * scale).clamp(0.0, w_max);
            }
        }
    }

    /// Fraction of weights that are *effectively* non-zero (network
    /// connectivity). Corrupted storage that contributes nothing to the
    /// membrane — NaN/Inf words after exponent flips, negative values the
    /// bounded synapse clamps away — is not a live connection.
    pub fn connectivity(&self) -> f64 {
        if self.w.is_empty() {
            return 0.0;
        }
        let nz = self
            .w
            .iter()
            .filter(|&&v| Self::effective(v, self.w_max) != 0.0)
            .count();
        nz as f64 / self.w.len() as f64
    }
}

/// The read-side view of a [`StoredWeights`]: every value passed through
/// the synapse read rule at build time, plus a per-row liveness summary.
///
/// Built **once per corruption instance** — after training freezes the
/// weights, or after an error-injection pass rewrites part of the image —
/// instead of re-clamping every stored word on every timestep of every
/// sample. When a corruption touches a known set of rows, only those rows
/// need rebuilding ([`rebuild_rows`](Self::rebuild_rows)).
#[derive(Debug, Clone, PartialEq)]
pub struct EffectivePlane {
    inputs: usize,
    neurons: usize,
    w_max: f32,
    /// Whether reads clamp to `[0, w_max]` (bounded hardware synapse) or
    /// pass finite values through raw (the paper's MSB observation).
    clamp: bool,
    /// Read-rule-applied values, same row-major layout as the store.
    values: Vec<f32>,
    /// `true` where the fan-out row has at least one non-zero effective
    /// value; all-zero rows are skipped by drive accumulation.
    row_live: Vec<bool>,
}

impl EffectivePlane {
    /// Derives the plane from `stored` under the given read policy.
    pub fn build(stored: &StoredWeights, clamp_reads: bool) -> Self {
        let mut plane = Self {
            inputs: stored.inputs,
            neurons: stored.neurons,
            w_max: stored.w_max,
            clamp: clamp_reads,
            values: vec![0.0; stored.w.len()],
            row_live: vec![false; stored.inputs],
        };
        for row in 0..stored.inputs {
            plane.rebuild_row(stored, row);
        }
        plane
    }

    /// Derives a plane from per-word stored values produced by
    /// `stored_value` (flat row-major word index), applying the same read
    /// rule and row-liveness summary as [`build`](Self::build). This is
    /// how packed quantised images
    /// ([`QuantizedImage`](crate::quant::QuantizedImage)) dequantise at
    /// plane-build time without materialising an intermediate
    /// [`StoredWeights`]: the result is bit-for-bit identical to building
    /// from the dequantised store.
    pub fn build_from_fn(
        inputs: usize,
        neurons: usize,
        w_max: f32,
        clamp_reads: bool,
        mut stored_value: impl FnMut(usize) -> f32,
    ) -> Self {
        let mut plane = Self {
            inputs,
            neurons,
            w_max,
            clamp: clamp_reads,
            values: vec![0.0; inputs * neurons],
            row_live: vec![false; inputs],
        };
        for row in 0..inputs {
            let dst = &mut plane.values[row * neurons..(row + 1) * neurons];
            let mut live = false;
            for (col, d) in dst.iter_mut().enumerate() {
                let eff =
                    Self::effective_read(stored_value(row * neurons + col), w_max, clamp_reads);
                live |= eff != 0.0;
                *d = eff;
            }
            plane.row_live[row] = live;
        }
        plane
    }

    /// The read rule this plane was built with: non-finite → 0, then either
    /// clamped to `[0, w_max]` or passed through raw.
    #[inline]
    pub fn effective_read(value: f32, w_max: f32, clamp: bool) -> f32 {
        if !value.is_finite() {
            0.0
        } else if clamp {
            value.clamp(0.0, w_max)
        } else {
            value
        }
    }

    fn rebuild_row(&mut self, stored: &StoredWeights, row: usize) {
        debug_assert_eq!(stored.inputs, self.inputs, "store/plane shape");
        debug_assert_eq!(stored.neurons, self.neurons, "store/plane shape");
        let src = stored.fan_out(row);
        let dst = &mut self.values[row * self.neurons..(row + 1) * self.neurons];
        let mut live = false;
        for (d, &v) in dst.iter_mut().zip(src) {
            let eff = Self::effective_read(v, self.w_max, self.clamp);
            live |= eff != 0.0;
            *d = eff;
        }
        self.row_live[row] = live;
    }

    /// Re-derives exactly the given rows from `stored` (after a corruption
    /// pass that touched only those rows). Rows may repeat; out-of-range
    /// rows panic.
    pub fn rebuild_rows(&mut self, stored: &StoredWeights, rows: &[usize]) {
        sparkxd_telemetry::counter_add!("snn.plane_rows_rebuilt", rows.len());
        for &row in rows {
            self.rebuild_row(stored, row);
        }
    }

    /// Number of input lines (rows).
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of neurons (columns).
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Whether row `input` has any non-zero effective weight.
    #[inline]
    pub fn row_live(&self, input: usize) -> bool {
        self.row_live[input]
    }

    /// Effective fan-out row of `input`, ready to accumulate without any
    /// per-read clamping or scrubbing.
    #[inline]
    pub fn row(&self, input: usize) -> &[f32] {
        &self.values[input * self.neurons..(input + 1) * self.neurons]
    }

    /// `true` when this plane equals a fresh build from `stored` — the
    /// invariant every mutation path must restore. Used by debug
    /// assertions and consistency tests; O(len), not for hot paths.
    pub fn is_consistent_with(&self, stored: &StoredWeights) -> bool {
        *self == Self::build(stored, self.clamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_in_range_and_deterministic() {
        let a = StoredWeights::random(10, 5, 1.0, 3);
        let b = StoredWeights::random(10, 5, 1.0, 3);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&w| (0.0..=0.3).contains(&w)));
    }

    #[test]
    fn effective_clamps_and_scrubs() {
        assert_eq!(StoredWeights::effective(0.5, 1.0), 0.5);
        assert_eq!(StoredWeights::effective(-3.0, 1.0), 0.0);
        assert_eq!(StoredWeights::effective(7.0, 1.0), 1.0);
        assert_eq!(StoredWeights::effective(f32::NAN, 1.0), 0.0);
        assert_eq!(StoredWeights::effective(f32::INFINITY, 1.0), 0.0);
    }

    #[test]
    fn normalisation_sets_column_sums() {
        let mut m = StoredWeights::random(50, 4, 1.0, 1);
        m.normalize_columns(10.0);
        for j in 0..4 {
            let sum: f32 = (0..50).map(|i| m.raw(i, j)).sum();
            assert!((sum - 10.0).abs() < 0.1, "column {j} sum {sum}");
        }
    }

    #[test]
    fn normalisation_scrubs_corrupt_values() {
        let mut m = StoredWeights::from_weights(2, 1, 1.0, vec![f32::NAN, 0.5]);
        m.normalize_columns(1.0);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        assert!((m.raw(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalisation_matches_column_major_reference() {
        // The row-major rewrite must be bit-identical to the original
        // strided column-major traversal, including dead-column skipping
        // and corrupt-value scrubbing.
        let column_major_reference = |m: &mut StoredWeights, target_sum: f32| {
            let w_max = m.w_max();
            for j in 0..m.neurons() {
                let mut sum = 0.0;
                for i in 0..m.inputs() {
                    sum += StoredWeights::effective(m.raw(i, j), w_max);
                }
                if sum <= f32::EPSILON {
                    continue;
                }
                let scale = target_sum / sum;
                for i in 0..m.inputs() {
                    let v = StoredWeights::effective(m.raw(i, j), w_max);
                    m.set(i, j, (v * scale).clamp(0.0, w_max));
                }
            }
        };
        let mut base = StoredWeights::random(37, 11, 1.0, 9);
        base.set(3, 2, f32::NAN);
        base.set(5, 7, f32::INFINITY);
        base.set(8, 4, -2.5);
        // Column 9 all-zero: must be skipped, not divided by ~0.
        for i in 0..37 {
            base.set(i, 9, 0.0);
        }
        let mut rowwise = base.clone();
        rowwise.normalize_columns(10.0);
        let mut colwise = base;
        column_major_reference(&mut colwise, 10.0);
        assert_eq!(rowwise.as_slice(), colwise.as_slice());
    }

    #[test]
    fn fan_out_views_rows() {
        let m = StoredWeights::from_weights(2, 3, 1.0, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.fan_out(0), &[1., 2., 3.]);
        assert_eq!(m.fan_out(1), &[4., 5., 6.]);
        assert_eq!(m.raw(1, 2), 6.0);
    }

    #[test]
    fn connectivity_counts_nonzero() {
        let m = StoredWeights::from_weights(2, 2, 1.0, vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(m.connectivity(), 0.5);
    }

    #[test]
    fn connectivity_ignores_corrupted_and_clamped_away_weights() {
        // Regression: NaN/Inf words (exponent bit flips) and negative
        // values contribute nothing to the membrane and must not count as
        // live connections.
        let m = StoredWeights::from_weights(
            2,
            3,
            1.0,
            vec![f32::NAN, f32::INFINITY, -0.4, 0.5, 0.0, f32::NEG_INFINITY],
        );
        assert_eq!(m.connectivity(), 1.0 / 6.0);
    }

    #[test]
    fn rows_of_words_dedups_and_sorts() {
        let m = StoredWeights::from_weights(3, 2, 1.0, vec![0.1; 6]);
        assert_eq!(m.rows_of_words(&[5, 0, 1, 4]), vec![0, 2]);
        assert_eq!(m.row_of_word(3), 1);
        assert!(m.rows_of_words(&[]).is_empty());
    }

    #[test]
    fn plane_applies_read_rule_at_build() {
        let stored = StoredWeights::from_weights(
            2,
            3,
            1.0,
            vec![0.5, f32::NAN, 7.0, -0.25, f32::INFINITY, 0.0],
        );
        let clamped = EffectivePlane::build(&stored, true);
        assert_eq!(clamped.row(0), &[0.5, 0.0, 1.0]);
        assert_eq!(clamped.row(1), &[0.0, 0.0, 0.0]);
        assert!(clamped.row_live(0));
        assert!(!clamped.row_live(1), "all-zero effective row is dead");

        let raw = EffectivePlane::build(&stored, false);
        assert_eq!(raw.row(0), &[0.5, 0.0, 7.0]);
        assert_eq!(raw.row(1), &[-0.25, 0.0, 0.0]);
        assert!(raw.row_live(1), "unclamped negative keeps the row live");
    }

    #[test]
    fn build_from_fn_matches_build() {
        let stored = StoredWeights::from_weights(
            2,
            3,
            1.0,
            vec![0.5, f32::NAN, 7.0, -0.25, f32::INFINITY, 0.0],
        );
        for clamp in [true, false] {
            let direct = EffectivePlane::build_from_fn(2, 3, 1.0, clamp, |i| stored.as_slice()[i]);
            assert_eq!(
                direct,
                EffectivePlane::build(&stored, clamp),
                "clamp={clamp}"
            );
        }
    }

    #[test]
    fn rebuild_rows_tracks_targeted_corruption() {
        let mut stored = StoredWeights::random(6, 4, 1.0, 2);
        let mut plane = EffectivePlane::build(&stored, true);
        stored.set(3, 1, f32::NAN);
        stored.set(3, 2, 9.0);
        stored.set(5, 0, -1.0);
        assert!(!plane.is_consistent_with(&stored), "stale after mutation");
        plane.rebuild_rows(&stored, &[3, 5]);
        assert!(plane.is_consistent_with(&stored));
        assert_eq!(plane.row(3)[1], 0.0);
        assert_eq!(plane.row(3)[2], 1.0);
        assert_eq!(plane.row(5)[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let _ = StoredWeights::from_weights(2, 2, 1.0, vec![0.0; 3]);
    }
}
