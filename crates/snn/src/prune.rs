//! Magnitude-based weight pruning.
//!
//! The paper's Fig. 2(a) combines SparkXD with weight pruning, sweeping
//! network connectivity from 100% down to 50%: pruned synapses need not be
//! stored in or fetched from DRAM, multiplying the energy savings.

use crate::synapse::StoredWeights;

/// Prunes the smallest-magnitude weights until at most
/// `target_connectivity` (fraction in `(0, 1]`) of weights remain non-zero.
///
/// Returns the number of weights removed by this call.
///
/// # Panics
///
/// Panics if `target_connectivity` is not within `(0, 1]`.
pub fn prune_to_connectivity(weights: &mut StoredWeights, target_connectivity: f64) -> usize {
    assert!(
        target_connectivity > 0.0 && target_connectivity <= 1.0,
        "target connectivity must be in (0, 1]"
    );
    let total = weights.len();
    let keep = (total as f64 * target_connectivity).round() as usize;
    let mut magnitudes: Vec<(f32, usize)> = weights
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &w)| (StoredWeights::effective(w, weights.w_max()), i))
        .collect();
    // Largest magnitudes first; stable tie-break on index for determinism.
    magnitudes.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut removed = 0;
    let slice = weights.as_mut_slice();
    for &(_, idx) in magnitudes.iter().skip(keep) {
        if slice[idx] != 0.0 {
            slice[idx] = 0.0;
            removed += 1;
        }
    }
    removed
}

/// Number of weights that remain stored after pruning to
/// `target_connectivity` — the DRAM footprint used by the Fig. 2(a)
/// energy sweep.
pub fn stored_weights_at_connectivity(total_weights: usize, target_connectivity: f64) -> usize {
    (total_weights as f64 * target_connectivity).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prunes_to_requested_connectivity() {
        let mut w = StoredWeights::random(100, 10, 1.0, 1);
        prune_to_connectivity(&mut w, 0.5);
        let c = w.connectivity();
        assert!((c - 0.5).abs() < 0.02, "connectivity {c}");
    }

    #[test]
    fn keeps_largest_magnitudes() {
        let mut w = StoredWeights::from_weights(1, 4, 1.0, vec![0.9, 0.1, 0.5, 0.3]);
        prune_to_connectivity(&mut w, 0.5);
        assert_eq!(w.as_slice(), &[0.9, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn full_connectivity_removes_nothing() {
        let mut w = StoredWeights::random(10, 10, 1.0, 2);
        let removed = prune_to_connectivity(&mut w, 1.0);
        assert_eq!(removed, 0);
        assert_eq!(w.connectivity(), 1.0);
    }

    #[test]
    fn idempotent_at_same_level() {
        let mut w = StoredWeights::random(50, 10, 1.0, 3);
        prune_to_connectivity(&mut w, 0.7);
        let removed_again = prune_to_connectivity(&mut w, 0.7);
        assert_eq!(removed_again, 0);
    }

    #[test]
    fn stored_weight_count() {
        assert_eq!(stored_weights_at_connectivity(1000, 0.5), 500);
        assert_eq!(stored_weights_at_connectivity(1000, 1.0), 1000);
    }

    #[test]
    #[should_panic(expected = "connectivity must be in")]
    fn zero_connectivity_panics() {
        let mut w = StoredWeights::random(4, 4, 1.0, 0);
        prune_to_connectivity(&mut w, 0.0);
    }
}
