//! # sparkxd-snn
//!
//! A clock-driven spiking neural network simulator implementing the
//! unsupervised architecture the SparkXD paper evaluates (paper Fig. 4a —
//! the Diehl & Cook style network also used by FSpiNN):
//!
//! * **Leaky Integrate-and-Fire neurons** with adaptive thresholds and
//!   refractory periods ([`neuron`]);
//! * **rate (Poisson) spike coding** of input images ([`coding`]);
//! * a fully connected input→excitatory projection with **lateral
//!   inhibition** for winner-take-all competition ([`network`]);
//! * **spike-timing-dependent plasticity (STDP)** with per-neuron weight
//!   normalisation ([`stdp`]);
//! * unsupervised **neuron labelling and vote-based classification**
//!   ([`eval`]);
//! * a **parallel batch-execution engine** sharding inference across a
//!   persistent condvar-parked [`WorkerPool`] and presenting samples in
//!   batched chunks — with an optional intra-chunk tile-parallel drive
//!   sweep (`SPARKXD_INTRA`) — per-sample RNG streams keeping results
//!   bit-identical for any worker count, batch size and sweep split
//!   ([`engine`]);
//! * **runtime-dispatched SIMD kernels** for the hot inner loops —
//!   portable scalar or x86_64 AVX2 (`SPARKXD_KERNEL`), bit-identical by
//!   construction ([`kernels`]);
//! * weight **pruning** and **fixed-point quantisation** utilities used by
//!   the paper's combined-techniques analyses ([`prune`], [`quant`]).
//!
//! Synaptic storage is split from the read path ([`synapse`]): the
//! [`StoredWeights`] DRAM image holds plain `f32`s bit-exactly, so the
//! `sparkxd-error` crate can flip the very bits that approximate DRAM
//! would corrupt, while inference consumes an [`EffectivePlane`] derived
//! once per corruption instance. When `clamp_reads` is enabled (the
//! default, modelling a bounded hardware synapse), corrupted values are
//! clamped to `[0, w_max]` at plane-build time; the paper's observation
//! that MSB flips are the damaging ones can be reproduced by disabling
//! the clamp.
//!
//! ## Example
//!
//! ```
//! use sparkxd_data::{SynthDigits, SyntheticSource};
//! use sparkxd_snn::{DiehlCookNetwork, SnnConfig};
//!
//! let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(30).with_timesteps(30));
//! let train = SynthDigits.generate(30, 1);
//! net.train_epoch(&train, 7);
//! let labeler = net.label_neurons(&train, 8);
//! let accuracy = net.evaluate(&train, &labeler, 9);
//! assert!(accuracy >= 0.0 && accuracy <= 1.0);
//! ```

pub mod coding;
pub mod engine;
pub mod eval;
pub mod kernels;
pub mod network;
pub mod neuron;
pub mod prune;
pub mod quant;
pub mod stdp;
pub mod synapse;

pub use coding::PoissonEncoder;
pub use engine::{BatchEvaluator, IntraChoice, WorkerPool};
pub use eval::{ClassVotes, NeuronLabeler};
pub use kernels::{Kernel, KernelChoice};
pub use network::{BatchState, DiehlCookNetwork, NetworkParams, RunState, SnnConfig};
pub use neuron::{LifConfig, LifState};
pub use prune::prune_to_connectivity;
pub use quant::{QuantizedImage, WeightPrecision};
pub use stdp::StdpConfig;
pub use synapse::{EffectivePlane, StoredWeights};

/// Errors reported by the SNN simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnnError {
    /// Input image size does not match the network input size.
    InputSizeMismatch {
        /// Pixels provided.
        provided: usize,
        /// Inputs expected.
        expected: usize,
    },
    /// A dataset was empty where samples were required.
    EmptyDataset,
}

impl std::fmt::Display for SnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnnError::InputSizeMismatch { provided, expected } => {
                write!(f, "input has {provided} pixels, network expects {expected}")
            }
            SnnError::EmptyDataset => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for SnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SnnError::InputSizeMismatch {
            provided: 10,
            expected: 784,
        };
        assert!(e.to_string().contains("784"));
    }
}
