//! Unsupervised neuron labelling and vote-based classification.
//!
//! After STDP training, each excitatory neuron is assigned the class it
//! responded to most strongly on the training set; at inference, per-class
//! votes are the mean spike counts of each class's neurons.

/// Per-class vote totals for one sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassVotes {
    votes: [f64; 10],
}

impl ClassVotes {
    /// Vote strength for `class`.
    pub fn vote(&self, class: u8) -> f64 {
        self.votes[class as usize]
    }

    /// The winning class, or `None` if no class received any vote.
    pub fn winner(&self) -> Option<u8> {
        let (best, &v) = self
            .votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("votes are finite"))?;
        if v > 0.0 {
            Some(best as u8)
        } else {
            None
        }
    }
}

/// Class assignments of excitatory neurons.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NeuronLabeler {
    assignments: Vec<Option<u8>>,
}

impl NeuronLabeler {
    /// Builds assignments from a response matrix
    /// `responses[neuron][class] = total spikes`.
    ///
    /// Neurons that never spiked get no assignment and never vote.
    pub fn from_responses(responses: &[[u64; 10]]) -> Self {
        let assignments = responses
            .iter()
            .map(|row| {
                let (best, &count) = row
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .expect("10 classes");
                if count > 0 {
                    Some(best as u8)
                } else {
                    None
                }
            })
            .collect();
        Self { assignments }
    }

    /// Builds a labeler from explicit assignments.
    pub fn from_assignments(assignments: Vec<Option<u8>>) -> Self {
        Self { assignments }
    }

    /// Per-neuron assignments.
    pub fn assignments(&self) -> &[Option<u8>] {
        &self.assignments
    }

    /// Number of neurons assigned to `class`.
    pub fn class_population(&self, class: u8) -> usize {
        self.assignments
            .iter()
            .filter(|a| **a == Some(class))
            .count()
    }

    /// Computes per-class votes (mean spike count of the class's neurons)
    /// for one sample's spike counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is shorter than the assignment vector.
    pub fn votes(&self, counts: &[u32]) -> ClassVotes {
        let mut sums = [0.0f64; 10];
        let mut pops = [0usize; 10];
        for (j, assignment) in self.assignments.iter().enumerate() {
            if let Some(class) = assignment {
                sums[*class as usize] += counts[j] as f64;
                pops[*class as usize] += 1;
            }
        }
        let mut votes = [0.0f64; 10];
        for c in 0..10 {
            if pops[c] > 0 {
                votes[c] = sums[c] / pops[c] as f64;
            }
        }
        ClassVotes { votes }
    }

    /// Predicts the class of a sample from its spike counts.
    pub fn predict(&self, counts: &[u32]) -> Option<u8> {
        self.votes(counts).winner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeler() -> NeuronLabeler {
        // 4 neurons: two for class 0, one for class 3, one unassigned.
        NeuronLabeler::from_assignments(vec![Some(0), Some(0), Some(3), None])
    }

    #[test]
    fn responses_pick_argmax_class() {
        let mut responses = vec![[0u64; 10]; 2];
        responses[0][7] = 5;
        responses[0][2] = 3;
        // Neuron 1 silent.
        let l = NeuronLabeler::from_responses(&responses);
        assert_eq!(l.assignments(), &[Some(7), None]);
    }

    #[test]
    fn votes_average_over_class_population() {
        let l = labeler();
        // Neuron spikes: 4 and 2 for class 0 (mean 3), 5 for class 3.
        let votes = l.votes(&[4, 2, 5, 100]);
        assert_eq!(votes.vote(0), 3.0);
        assert_eq!(votes.vote(3), 5.0);
        // Unassigned neuron contributes nothing.
        assert_eq!(votes.vote(9), 0.0);
    }

    #[test]
    fn predict_selects_strongest_class() {
        let l = labeler();
        assert_eq!(l.predict(&[4, 2, 5, 0]), Some(3));
        assert_eq!(l.predict(&[9, 9, 5, 0]), Some(0));
        assert_eq!(l.predict(&[0, 0, 0, 0]), None);
    }

    #[test]
    fn class_population_counts() {
        let l = labeler();
        assert_eq!(l.class_population(0), 2);
        assert_eq!(l.class_population(3), 1);
        assert_eq!(l.class_population(5), 0);
    }
}
