//! Leaky Integrate-and-Fire neuron with adaptive threshold
//! (paper Fig. 4b dynamics).

/// How far below `v_rest` lateral inhibition may drive a membrane (mV):
/// the biological hyperpolarisation bound applied by
/// [`LifState::inhibit`] and the batched inhibition sweep alike — see
/// [`LifConfig::inhibition_floor`] for the derived absolute floor.
pub const INHIBITION_FLOOR_BELOW_REST_MV: f32 = 20.0;

/// Parameters of the LIF neuron population (millivolts / milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifConfig {
    /// Resting potential the membrane decays towards.
    pub v_rest: f32,
    /// Potential after a spike.
    pub v_reset: f32,
    /// Base firing threshold (before the adaptive component).
    pub v_thresh: f32,
    /// Membrane time constant (ms).
    pub tau_membrane: f32,
    /// Refractory period (ms).
    pub refractory_ms: f32,
    /// Adaptive-threshold increment per spike (homeostasis).
    pub theta_plus: f32,
    /// Adaptive-threshold decay time constant (ms).
    pub tau_theta: f32,
}

impl LifConfig {
    /// Diehl & Cook-style excitatory neuron parameters.
    pub fn excitatory() -> Self {
        Self {
            v_rest: -65.0,
            v_reset: -60.0,
            v_thresh: -52.0,
            tau_membrane: 100.0,
            refractory_ms: 5.0,
            theta_plus: 0.05,
            tau_theta: 1.0e5,
        }
    }

    /// The absolute membrane floor lateral inhibition clamps to:
    /// [`INHIBITION_FLOOR_BELOW_REST_MV`] below `v_rest`. Shared by the
    /// scalar [`LifState::inhibit`] path and the batched slab sweep, so
    /// the bound cannot drift between the two.
    pub fn inhibition_floor(&self) -> f32 {
        self.v_rest - INHIBITION_FLOOR_BELOW_REST_MV
    }
}

impl Default for LifConfig {
    fn default() -> Self {
        Self::excitatory()
    }
}

/// Dynamic state of one LIF neuron.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LifState {
    /// Membrane potential (mV).
    pub v: f32,
    /// Adaptive threshold component (mV above `v_thresh`).
    pub theta: f32,
    /// Remaining refractory time (ms).
    pub refractory_left: f32,
}

impl LifState {
    /// A neuron at rest.
    pub fn resting(config: &LifConfig) -> Self {
        Self {
            v: config.v_rest,
            theta: 0.0,
            refractory_left: 0.0,
        }
    }

    /// Advances the membrane by `dt_ms` with synaptic drive `input_mv`
    /// (already summed over incoming spikes this step) *without* firing.
    /// Returns `true` if the membrane reached threshold — the caller then
    /// decides who actually fires (soft vs hard winner-take-all) and calls
    /// [`fire`](Self::fire).
    pub fn integrate(&mut self, config: &LifConfig, input_mv: f32, dt_ms: f32) -> bool {
        // Threshold adaptation decays regardless of refractory state.
        self.theta -= self.theta * dt_ms / config.tau_theta;
        if self.refractory_left > 0.0 {
            self.refractory_left -= dt_ms;
            self.v = config.v_reset;
            return false;
        }
        // Leak towards rest, then integrate input.
        self.v += (config.v_rest - self.v) * dt_ms / config.tau_membrane;
        self.v += input_mv;
        self.v >= config.v_thresh + self.theta
    }

    /// Margin above the (adaptive) threshold; positive when ready to fire.
    pub fn threshold_margin(&self, config: &LifConfig) -> f32 {
        self.v - (config.v_thresh + self.theta)
    }

    /// Commits a spike: resets the membrane, raises the adaptive threshold
    /// and starts the refractory period.
    pub fn fire(&mut self, config: &LifConfig) {
        self.v = config.v_reset;
        self.theta += config.theta_plus;
        self.refractory_left = config.refractory_ms;
    }

    /// Advances the neuron by `dt_ms` and fires immediately on reaching
    /// threshold. Returns `true` if the neuron fired.
    ///
    /// Dynamics per the paper: the membrane rises on presynaptic input and
    /// decays exponentially towards rest otherwise; on reaching
    /// `v_thresh + theta` it fires, resets to `v_reset`, raises `theta` and
    /// enters the refractory period (paper Fig. 4b).
    pub fn step(&mut self, config: &LifConfig, input_mv: f32, dt_ms: f32) -> bool {
        if self.integrate(config, input_mv, dt_ms) {
            self.fire(config);
            true
        } else {
            false
        }
    }

    /// Applies lateral inhibition: hyperpolarises the membrane by
    /// `inhibition_mv`, floored at [`LifConfig::inhibition_floor`].
    pub fn inhibit(&mut self, config: &LifConfig, inhibition_mv: f32) {
        self.v = (self.v - inhibition_mv).max(config.inhibition_floor());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LifConfig {
        LifConfig::excitatory()
    }

    #[test]
    fn resting_neuron_stays_at_rest() {
        let c = cfg();
        let mut n = LifState::resting(&c);
        for _ in 0..100 {
            assert!(!n.step(&c, 0.0, 1.0));
        }
        assert!((n.v - c.v_rest).abs() < 1e-3);
    }

    #[test]
    fn sufficient_input_fires_and_resets() {
        let c = cfg();
        let mut n = LifState::resting(&c);
        let fired = n.step(&c, 20.0, 1.0); // 20 mV >> threshold gap (13 mV)
        assert!(fired);
        assert_eq!(n.v, c.v_reset);
        assert!(n.theta > 0.0);
    }

    #[test]
    fn refractory_period_blocks_firing() {
        let c = cfg();
        let mut n = LifState::resting(&c);
        assert!(n.step(&c, 20.0, 1.0));
        // During the 5 ms refractory window, huge input cannot fire it.
        for _ in 0..5 {
            assert!(!n.step(&c, 50.0, 1.0));
        }
        // After the window it can fire again.
        assert!(n.step(&c, 50.0, 1.0));
    }

    #[test]
    fn threshold_adapts_upwards_with_spikes() {
        let c = cfg();
        let count_spikes = |theta: f32| {
            let mut n = LifState {
                theta,
                ..LifState::resting(&c)
            };
            (0..50).filter(|_| n.step(&c, 14.0, 1.0)).count()
        };
        // A raised adaptive threshold must reduce the firing rate for the
        // same drive (homeostasis).
        assert!(count_spikes(10.0) < count_spikes(0.0));
    }

    #[test]
    fn membrane_decays_between_inputs() {
        let c = cfg();
        let mut n = LifState::resting(&c);
        n.step(&c, 5.0, 1.0); // sub-threshold kick
        let v_after_kick = n.v;
        for _ in 0..50 {
            n.step(&c, 0.0, 1.0);
        }
        assert!(n.v < v_after_kick, "decays towards rest");
        assert!(n.v > c.v_rest - 0.5);
    }

    #[test]
    fn inhibition_lowers_membrane_with_floor() {
        let c = cfg();
        let mut n = LifState::resting(&c);
        n.inhibit(&c, 5.0);
        assert!((n.v - (c.v_rest - 5.0)).abs() < 1e-4);
        n.inhibit(&c, 100.0);
        assert!(n.v >= c.inhibition_floor());
    }

    #[test]
    fn inhibition_floor_is_pinned_twenty_mv_below_rest() {
        // Regression pin: the floor used to be a magic `v_rest - 20.0`
        // duplicated across the scalar and slab inhibition paths; both now
        // derive from this one constant, and the excitatory defaults put
        // it at exactly -85 mV.
        assert_eq!(INHIBITION_FLOOR_BELOW_REST_MV, 20.0);
        assert_eq!(cfg().inhibition_floor(), -85.0);
        let mut n = LifState::resting(&cfg());
        n.inhibit(&cfg(), 1.0e9);
        assert_eq!(
            n.v,
            cfg().inhibition_floor(),
            "saturates exactly at the floor"
        );
    }
}
