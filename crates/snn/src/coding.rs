//! Spike coding: conversion of images into spike trains.
//!
//! The paper uses rate coding with Poisson-distributed spike trains
//! (Section V); each pixel's intensity sets the firing rate of its input
//! line. A deterministic encoder is provided for reproducible unit tests.

use rand::rngs::StdRng;
use rand::Rng;

/// Poisson rate encoder: pixel intensity `p ∈ [0,1]` fires with probability
/// `p · max_rate_hz · dt` each timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonEncoder {
    /// Firing rate of a fully bright pixel (Hz). Twice Diehl & Cook's
    /// 63.75 Hz, compensating for our shorter (100 ms vs 350 ms)
    /// presentations.
    pub max_rate_hz: f32,
    /// Simulation timestep (ms).
    pub dt_ms: f32,
}

impl PoissonEncoder {
    /// Encoder with the standard 63.75 Hz ceiling at 1 ms resolution.
    pub fn standard() -> Self {
        Self {
            max_rate_hz: 127.5,
            dt_ms: 1.0,
        }
    }

    /// Per-step spike probability of intensity `p`.
    pub fn spike_probability(&self, p: f32) -> f32 {
        (p * self.max_rate_hz * self.dt_ms / 1000.0).clamp(0.0, 1.0)
    }

    /// Samples one timestep of spikes for `pixels`, appending the indices
    /// of the input lines that fired to `active` (cleared first).
    pub fn encode_step(&self, pixels: &[f32], rng: &mut StdRng, active: &mut Vec<usize>) {
        active.clear();
        for (i, &p) in pixels.iter().enumerate() {
            if p > 0.0 && rng.gen::<f32>() < self.spike_probability(p) {
                active.push(i);
            }
        }
    }
}

impl Default for PoissonEncoder {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probability_scales_with_intensity() {
        let e = PoissonEncoder::standard();
        assert_eq!(e.spike_probability(0.0), 0.0);
        assert!(e.spike_probability(1.0) > e.spike_probability(0.5));
        assert!((e.spike_probability(1.0) - 0.1275).abs() < 1e-6);
    }

    #[test]
    fn rate_statistics_match_intensity() {
        let e = PoissonEncoder::standard();
        let pixels = vec![1.0f32; 1000];
        let mut rng = StdRng::seed_from_u64(1);
        let mut active = Vec::new();
        let mut total = 0usize;
        let steps = 400;
        for _ in 0..steps {
            e.encode_step(&pixels, &mut rng, &mut active);
            total += active.len();
        }
        let rate = total as f64 / (1000.0 * steps as f64);
        assert!((rate / 0.1275 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn dark_pixels_never_fire() {
        let e = PoissonEncoder::standard();
        let pixels = vec![0.0f32; 100];
        let mut rng = StdRng::seed_from_u64(2);
        let mut active = Vec::new();
        for _ in 0..100 {
            e.encode_step(&pixels, &mut rng, &mut active);
            assert!(active.is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let e = PoissonEncoder::standard();
        let pixels: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut active = Vec::new();
            let mut all = Vec::new();
            for _ in 0..20 {
                e.encode_step(&pixels, &mut rng, &mut active);
                all.push(active.clone());
            }
            all
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
