//! Spike coding: conversion of images into spike trains.
//!
//! The paper uses rate coding with Poisson-distributed spike trains
//! (Section V); each pixel's intensity sets the firing rate of its input
//! line. A deterministic encoder is provided for reproducible unit tests.

use rand::rngs::StdRng;
use rand::Rng;

/// Poisson rate encoder: pixel intensity `p ∈ [0,1]` fires with probability
/// `p · max_rate_hz · dt` each timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonEncoder {
    /// Firing rate of a fully bright pixel (Hz). Twice Diehl & Cook's
    /// 63.75 Hz, compensating for our shorter (100 ms vs 350 ms)
    /// presentations.
    pub max_rate_hz: f32,
    /// Simulation timestep (ms).
    pub dt_ms: f32,
}

impl PoissonEncoder {
    /// Encoder with the standard 63.75 Hz ceiling at 1 ms resolution.
    pub fn standard() -> Self {
        Self {
            max_rate_hz: 127.5,
            dt_ms: 1.0,
        }
    }

    /// Per-step spike probability of intensity `p`.
    pub fn spike_probability(&self, p: f32) -> f32 {
        (p * self.max_rate_hz * self.dt_ms / 1000.0).clamp(0.0, 1.0)
    }

    /// Samples one timestep of spikes for `pixels`, appending the indices
    /// of the input lines that fired to `active` (cleared first).
    pub fn encode_step(&self, pixels: &[f32], rng: &mut StdRng, active: &mut Vec<usize>) {
        active.clear();
        for (i, &p) in pixels.iter().enumerate() {
            if p > 0.0 && rng.gen::<f32>() < self.spike_probability(p) {
                active.push(i);
            }
        }
    }

    /// Precomputes the per-pixel firing thresholds of one sample into
    /// `plan` (cleared first): one `(input index, integer threshold)`
    /// entry per *non-zero* pixel, in ascending pixel order.
    ///
    /// [`encode_planned_step`](Self::encode_planned_step) then replays the
    /// plan each timestep, drawing exactly the same RNG sequence as
    /// [`encode_step`](Self::encode_step) — dark pixels never draw in
    /// either path — so the two produce bit-identical spike trains while
    /// the plan skips the dark-pixel scan and the per-step probability
    /// arithmetic. Used by the batched hot path, where one sample is
    /// presented for many timesteps.
    ///
    /// The stored threshold is `ceil(spike_probability · 2²⁴)`: a raw
    /// 24-bit draw `x` satisfies `x·2⁻²⁴ < probability` (the
    /// [`encode_step`](Self::encode_step) comparison — both sides exact in
    /// `f32`, since 24-bit integers and power-of-two scalings are
    /// representable) exactly when `x < ceil(probability · 2²⁴)`, so the
    /// integer compare accepts precisely the same draws.
    pub fn plan(&self, pixels: &[f32], plan: &mut Vec<(u32, u32)>) {
        plan.clear();
        for (i, &p) in pixels.iter().enumerate() {
            if p > 0.0 {
                let threshold = (self.spike_probability(p) * (1u32 << 24) as f32).ceil() as u32;
                plan.push((i as u32, threshold));
            }
        }
    }

    /// Samples one timestep of spikes from a precomputed [`plan`](Self::plan),
    /// appending the firing input lines to `active` (cleared first).
    /// Bit-identical to [`encode_step`](Self::encode_step) on the pixels
    /// the plan was built from: one `next_u32` per entry — the same draw
    /// `gen::<f32>()` consumes — against the precomputed integer threshold.
    pub fn encode_planned_step(
        &self,
        plan: &[(u32, u32)],
        rng: &mut StdRng,
        active: &mut Vec<usize>,
    ) {
        use rand::RngCore;
        active.clear();
        for &(i, threshold) in plan {
            if (rng.next_u32() >> 8) < threshold {
                active.push(i as usize);
            }
        }
    }
}

impl Default for PoissonEncoder {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn probability_scales_with_intensity() {
        let e = PoissonEncoder::standard();
        assert_eq!(e.spike_probability(0.0), 0.0);
        assert!(e.spike_probability(1.0) > e.spike_probability(0.5));
        assert!((e.spike_probability(1.0) - 0.1275).abs() < 1e-6);
    }

    #[test]
    fn rate_statistics_match_intensity() {
        let e = PoissonEncoder::standard();
        let pixels = vec![1.0f32; 1000];
        let mut rng = StdRng::seed_from_u64(1);
        let mut active = Vec::new();
        let mut total = 0usize;
        let steps = 400;
        for _ in 0..steps {
            e.encode_step(&pixels, &mut rng, &mut active);
            total += active.len();
        }
        let rate = total as f64 / (1000.0 * steps as f64);
        assert!((rate / 0.1275 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn dark_pixels_never_fire() {
        let e = PoissonEncoder::standard();
        let pixels = vec![0.0f32; 100];
        let mut rng = StdRng::seed_from_u64(2);
        let mut active = Vec::new();
        for _ in 0..100 {
            e.encode_step(&pixels, &mut rng, &mut active);
            assert!(active.is_empty());
        }
    }

    #[test]
    fn planned_encoding_is_bit_identical_to_direct() {
        let e = PoissonEncoder::standard();
        // Mixed dark/bright pixels so the dark-skip paths are exercised.
        let pixels: Vec<f32> = (0..200)
            .map(|i| if i % 3 == 0 { 0.0 } else { i as f32 / 200.0 })
            .collect();
        let mut plan = Vec::new();
        e.plan(&pixels, &mut plan);
        assert_eq!(plan.len(), pixels.iter().filter(|&&p| p > 0.0).count());
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut direct = Vec::new();
        let mut planned = Vec::new();
        for _ in 0..50 {
            e.encode_step(&pixels, &mut rng_a, &mut direct);
            e.encode_planned_step(&plan, &mut rng_b, &mut planned);
            assert_eq!(direct, planned);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let e = PoissonEncoder::standard();
        let pixels: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut active = Vec::new();
            let mut all = Vec::new();
            for _ in 0..20 {
                e.encode_step(&pixels, &mut rng, &mut active);
                all.push(active.clone());
            }
            all
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
